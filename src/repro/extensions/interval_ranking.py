"""Interval-based partial ranking — the paper's first §7 follow-up.

The core comparison process stops the moment its interval excludes the
neutral point.  That is optimal for a single verdict but wasteful when the
same bags must later *order* the winners: tighter intervals can rank many
pairs for free.  This extension:

1. keeps comparing each candidate with the shared reference until a target
   interval half-width (or an extra budget) is reached, and
2. infers ``o_i ≻ o_j`` whenever their confidence intervals for
   ``μ_{·, r}`` are disjoint — a conclusion at joint confidence
   ``(1 − α)²`` without a single direct ``(o_i, o_j)`` microtask.

The result is a :class:`PartialOrder`: a DAG over the candidates exposing
dominance tests, topological layers, and the pairs a full ranking would
still need to resolve directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..core.estimators import make_tester
from ..errors import AlgorithmError
from ..stats.tdist import t_quantile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["IntervalEstimate", "PartialOrder", "interval_partial_order"]


@dataclass(frozen=True)
class IntervalEstimate:
    """A ``1 − α`` confidence interval for one item's mean vs the reference."""

    item: int
    lower: float
    upper: float
    n: int

    @property
    def width(self) -> float:
        return self.upper - self.lower

    @property
    def midpoint(self) -> float:
        return (self.upper + self.lower) / 2.0

    def separated_from(self, other: "IntervalEstimate") -> bool:
        """Whether the two intervals are disjoint (order inferable)."""
        return self.lower > other.upper or other.lower > self.upper


class PartialOrder:
    """Dominance relations inferred from pairwise-disjoint intervals."""

    def __init__(self, estimates: list[IntervalEstimate]) -> None:
        if len({e.item for e in estimates}) != len(estimates):
            raise AlgorithmError("duplicate items in the interval set")
        self.estimates = {e.item: e for e in estimates}

    def dominates(self, i: int, j: int) -> bool:
        """Whether ``o_i ≻ o_j`` is inferable from the intervals."""
        a, b = self.estimates[int(i)], self.estimates[int(j)]
        return a.lower > b.upper

    def unresolved_pairs(self) -> list[tuple[int, int]]:
        """Pairs whose intervals overlap — a total order still needs them."""
        items = sorted(self.estimates)
        return [
            (items[a], items[b])
            for a in range(len(items))
            for b in range(a + 1, len(items))
            if not self.estimates[items[a]].separated_from(self.estimates[items[b]])
        ]

    def layers(self) -> list[list[int]]:
        """Topological layers, best first.

        Layer ``t`` holds the items dominated only by items in earlier
        layers; items within a layer are mutually unresolved (directly or
        through chains of overlap).
        """
        remaining = set(self.estimates)
        layers: list[list[int]] = []
        while remaining:
            front = [
                item
                for item in remaining
                if not any(
                    self.dominates(other, item)
                    for other in remaining
                    if other != item
                )
            ]
            if not front:  # cannot happen: dominance is acyclic by construction
                raise AssertionError("interval dominance produced a cycle")
            layers.append(sorted(front, key=lambda i: -self.estimates[i].midpoint))
            remaining -= set(front)
        return layers

    def is_total(self) -> bool:
        """Whether the intervals already induce a full ranking."""
        return not self.unresolved_pairs()

    def best_effort_ranking(self) -> list[int]:
        """A total order consistent with the partial order (midpoint ties)."""
        return [item for layer in self.layers() for item in layer]


def interval_partial_order(
    session: "CrowdSession",
    candidate_ids: list[int],
    reference: int,
    *,
    target_halfwidth: float | None = None,
    extra_budget: int = 200,
) -> PartialOrder:
    """Tighten every candidate's interval vs ``reference``, then order them.

    Each candidate's bag against the reference is extended by up to
    ``extra_budget`` additional microtasks — or until the Student-t
    interval's half-width drops below ``target_halfwidth`` when given.
    Candidates are compared to the reference, never to each other.
    """
    reference = int(reference)
    ids = [int(i) for i in candidate_ids]
    if reference in ids:
        raise AlgorithmError("the reference cannot be among the candidates")
    if extra_budget < 0:
        raise AlgorithmError("extra_budget must be >= 0")
    if target_halfwidth is not None and target_halfwidth <= 0:
        raise AlgorithmError("target_halfwidth must be positive")

    alpha = session.config.alpha
    batch = session.config.batch_size
    estimates: list[IntervalEstimate] = []
    group_rounds: list[int] = []
    for item in ids:
        tester = make_tester(
            session.config.with_(estimator="student"),
            session.oracle.value_range,
        )
        cached = session.cache.bag(item, reference)
        if cached.size:
            tester.push_many(cached)
        spent = 0
        rounds = 0
        while spent < extra_budget:
            if tester.n >= max(2, session.config.min_workload):
                half = (
                    t_quantile(alpha, tester.n - 1)
                    * tester.state.std
                    / math.sqrt(tester.n)
                )
                if target_halfwidth is not None and half <= target_halfwidth:
                    break
            chunk = min(batch, extra_budget - spent)
            values = session.oracle.draw(item, reference, chunk, session.rng)
            tester.push_many(values)
            session.cache.append(item, reference, values)
            spent += chunk
            rounds += 1
        session.charge_cost(spent)
        group_rounds.append(rounds)

        n = tester.n
        if n < 2:
            raise AlgorithmError(
                f"item {item} has fewer than 2 judgments against the reference"
            )
        half = t_quantile(alpha, n - 1) * tester.state.std / math.sqrt(n)
        mean = tester.state.mean
        estimates.append(
            IntervalEstimate(item=item, lower=mean - half, upper=mean + half, n=n)
        )
    session.latency.add_parallel(group_rounds)
    return PartialOrder(estimates)
