"""Incremental top-k maintenance — keep a result fresh as items arrive.

A production ranking rarely answers one query and stops: new candidates
keep arriving (new translations, new photos) and yesterday's top-k must be
updated without re-running the whole query.  Because every judgment is
cached, maintenance is cheap:

1. Compare the new item against the *boundary* (the current k-th item).
   If it loses, the top-k is unchanged — one comparison total, exactly the
   pruning cost Lemma 1 assigns to a non-result item.
2. If it wins (or ties the boundary), binary-search its slot within the
   current top-k by crowd comparisons and insert it, dropping the old
   k-th item.

This is an extension beyond the paper (which treats queries as one-shot),
but it is built purely from the paper's own comparison process and cost
model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.outcomes import Outcome
from ..core.sorting import resolve_winner
from ..errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["InsertionResult", "insert_item"]


@dataclass(frozen=True)
class InsertionResult:
    """Outcome of offering one new item to an existing top-k."""

    topk: tuple[int, ...]
    accepted: bool
    evicted: int | None
    cost: int
    rounds: int
    comparisons: int


def insert_item(
    session: "CrowdSession",
    topk: list[int],
    new_item: int,
    *,
    evict: bool = True,
) -> InsertionResult:
    """Offer ``new_item`` to the current ``topk`` (best first).

    Returns the updated list.  With ``evict=True`` (the default) the list
    keeps its length — the displaced k-th item drops out; with
    ``evict=False`` the list grows by one when the item is accepted.
    Ties against the boundary resolve by the observed-mean heuristic, like
    every other forced choice in the library.
    """
    current = [int(i) for i in topk]
    new_item = int(new_item)
    if not current:
        raise AlgorithmError("cannot insert into an empty top-k")
    if len(set(current)) != len(current):
        raise AlgorithmError("topk must not contain duplicates")
    if new_item in current:
        raise AlgorithmError(f"item {new_item} is already in the top-k")

    before_cost, before_rounds = session.spent()
    comparisons = 0

    # Step 1: the boundary test (the Lemma-1 prune comparison).
    boundary = current[-1]
    record = session.compare(new_item, boundary)
    comparisons += 1
    new_wins = (
        record.outcome is Outcome.LEFT
        or (
            record.outcome is Outcome.TIE
            and resolve_winner(record, session.rng) == new_item
        )
    )
    if not new_wins:
        cost, rounds = session.spent()
        return InsertionResult(
            topk=tuple(current),
            accepted=False,
            evicted=None,
            cost=cost - before_cost,
            rounds=rounds - before_rounds,
            comparisons=comparisons,
        )

    # Step 2: binary-search the slot among positions 0..len-1 (the new
    # item already beat the last one).
    lo, hi = 0, len(current) - 1  # slot in [lo, hi]
    while lo < hi:
        mid = (lo + hi) // 2
        record = session.compare(new_item, current[mid])
        comparisons += 1
        beats_mid = (
            record.outcome is Outcome.LEFT
            or (
                record.outcome is Outcome.TIE
                and resolve_winner(record, session.rng) == new_item
            )
        )
        if beats_mid:
            hi = mid
        else:
            lo = mid + 1

    updated = current[:lo] + [new_item] + current[lo:]
    evicted = None
    if evict:
        evicted = updated.pop()
    cost, rounds = session.spent()
    return InsertionResult(
        topk=tuple(updated),
        accepted=True,
        evicted=evicted,
        cost=cost - before_cost,
        rounds=rounds - before_rounds,
        comparisons=comparisons,
    )
