"""Prior-guided reference selection — the paper's second §7 follow-up.

When partial knowledge of the item scores exists (Ciceri et al. [11]
assume narrow per-item score ranges; in practice: last year's ranking,
cheap machine scores, a graded pre-pass), the sampling phase of §5.1 is
unnecessary: the prior already points at the sweet spot.  ``prior_reference``
picks the item whose *prior rank* sits in the middle of
``{k, …, ⌊ck⌋}``, and ``spr_topk_with_prior`` runs SPR with the sampling
phase replaced by that free choice — the partition and ranking phases
(and their confidence guarantees) are untouched.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from typing import TYPE_CHECKING

import math

from ..config import SPRConfig
from ..core.spr.partition import partition
from ..core.spr.rank import reference_sort
from ..core.spr.spr import SPRResult, spr_topk
from ..errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["prior_reference", "spr_topk_with_prior"]


def prior_reference(
    item_ids: list[int],
    k: int,
    priors: Mapping[int, float],
    sweet_spot: float = 1.5,
) -> int:
    """The item whose prior rank centres the sweet spot ``{k .. ⌊ck⌋}``.

    ``priors`` maps item id → prior score (higher = better); every queried
    item must have one.  Ties in the prior break by ascending id, matching
    the library's ground-truth convention.
    """
    ids = [int(i) for i in item_ids]
    if not 1 <= k <= len(ids):
        raise AlgorithmError(f"k must be in [1, {len(ids)}], got {k}")
    if sweet_spot <= 1.0:
        raise AlgorithmError(f"sweet_spot must be > 1, got {sweet_spot}")
    missing = [i for i in ids if i not in priors]
    if missing:
        raise AlgorithmError(f"items without a prior: {missing[:5]}")
    ranked = sorted(ids, key=lambda i: (-float(priors[i]), i))
    spot_lo = k
    spot_hi = min(int(sweet_spot * k), len(ids))
    target = (spot_lo + spot_hi) // 2
    return ranked[target - 1]


def spr_topk_with_prior(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    priors: Mapping[int, float],
    config: SPRConfig | None = None,
) -> SPRResult:
    """SPR with the sampling phase replaced by a prior-guided reference.

    The prior only influences *which* reference partitions the items —
    every comparison still carries the configured confidence guarantee, so
    a bad prior costs money, not correctness (§5.4).
    """
    config = config if config is not None else SPRConfig(comparison=session.config)
    ids = list(dict.fromkeys(int(i) for i in item_ids))
    if len(ids) != len(list(item_ids)):
        raise AlgorithmError("item_ids must not contain duplicates")
    if not 1 <= k <= len(ids):
        raise AlgorithmError(f"k must be in [1, {len(ids)}], got {k}")
    cost_before, rounds_before = session.spent()

    if k == len(ids) or len(ids) < config.min_items_for_selection:
        ranked = reference_sort(session, ids, reference=None)
        cost_after, rounds_after = session.spent()
        return SPRResult(
            topk=tuple(ranked[:k]),
            selection=None,
            partition_result=None,
            recursed=False,
            cost=cost_after - cost_before,
            rounds=rounds_after - rounds_before,
        )

    reference = prior_reference(ids, k, priors, config.sweet_spot)
    part = partition(
        session, ids, k, reference,
        max_reference_changes=config.max_reference_changes,
    )
    winners = list(part.winners)
    ties = list(part.ties)
    losers = list(part.losers)

    recursed = False
    promoted: tuple[int, ...] = ()
    if len(winners) >= k:
        # Same blow-up guard as plain SPR, but more likely to matter here:
        # a badly wrong prior can put the reference near the bottom, making
        # almost every item a "winner" — sorting that set costs O(|W|²·B).
        # Re-querying the winners with sampling-based SPR caps the damage
        # at one extra (normal-priced) query.
        blow_up = len(winners) > max(
            math.ceil(3 * config.sweet_spot * k), config.min_items_for_selection
        )
        if blow_up:
            inner = spr_topk(session, winners, k, config)
            cost_after, rounds_after = session.spent()
            return SPRResult(
                topk=inner.topk,
                selection=inner.selection,
                partition_result=part,
                recursed=True,
                cost=cost_after - cost_before,
                rounds=rounds_after - rounds_before,
            )
        candidates = winners
    elif len(winners) + len(ties) >= k:
        shortfall = k - len(winners)
        pick = session.rng.choice(len(ties), size=shortfall, replace=False)
        promoted = tuple(ties[int(p)] for p in pick)
        candidates = winners + list(promoted)
    else:
        recursed = True
        shortfall = k - len(winners) - len(ties)
        tail = spr_topk_with_prior(session, losers, shortfall, priors, config)
        candidates = winners + ties + list(tail.topk)

    ranked = reference_sort(session, candidates, reference=part.reference)
    cost_after, rounds_after = session.spent()
    return SPRResult(
        topk=tuple(ranked[:k]),
        selection=None,
        partition_result=part,
        recursed=recursed,
        cost=cost_after - cost_before,
        rounds=rounds_after - rounds_before,
        promoted_ties=promoted,
    )
