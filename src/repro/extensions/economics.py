"""Crowdsourcing economics — Appendix B of the paper.

The paper classifies crowdsourcing work into four categories (Table 8) and
prices its own microtasks at 0.1 US cents each on CrowdFlower.  This
module carries that operational context into code: category metadata, a
dollar calculator, and a session bill that turns ledger readings into the
numbers a deployment actually budgets for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = [
    "TaskCategory",
    "TASK_CATEGORIES",
    "MICROTASK_UNIT_COST_USD",
    "dollars_for",
    "CostBreakdown",
    "session_bill",
]

#: The paper's observed unit price: 0.1 US cents per pairwise microtask
#: (both binary and preference questions — Appendix B measures the same
#: price and near-identical answer times for both).
MICROTASK_UNIT_COST_USD = 0.001


@dataclass(frozen=True)
class TaskCategory:
    """One row of Table 8: a class of crowdsourcing work."""

    name: str
    volume: str
    cost: str
    examples: tuple[str, ...]


#: Table 8 — crowdsourcing task categories.  Pairwise judgments (binary
#: and preference alike) belong to the "micro" category.
TASK_CATEGORIES = {
    "micro": TaskCategory(
        name="micro",
        volume="very high",
        cost="very low",
        examples=(
            "label an image",
            "verify an address",
            "simple entity resolution",
            "pairwise preference judgment",
        ),
    ),
    "macro": TaskCategory(
        name="macro",
        volume="high",
        cost="low",
        examples=(
            "write a restaurant review",
            "test a new website feature",
            "identify a galaxy",
        ),
    ),
    "simple": TaskCategory(
        name="simple",
        volume="low",
        cost="moderate",
        examples=("design a logo", "write a term paper"),
    ),
    "complex": TaskCategory(
        name="complex",
        volume="single",
        cost="high",
        examples=("build a website", "develop a software system"),
    ),
}


def dollars_for(
    microtasks: int, unit_cost_usd: float = MICROTASK_UNIT_COST_USD
) -> float:
    """US-dollar cost of ``microtasks`` at the given unit price."""
    if microtasks < 0:
        raise ValueError(f"microtasks must be >= 0, got {microtasks}")
    if unit_cost_usd < 0:
        raise ValueError(f"unit_cost_usd must be >= 0, got {unit_cost_usd}")
    return microtasks * unit_cost_usd


@dataclass(frozen=True)
class CostBreakdown:
    """Everything a deployment budgets for, derived from one session."""

    microtasks: int
    comparisons: int
    rounds: int
    dollars: float
    mean_workload: float

    def summary(self) -> str:
        """One-line human-readable bill."""
        return (
            f"{self.microtasks:,} microtasks over {self.comparisons:,} "
            f"comparisons ({self.mean_workload:.1f} avg) in "
            f"{self.rounds:,} rounds — US${self.dollars:,.2f}"
        )


def session_bill(
    session: "CrowdSession",
    unit_cost_usd: float = MICROTASK_UNIT_COST_USD,
) -> CostBreakdown:
    """Turn a session's ledgers into a :class:`CostBreakdown`."""
    microtasks = session.cost.microtasks
    comparisons = session.cost.comparisons
    return CostBreakdown(
        microtasks=microtasks,
        comparisons=comparisons,
        rounds=session.latency.rounds,
        dollars=dollars_for(microtasks, unit_cost_usd),
        mean_workload=microtasks / comparisons if comparisons else 0.0,
    )
