"""Extensions beyond the paper's core contribution.

The paper's conclusion (§7) sketches two follow-ups, both implemented
here:

* :mod:`~repro.extensions.interval_ranking` — keep buying judgments past
  the stopping point to *tighten* the intervals, then infer a partial
  ranking from interval separation alone.
* :mod:`~repro.extensions.prior_selection` — use partial prior knowledge
  of item scores (à la Ciceri et al. [11]) to pick the reference without
  paying for the sampling phase.

Plus the Appendix-B operational material:

* :mod:`~repro.extensions.economics` — task categories, unit costs and
  dollar accounting for real crowdsourcing deployments.
"""

from .economics import (
    TASK_CATEGORIES,
    CostBreakdown,
    TaskCategory,
    dollars_for,
    session_bill,
)
from .incremental import InsertionResult, insert_item
from .interval_ranking import IntervalEstimate, PartialOrder, interval_partial_order
from .prior_selection import prior_reference, spr_topk_with_prior

__all__ = [
    "CostBreakdown",
    "InsertionResult",
    "IntervalEstimate",
    "PartialOrder",
    "TASK_CATEGORIES",
    "TaskCategory",
    "dollars_for",
    "insert_item",
    "interval_partial_order",
    "prior_reference",
    "session_bill",
    "spr_topk_with_prior",
]
