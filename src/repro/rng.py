"""Deterministic random-number management.

Every randomized component in the library takes a
:class:`numpy.random.Generator`.  Experiments that average over many runs
spawn one child generator per run from a root seed so that

* the whole experiment is reproducible bit-for-bit from a single seed, and
* individual runs are statistically independent streams.

The helpers here are thin wrappers over :class:`numpy.random.SeedSequence`,
which provides exactly those guarantees.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

__all__ = ["make_rng", "spawn", "spawn_many", "stream"]


def make_rng(seed: int | None | np.random.Generator = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (OS entropy), an integer seed, or an existing generator
    (returned unchanged) so that public APIs can take a single ``seed``
    argument of any of these forms.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive one statistically independent child generator from ``rng``."""
    return spawn_many(rng, 1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Children are seeded from fresh entropy drawn out of ``rng`` itself, so
    the parent stream advances and repeated calls yield different children.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def stream(rng: np.random.Generator) -> Iterator[np.random.Generator]:
    """Yield an endless sequence of independent child generators."""
    while True:
        yield spawn(rng)
