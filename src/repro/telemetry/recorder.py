"""The flight recorder: a bounded ring buffer of structured query events.

Post-hoc aggregates answer "what did the query cost"; they cannot answer
"what was the engine doing right before it fell over".  A
:class:`FlightRecorder` keeps the last *N* structured events — comparison
resolutions, span closes, reference changes, injected faults, retries,
checkpoints, degraded ties — in a fixed-size ring, stamped with a
monotonically increasing sequence number and a wall-clock time.  It
subscribes through the two observation channels the library already has
(:meth:`MetricsRegistry.add_listener` for registry events,
:meth:`CrowdSession.add_compare_listener` for per-comparison records), so
recording never patches globals and never touches RNG or ledgers — a
recorded query is bit-identical to an unrecorded one.

The ring dumps to JSON on demand (:meth:`FlightRecorder.dump`) or
automatically on an unhandled exception (:meth:`FlightRecorder.guard`) —
the crowdsourcing equivalent of the black box surviving the crash.  The
observatory server's ``/events`` endpoint serves the live tail.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

from contextlib import contextmanager

from .sinks import _jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.comparison import ComparisonRecord
    from ..crowd.session import CrowdSession
    from .registry import MetricsRegistry

__all__ = ["FlightRecorder"]

#: Default ring capacity (events retained before the oldest drop off).
DEFAULT_CAPACITY = 2048


class FlightRecorder:
    """Bounded, thread-safe ring buffer of telemetry events.

    Parameters
    ----------
    capacity:
        Events retained; older ones fall off the ring.  Total events seen
        is still available as :attr:`events_seen`.
    clock:
        Wall-clock source for the ``t`` stamp (injectable for tests).
    """

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, clock=time.time
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._clock = clock
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._seq = 0
        self._lock = threading.Lock()
        self._registry: "MetricsRegistry | None" = None
        self._session: "CrowdSession | None" = None

    # ------------------------------------------------------------------
    # attachment lifecycle
    # ------------------------------------------------------------------
    def attach(
        self,
        registry: "MetricsRegistry | None" = None,
        session: "CrowdSession | None" = None,
    ) -> "FlightRecorder":
        """Subscribe to a registry's event stream and/or a session's
        comparison feed (both idempotent; re-attach is a no-op)."""
        if registry is not None and self._registry is None:
            self._registry = registry
            registry.add_listener(self.record)
        if session is not None and self._session is None:
            self._session = session
            session.add_compare_listener(self.record_comparison)
        return self

    def detach(self) -> None:
        """Unsubscribe from both feeds (idempotent); the ring survives."""
        if self._registry is not None:
            self._registry.remove_listener(self.record)
            self._registry = None
        if self._session is not None:
            self._session.remove_compare_listener(self.record_comparison)
            self._session = None

    def __enter__(self) -> "FlightRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.detach()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(self, event: dict) -> None:
        """Capture one structured event (registry-listener compatible)."""
        with self._lock:
            self._seq += 1
            self._ring.append({"seq": self._seq, "t": self._clock(), **event})

    def record_many(self, events: list[dict]) -> None:
        """Capture a batch of structured events under one lock round-trip.

        The batched twin of :meth:`record` for coalesced per-round feeds:
        events receive consecutive sequence numbers and one shared
        timestamp, exactly as if :meth:`record` had been called back to
        back within a single clock tick.
        """
        if not events:
            return
        with self._lock:
            stamp = self._clock()
            for event in events:
                self._seq += 1
                self._ring.append({"seq": self._seq, "t": stamp, **event})

    def record_comparison(
        self, session: "CrowdSession", record: "ComparisonRecord"
    ) -> None:
        """Capture one resolved comparison (compare-listener compatible)."""
        self.record(
            {
                "type": "comparison",
                "left": record.left,
                "right": record.right,
                "outcome": record.outcome.name,
                "workload": record.workload,
                "cost": record.cost,
                "rounds": record.rounds,
                "from_cache": record.from_cache,
                "total_cost": session.cost.microtasks,
            }
        )

    # ------------------------------------------------------------------
    # reading and dumping
    # ------------------------------------------------------------------
    @property
    def events_seen(self) -> int:
        """Total events ever recorded (>= the ring's current length)."""
        return self._seq

    def __len__(self) -> int:
        return len(self._ring)

    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` events, oldest first (all when None)."""
        with self._lock:
            events = list(self._ring)
        if n is not None and n >= 0:
            events = events[-n:] if n else []
        return events

    def to_dict(self) -> dict:
        """JSON-ready document: the ring plus capture bookkeeping."""
        with self._lock:
            events = list(self._ring)
            seen = self._seq
        return {
            "capacity": self.capacity,
            "events_seen": seen,
            "events_dropped": max(seen - len(events), 0),
            "events": events,
        }

    def dump(self, path: str | Path, reason: str = "on-demand") -> Path:
        """Write the ring to ``path`` as one JSON document; returns it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {"reason": reason, "dumped_at": self._clock(), **self.to_dict()}
        path.write_text(
            json.dumps(document, default=_jsonable, indent=2) + "\n",
            encoding="utf-8",
        )
        if self._registry is not None:
            self._registry.counter("flight_recorder_dumps_total").inc()
        return path

    @contextmanager
    def guard(self, path: str | Path) -> Iterator["FlightRecorder"]:
        """Dump the ring to ``path`` if the block raises, then re-raise.

        The black-box contract: an unhandled exception anywhere inside
        the guarded query leaves the last N events on disk, annotated
        with the exception that killed the run.
        """
        try:
            yield self
        except BaseException as exc:
            self.record(
                {
                    "type": "crash",
                    "exception": type(exc).__name__,
                    "message": str(exc),
                }
            )
            self.dump(path, reason=f"unhandled {type(exc).__name__}")
            raise
