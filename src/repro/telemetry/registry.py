"""Metric primitives and the registry that owns them.

The paper's whole evaluation is an accounting exercise — total monetary
cost, latency rounds, per-phase breakdowns (§7, Fig. 12, Table 7) — so the
reproduction carries a first-class metrics layer:

* :class:`Counter` — monotonically increasing totals (microtasks bought,
  comparisons run, cache hits).
* :class:`Gauge` — point-in-time values (active racing pairs).
* :class:`Histogram` — streaming distributions with p50/p95/p99 quantile
  estimates (comparison workloads, per-run wall time).
* :class:`Span` — a timed region with crowd-cost attribution: entering a
  span snapshots the session's ledgers, exiting records the deltas, and
  nesting is tracked so *exclusive* (self-only) cost is always available.

A :class:`MetricsRegistry` owns one family of each, keyed by metric name
plus a frozen label set, and renders them as a JSON snapshot, a
Prometheus-style text exposition, or an aligned summary table.  Metric
*updates* are plain attribute arithmetic guarded only by the GIL — the
simulator is single-threaded per query — but instrument *creation* and
the read-side exports (:meth:`~MetricsRegistry.snapshot`,
:meth:`~MetricsRegistry.expose_text`) take an internal lock, so an HTTP
scrape thread (see :mod:`repro.telemetry.server`) can read mid-query
without racing a family being installed under its feet.
"""

from __future__ import annotations

import math
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Span",
    "MetricsRegistry",
]

LabelSet = tuple[tuple[str, str], ...]


def _freeze_labels(labels: dict[str, object]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(labels: LabelSet) -> str:
    if not labels:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in labels)
    return "{" + body + "}"


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(value: str) -> str:
    """Escaping for ``# HELP`` text: backslash and newline only (the
    exposition format leaves quotes alone outside label values)."""
    return value.replace("\\", "\\\\").replace("\n", "\\n")


#: Help strings emitted as ``# HELP`` lines for the library's own metric
#: names.  Instruments outside this catalog can attach help text with
#: :meth:`MetricsRegistry.describe`; nameless ones render without a HELP
#: line, which the exposition format permits.
METRIC_HELP: dict[str, str] = {
    "crowd_comparisons_total": "Pairwise comparison processes resolved.",
    "crowd_microtasks_total": "Judgments purchased (total monetary cost).",
    "crowd_cache_hits_total": "Comparisons answered from the judgment cache.",
    "crowd_budget_ties_total": "Comparisons that exhausted the per-pair budget.",
    "crowd_groups_total": "Parallel comparison groups, by engine.",
    "crowd_pool_rounds_total": "Vectorized racing rounds executed.",
    "crowd_lattice_rounds_total": "Fused multi-lane kernel passes executed.",
    "crowd_lattice_lanes": "Lanes raced by the last lattice batch.",
    "crowd_faults_total": "Injected platform faults, by mode.",
    "crowd_retries_total": "Re-issued rounds after delivery failures.",
    "crowd_degraded_ties_total": "Comparisons degraded to TIE by the resilience policy.",
    "crowd_checkpoints_total": "Checkpoints atomically written.",
    "oracle_judgments_total": "Raw judgments drawn from oracles.",
    "oracle_wasted_judgments_total": "Exactly-tied binary judgments redrawn.",
    "worker_careless_judgments_total": "Judgments contaminated by careless workers.",
    "spr_reference_changes_total": "Reference-change events during partitioning.",
    "spr_deferments_total": "Items deferred after tying with the reference.",
    "spr_recursions_total": "Recursive SPR invocations.",
    "experiment_runs_total": "Completed experiment runs per method.",
    "experiment_lattice_batches_total": "run_specs calls raced on the lattice.",
    "crowd_comparison_workload": "Judgments consumed per comparison.",
    "span_seconds": "Wall seconds per completed span.",
    "span_cost": "Microtasks per completed span.",
    "experiment_run_wall_seconds": "Wall seconds per experiment run.",
    "experiment_run_cost": "Total monetary cost per experiment run.",
    "observatory_requests_total": "HTTP requests served by the observatory.",
    "flight_recorder_dumps_total": "Flight-recorder dumps written to disk.",
    "service_queries_total": "Service queries finished, by tenant and terminal status.",
    "service_active_queries": "Service queries currently running.",
    "service_admissions_total": "Admission-control decisions, by outcome.",
    "service_sla_breaches_total": "Queries terminated by an SLA, by kind.",
    "service_recovered_queries_total": "Queries resumed from checkpoints after recovery.",
    "service_granted_microtasks_total": "Microtasks granted by the marketplace, by tenant.",
    "service_grant_waits_total": "Draw requests parked behind the marketplace, by tenant.",
    "service_cache_hits_total": "Shared-cache reads that found judgments, by tenant.",
    "service_cache_misses_total": "Shared-cache reads that found nothing, by tenant.",
    "service_cache_evictions_total": "Pairs evicted from the shared cache, by tenant.",
    "service_cache_entries": "Pairs held by the shared cross-query cache.",
    "service_cache_bytes": "Accounted bytes held by the shared cross-query cache.",
}


@dataclass
class Counter:
    """A monotonically increasing total."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount

    def add(self, amount: float) -> None:
        """Batched increment: one call for a whole round's worth of events.

        Identical to :meth:`inc` — integral totals below 2**53 make ``n``
        single increments and one ``add(n)`` bit-for-bit equal — but the
        explicit name marks call sites that coalesce per-record counting
        into per-round counting (see docs/observability.md).
        """
        if amount < 0:
            raise ValueError(f"counters only go up; got {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A point-in-time value that can move both ways."""

    name: str
    labels: LabelSet = ()
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """A streaming distribution with quantile estimates.

    Observations are kept exactly up to ``reservoir`` samples; beyond that
    a uniform reservoir sample stands in, so quantiles stay O(1) memory on
    unbounded streams.  Quantiles use the same linear interpolation as
    ``numpy.quantile`` and are exact below the reservoir size.
    """

    #: Default maximum number of retained observations.
    RESERVOIR = 4096

    def __init__(
        self, name: str, labels: LabelSet = (), reservoir: int | None = None
    ) -> None:
        self.name = name
        self.labels = labels
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._cap = reservoir if reservoir is not None else self.RESERVOIR
        self._values: list[float] = []
        # Deterministic reservoir choices keep snapshots reproducible.
        self._rng = random.Random(0x5EED ^ hash(name) & 0xFFFF)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._values) < self._cap:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self._cap:
                self._values[slot] = value

    def observe_many(self, values: "list[float] | tuple[float, ...]") -> None:
        """Record many observations in order, as :meth:`observe` would.

        ``sum`` accumulates value by value in the given order and the
        reservoir sees the same admission sequence, so the result is
        bit-identical to a loop of :meth:`observe` calls — the batching
        only removes the per-call method dispatch and, while the
        reservoir still has room, replaces per-value min/max/append
        bookkeeping with whole-batch operations.
        """
        if not values:
            return
        values = [float(value) for value in values]
        if len(self._values) + len(values) <= self._cap:
            # Reservoir fits: admission is a plain extend, min/max reduce
            # over the batch, and only the sum keeps its sequential order
            # (float addition is not associative).
            for value in values:
                self.sum += value
            self.count += len(values)
            low, high = min(values), max(values)
            if low < self.min:
                self.min = low
            if high > self.max:
                self.max = high
            self._values.extend(values)
        else:
            for value in values:
                self.observe(value)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (exact below the reservoir size)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self._values:
            return math.nan
        ordered = sorted(self._values)
        position = q * (len(ordered) - 1)
        lower = math.floor(position)
        upper = math.ceil(position)
        if lower == upper:
            return ordered[lower]
        fraction = position - lower
        return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction

    def percentiles(self) -> dict[str, float]:
        """The standard p50/p95/p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def merge_from(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one.

        Count, sum, min and max combine exactly.  Retained samples are
        appended while the reservoir has room; beyond the cap the incoming
        samples go through the same deterministic reservoir replacement as
        :meth:`observe`, so quantiles stay exact whenever the *combined*
        stream fits the reservoir and remain estimates past it.
        """
        if other.count == 0:
            return
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for value in other._values:
            if len(self._values) < self._cap:
                self._values.append(value)
            else:
                slot = self._rng.randrange(self.count)
                if slot < self._cap:
                    self._values[slot] = value


@dataclass
class Span:
    """One timed region, optionally attributed with crowd spending.

    When opened with a session, ``cost``/``rounds`` hold the ledger deltas
    the region produced *including* nested spans; the ``child_*`` fields
    accumulate what nested spans claimed, so ``exclusive_cost`` /
    ``exclusive_rounds`` never double-count a microtask across a span tree.
    """

    name: str
    parent: str | None = None
    depth: int = 0
    seconds: float = 0.0
    cost: int | None = None
    rounds: int | None = None
    child_seconds: float = 0.0
    child_cost: int = 0
    child_rounds: int = 0
    attrs: dict[str, object] = field(default_factory=dict)
    _started: float = 0.0
    _cost0: int = 0
    _rounds0: int = 0

    @property
    def exclusive_cost(self) -> int | None:
        """Microtasks spent in this span but not in any nested span."""
        if self.cost is None:
            return None
        return self.cost - self.child_cost

    @property
    def exclusive_rounds(self) -> int | None:
        """Latency rounds charged in this span but not in any nested span."""
        if self.rounds is None:
            return None
        return self.rounds - self.child_rounds

    @property
    def exclusive_seconds(self) -> float:
        return self.seconds - self.child_seconds

    def to_dict(self) -> dict[str, object]:
        """JSON-ready representation (used by sinks and snapshots)."""
        payload: dict[str, object] = {
            "name": self.name,
            "parent": self.parent,
            "depth": self.depth,
            "seconds": self.seconds,
        }
        if self.cost is not None:
            payload["cost"] = self.cost
            payload["exclusive_cost"] = self.exclusive_cost
        if self.rounds is not None:
            payload["rounds"] = self.rounds
            payload["exclusive_rounds"] = self.exclusive_rounds
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        return payload


class MetricsRegistry:
    """Owns all metric families and completed spans of one scope.

    One registry is typically installed process-wide (see
    :func:`repro.telemetry.get_registry`) and replaced with a fresh one per
    query / benchmark via :func:`repro.telemetry.use_registry` when an
    isolated snapshot is wanted.
    """

    #: Completed spans kept before the oldest are dropped (a recursion
    #: backstop; drops are themselves counted).
    MAX_SPANS = 50_000

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelSet], Counter] = {}
        self._gauges: dict[tuple[str, LabelSet], Gauge] = {}
        self._histograms: dict[tuple[str, LabelSet], Histogram] = {}
        self.spans: list[Span] = []
        self.dropped_spans = 0
        self._span_stack: list[Span] = []
        self._listeners: list[Callable[[dict[str, object]], None]] = []
        self._help: dict[str, str] = {}
        # Guards family creation and the read-side exports against a
        # concurrent scrape thread; value arithmetic stays lock-free.
        self._lock = threading.RLock()

    def __getstate__(self) -> dict:
        # Worker registries travel back to the parent process (the
        # parallel experiment engine); locks and listeners do not pickle
        # and never transfer.
        state = self.__dict__.copy()
        state["_lock"] = None
        state["_listeners"] = []
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # metric families
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` with ``labels`` (created on first use)."""
        key = (name, _freeze_labels(labels))
        found = self._counters.get(key)
        if found is None:
            with self._lock:
                found = self._counters.setdefault(key, Counter(name, key[1]))
        return found

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge ``name`` with ``labels`` (created on first use)."""
        key = (name, _freeze_labels(labels))
        found = self._gauges.get(key)
        if found is None:
            with self._lock:
                found = self._gauges.setdefault(key, Gauge(name, key[1]))
        return found

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The histogram ``name`` with ``labels`` (created on first use)."""
        key = (name, _freeze_labels(labels))
        found = self._histograms.get(key)
        if found is None:
            with self._lock:
                found = self._histograms.setdefault(key, Histogram(name, key[1]))
        return found

    def counter_value(self, name: str, **labels: object) -> float:
        """Current value of a counter (0 when it was never touched)."""
        found = self._counters.get((name, _freeze_labels(labels)))
        return found.value if found is not None else 0.0

    def counter_total(self, name: str) -> float:
        """Sum of a counter family across every label set."""
        with self._lock:
            return sum(
                counter.value
                for (counter_name, _), counter in self._counters.items()
                if counter_name == name
            )

    def describe(self, name: str, help_text: str) -> None:
        """Attach ``# HELP`` text to metric family ``name``.

        Library metric names carry defaults (:data:`METRIC_HELP`);
        ``describe`` overrides those or documents custom instruments.
        """
        with self._lock:
            self._help[name] = help_text

    def help_for(self, name: str) -> str | None:
        """The HELP text for ``name`` (explicit beats catalog; None if none)."""
        return self._help.get(name) or METRIC_HELP.get(name)

    # ------------------------------------------------------------------
    # spans and timers
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, session: "CrowdSession | None" = None, **attrs: object
    ) -> Iterator[Span]:
        """Time a region; with a session, attribute its ledger deltas.

        Spans nest: a span opened while another is active records that
        parent, and on exit reports its inclusive totals upward so parents
        can expose exclusive (self-only) figures.
        """
        parent = self._span_stack[-1] if self._span_stack else None
        span = Span(
            name=name,
            parent=parent.name if parent is not None else None,
            depth=len(self._span_stack),
            attrs=dict(attrs),
        )
        if session is not None:
            span._cost0, span._rounds0 = session.spent()
            span.cost = 0
            span.rounds = 0
        span._started = time.perf_counter()
        self._span_stack.append(span)
        try:
            yield span
        finally:
            self._span_stack.pop()
            span.seconds = time.perf_counter() - span._started
            if session is not None:
                cost, rounds = session.spent()
                span.cost = cost - span._cost0
                span.rounds = rounds - span._rounds0
            if parent is not None:
                parent.child_seconds += span.seconds
                parent.child_cost += span.cost or 0
                parent.child_rounds += span.rounds or 0
            self._finish_span(span)

    def _finish_span(self, span: Span) -> None:
        with self._lock:
            if len(self.spans) >= self.MAX_SPANS:
                self.dropped_spans += 1
            else:
                self.spans.append(span)
        self.histogram("span_seconds", span=span.name).observe(span.seconds)
        if span.cost is not None:
            self.histogram("span_cost", span=span.name).observe(span.cost)
        event = {"type": "span", **span.to_dict()}
        for listener in list(self._listeners):
            listener(event)

    def active_spans(self) -> list[str]:
        """Names of the currently open spans, outermost first.

        The innermost name is the live "phase" a progress endpoint
        reports; safe to call from a scrape thread (a snapshot copy).
        """
        return [span.name for span in list(self._span_stack)]

    # ------------------------------------------------------------------
    # structured events (flight recorder / streaming sinks)
    # ------------------------------------------------------------------
    @property
    def has_listeners(self) -> bool:
        """Whether any event listener is attached.

        Hot paths whose :meth:`emit` *arguments* are themselves expensive
        to build (per-pair id lists, aggregates) check this first so the
        payload is never constructed for nobody — ``emit`` alone only
        protects against the broadcast, not the argument evaluation at
        the call site.
        """
        return bool(self._listeners)

    def emit(self, event_type: str, **fields: object) -> None:
        """Broadcast a structured event to every listener.

        Free when nobody listens — instrumented hot paths call this for
        notable moments (reference change, degraded tie, retry, fault,
        checkpoint) and pay only a truthiness check until a flight
        recorder or JSONL sink subscribes.  Events never touch RNG or
        ledgers, so recording cannot perturb a query.
        """
        if not self._listeners:
            return
        event = {"type": event_type, **fields}
        for listener in list(self._listeners):
            listener(event)

    @contextmanager
    def timer(self, name: str, **labels: object) -> Iterator[None]:
        """Observe the wall time of a region into histogram ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.histogram(name, **labels).observe(time.perf_counter() - started)

    # ------------------------------------------------------------------
    # listeners (streaming sinks subscribe here)
    # ------------------------------------------------------------------
    def add_listener(self, listener: Callable[[dict[str, object]], None]) -> None:
        """Subscribe to telemetry events (span completions, :meth:`emit`)."""
        with self._lock:
            if listener not in self._listeners:
                self._listeners.append(listener)

    def remove_listener(self, listener: Callable[[dict[str, object]], None]) -> None:
        """Unsubscribe a previously added listener (no-op when absent)."""
        with self._lock:
            if listener in self._listeners:
                self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # merging (parallel experiment workers reconcile through this)
    # ------------------------------------------------------------------
    def merge(self, *others: "MetricsRegistry") -> "MetricsRegistry":
        """Fold other registries into this one; returns ``self``.

        The reconciliation rules match what each instrument means:

        * **counters** add — totals from independent workers sum;
        * **gauges** last-write — the value from the last merged registry
          (merge in chronological order to mirror a serial execution);
        * **histograms** combine — exact ``count``/``sum``/``min``/``max``,
          reservoir samples appended (see :meth:`Histogram.merge_from`);
        * **spans** concatenate in merge order, still bounded by
          ``MAX_SPANS`` (overflow counts into ``dropped_spans``).

        Listeners do not transfer: merged spans were already completed in
        their source registry and are not re-announced.  Merging worker
        registries spawned by the parallel experiment engine in task order
        reproduces the serial registry exactly (up to wall-clock timings
        and histogram reservoirs past the cap).
        """
        for other in others:
            if other is self:
                raise ValueError("cannot merge a registry into itself")
            with self._lock:
                self._help.update(other._help)
            for (name, labels), counter in other._counters.items():
                self.counter(name, **dict(labels)).inc(counter.value)
            for (name, labels), gauge in other._gauges.items():
                self.gauge(name, **dict(labels)).set(gauge.value)
            for (name, labels), histogram in other._histograms.items():
                self.histogram(name, **dict(labels)).merge_from(histogram)
            for span in other.spans:
                if len(self.spans) >= self.MAX_SPANS:
                    self.dropped_spans += 1
                else:
                    self.spans.append(span)
            self.dropped_spans += other.dropped_spans
        return self

    # ------------------------------------------------------------------
    # exports
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, object]:
        """A JSON-ready snapshot of every metric and completed span."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> dict[str, object]:
        return {
            "counters": [
                {"name": c.name, "labels": dict(c.labels), "value": c.value}
                for _, c in sorted(self._counters.items())
            ],
            "gauges": [
                {"name": g.name, "labels": dict(g.labels), "value": g.value}
                for _, g in sorted(self._gauges.items())
            ],
            "histograms": [
                {
                    "name": h.name,
                    "labels": dict(h.labels),
                    "count": h.count,
                    "sum": h.sum,
                    "min": h.min if h.count else None,
                    "max": h.max if h.count else None,
                    **h.percentiles(),
                }
                for _, h in sorted(self._histograms.items())
            ],
            "spans": [s.to_dict() for s in self.spans],
            "dropped_spans": self.dropped_spans,
        }

    def expose_text(self) -> str:
        """Prometheus-style text exposition of all metrics.

        Counters and gauges render as their native types; histograms render
        as summaries (quantile-labelled samples plus ``_sum``/``_count``).
        Each family opens with its ``# HELP`` line (when help text is
        known — see :meth:`describe` and :data:`METRIC_HELP`) followed by
        ``# TYPE``.  Thread-safe: the whole exposition renders under the
        registry lock, so a scrape never interleaves with family creation.
        """
        with self._lock:
            return self._expose_text_locked()

    def _expose_text_locked(self) -> str:
        lines: list[str] = []
        seen_types: set[str] = set()

        def header(name: str, kind: str) -> None:
            if name not in seen_types:
                seen_types.add(name)
                help_text = self.help_for(name)
                if help_text:
                    lines.append(f"# HELP {name} {_escape_help(help_text)}")
                lines.append(f"# TYPE {name} {kind}")

        for _, counter in sorted(self._counters.items()):
            header(counter.name, "counter")
            lines.append(
                f"{counter.name}{_label_suffix(counter.labels)} {_num(counter.value)}"
            )
        for _, gauge in sorted(self._gauges.items()):
            header(gauge.name, "gauge")
            lines.append(
                f"{gauge.name}{_label_suffix(gauge.labels)} {_num(gauge.value)}"
            )
        for _, hist in sorted(self._histograms.items()):
            header(hist.name, "summary")
            for q, value in (
                ("0.5", hist.quantile(0.5)),
                ("0.95", hist.quantile(0.95)),
                ("0.99", hist.quantile(0.99)),
            ):
                labels = _freeze_labels(
                    {**dict(hist.labels), "quantile": q}
                )
                lines.append(f"{hist.name}{_label_suffix(labels)} {_num(value)}")
            suffix = _label_suffix(hist.labels)
            lines.append(f"{hist.name}_sum{suffix} {_num(hist.sum)}")
            lines.append(f"{hist.name}_count{suffix} {_num(hist.count)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def summary_table(self) -> str:
        """An aligned human-readable digest (printed by the CLI)."""
        with self._lock:
            return self._summary_table_locked()

    def _summary_table_locked(self) -> str:
        lines: list[str] = ["telemetry summary", "-----------------"]
        if self._counters:
            lines.append("counters:")
            for _, counter in sorted(self._counters.items()):
                label = counter.name + _label_suffix(counter.labels)
                lines.append(f"  {label:44s} {_short(counter.value):>12s}")
        if self._gauges:
            lines.append("gauges:")
            for _, gauge in sorted(self._gauges.items()):
                label = gauge.name + _label_suffix(gauge.labels)
                lines.append(f"  {label:44s} {_short(gauge.value):>12s}")
        if self._histograms:
            lines.append(
                f"  {'histogram':42s} {'count':>8s} {'mean':>10s}"
                f" {'p50':>10s} {'p95':>10s} {'p99':>10s}"
            )
            for _, hist in sorted(self._histograms.items()):
                pct = hist.percentiles()
                label = hist.name + _label_suffix(hist.labels)
                lines.append(
                    f"  {label:42s} {hist.count:8d} {_short(hist.mean):>10s}"
                    f" {_short(pct['p50']):>10s} {_short(pct['p95']):>10s}"
                    f" {_short(pct['p99']):>10s}"
                )
        if self.spans:
            totals: dict[str, list[float]] = {}
            for span in self.spans:
                bucket = totals.setdefault(span.name, [0, 0.0, 0, 0])
                bucket[0] += 1
                bucket[1] += span.exclusive_seconds
                bucket[2] += span.exclusive_cost or 0
                bucket[3] += span.exclusive_rounds or 0
            lines.append(
                f"  {'span (exclusive totals)':42s} {'count':>8s}"
                f" {'seconds':>10s} {'cost':>10s} {'rounds':>10s}"
            )
            for name, (count, secs, cost, rounds) in sorted(totals.items()):
                lines.append(
                    f"  {name:42s} {count:8d} {secs:>10.3f}"
                    f" {int(cost):>10d} {int(rounds):>10d}"
                )
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every metric, span, listener, and described help text."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self.spans.clear()
            self.dropped_spans = 0
            self._span_stack.clear()
            self._listeners.clear()
            self._help.clear()


def _short(value: float) -> str:
    """Compact rendering for the human summary table."""
    if value != value:
        return "-"
    if float(value).is_integer() and abs(value) < 1e15:
        return f"{int(value):,d}"
    return f"{value:.4g}"


def _num(value: float) -> str:
    """Render a metric value the way Prometheus expects."""
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
