"""Telemetry sinks: JSONL event/snapshot export.

A :class:`JsonlSink` turns telemetry into a machine-readable audit trail:
subscribe it to a registry and every completed span streams out as one
JSON line; call :meth:`JsonlSink.write_snapshot` at the end of a query or
benchmark and the full registry state follows — one line per metric, then
a single ``snapshot`` line holding everything, so downstream tooling can
either tail the file or just parse the last line.

The text expositions (Prometheus format, summary table) live on
:class:`~repro.telemetry.registry.MetricsRegistry` itself; this module
only handles files.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .registry import MetricsRegistry

__all__ = ["JsonlSink", "read_jsonl"]


class JsonlSink:
    """Write telemetry events and snapshots to a JSON-lines file.

    Usable as a context manager; the file is opened lazily on the first
    write so constructing a sink never touches the filesystem.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._handle: IO[str] | None = None

    def _file(self) -> IO[str]:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open("w", encoding="utf-8")
        return self._handle

    def open(self) -> "JsonlSink":
        """Open the file now instead of on first write.

        Lets callers surface an unwritable path before doing the work
        whose telemetry would be lost.
        """
        self._file()
        return self

    def write_event(self, event: dict[str, object]) -> None:
        """Append one event as a JSON line (registry-listener compatible)."""
        handle = self._file()
        handle.write(json.dumps(event, default=_jsonable) + "\n")
        handle.flush()

    def write_snapshot(self, registry: "MetricsRegistry") -> None:
        """Write every metric as its own line, then the full snapshot."""
        snapshot = registry.snapshot()
        for kind in ("counters", "gauges", "histograms"):
            for entry in snapshot[kind]:
                self.write_event({"type": kind[:-1], **entry})
        self.write_event({"type": "snapshot", **snapshot})

    def close(self) -> None:
        """Flush, fsync, and close the underlying file (idempotent).

        The fsync pins every telemetry line to disk before the process
        can exit, so a crash immediately after a query still leaves the
        full snapshot readable — telemetry files double as audit trails.
        """
        if self._handle is not None:
            try:
                self._handle.flush()
                os.fsync(self._handle.fileno())
            except (OSError, ValueError):  # pragma: no cover - exotic targets
                pass  # pipes and pseudo-files may not support fsync
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[dict[str, object]]:
    """Parse a JSONL telemetry file back into a list of events."""
    events = []
    with Path(path).open(encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def _jsonable(value: object) -> object:
    """Fallback serializer for numpy scalars and similar."""
    for attribute in ("item",):
        method = getattr(value, attribute, None)
        if callable(method):
            return method()
    return str(value)
