"""The live query observatory: a dependency-free HTTP metrics server.

A research engine becomes an operable system the moment someone can watch
it without attaching a debugger.  :class:`ObservatoryServer` wraps a
stdlib :class:`~http.server.ThreadingHTTPServer` around the telemetry the
library already produces and serves four read-only endpoints:

``/metrics``
    The registry's Prometheus text exposition (scrape it).
``/healthz``
    Liveness: ``{"status": "ok", "uptime_seconds": ...}``.
``/queries``
    Live progress of every registered query session — current phase,
    partition round, items resolved/deferred, budget spent vs. cap,
    degraded ties, estimated rounds remaining.
``/events``
    The flight recorder's tail (``?n=100`` bounds the window).

Everything above is read-only and lock-guarded, so continuous scraping
cannot perturb a running query: same top-k, same cost, same RNG state as
an unserved run — the serving-invariance integration test pins this.

With a :class:`~repro.service.QueryService` attached (``service=``), the
observatory becomes the service's network front door as well:
``/queries`` switches to the service's tenant-aware document (per-query
tenant, SLAs, status, live progress, plus cache/marketplace/admission
totals), and three service routes open up — ``POST /submit`` (a
:class:`~repro.service.QuerySpec` document in the body, the new query id
in the response), ``POST /cancel?id=...``, and ``GET /result?id=...``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import TYPE_CHECKING
from urllib.parse import parse_qs, urlsplit

from .sinks import _jsonable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession
    from ..service import QueryService
    from .recorder import FlightRecorder
    from .registry import MetricsRegistry

__all__ = ["QueryBoard", "ObservatoryServer", "get_query_board", "parse_address"]


def parse_address(spec: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``PORT``) into a bind address.

    ``:0`` and ``0`` request an ephemeral port — the server publishes the
    one the kernel handed out via :attr:`ObservatoryServer.port`.
    """
    spec = spec.strip()
    host, sep, port = spec.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", spec
    host = host or "127.0.0.1"
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(
            f"invalid serve address {spec!r}; expected HOST:PORT"
        ) from None


class QueryBoard:
    """A thread-safe roster of live query sessions.

    The observatory's ``/queries`` endpoint reads it; the CLI (or any
    embedding service) registers each session under a stable name for the
    duration of its query.  Sessions finished-but-not-unregistered keep
    reporting their final state, which is handy for post-run scrapes.
    """

    def __init__(self) -> None:
        self._sessions: dict[str, "CrowdSession"] = {}
        self._lock = threading.Lock()

    def register(self, name: str, session: "CrowdSession") -> None:
        """Expose ``session`` as ``name`` (replaces a previous holder)."""
        with self._lock:
            self._sessions[name] = session

    def unregister(self, name: str) -> None:
        """Remove ``name`` from the roster (no-op when absent)."""
        with self._lock:
            self._sessions.pop(name, None)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._sessions)

    def progress(self) -> dict:
        """One JSON-ready document covering every registered query."""
        with self._lock:
            sessions = dict(self._sessions)
        queries = []
        for name in sorted(sessions):
            try:
                doc = sessions[name].progress()
            except Exception as exc:  # torn mid-mutation read: report, don't die
                doc = {"error": f"{type(exc).__name__}: {exc}"}
            queries.append({"query": name, **doc})
        return {"queries": queries}


#: Process-wide default board.  Publishers that outlive any single server
#: (the racing lattice's lanes, the CLI's ``--serve`` query) meet here, so
#: an observatory constructed over :func:`get_query_board` sees them all.
_default_board = QueryBoard()


def get_query_board() -> QueryBoard:
    """The process-wide default :class:`QueryBoard`.

    :class:`ObservatoryServer` still defaults to a private empty board —
    embedders that want the shared roster pass ``queries=get_query_board()``
    (the CLI's ``--serve`` does).  The racing lattice registers each lane's
    session here for the duration of a run, so a live ``/queries`` scrape
    shows per-lane progress.
    """
    return _default_board


class _Handler(BaseHTTPRequestHandler):
    """Routes the observatory endpoints; everything else is 404."""

    server: "_ObservatoryHTTPServer"
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        observatory = self.server.observatory
        observatory._count_request(route)
        if route == "/metrics":
            self._send(200, observatory.registry.expose_text(),
                       "text/plain; version=0.0.4; charset=utf-8")
        elif route == "/healthz":
            self._send_json(200, observatory.health())
        elif route == "/queries":
            self._send_json(200, observatory.queries_payload())
        elif route == "/events":
            params = parse_qs(split.query)
            try:
                n = int(params["n"][0]) if "n" in params else None
            except ValueError:
                self._send_json(400, {"error": "n must be an integer"})
                return
            self._send_json(200, observatory.events(n))
        elif route == "/result":
            self._handle_result(split.query)
        else:
            self._send_json(404, {
                "error": f"no route {route!r}",
                "routes": observatory.routes(),
            })

    def do_POST(self) -> None:  # noqa: N802 - http.server naming
        split = urlsplit(self.path)
        route = split.path.rstrip("/") or "/"
        observatory = self.server.observatory
        observatory._count_request(route)
        if observatory.service is None:
            self._send_json(404, {
                "error": "no query service attached",
                "routes": observatory.routes(),
            })
            return
        if route == "/submit":
            self._handle_submit()
        elif route == "/cancel":
            self._handle_cancel(split.query)
        else:
            self._send_json(404, {
                "error": f"no POST route {route!r}",
                "routes": ["/submit", "/cancel"],
            })

    # ------------------------------------------------------------------
    # service routes
    # ------------------------------------------------------------------
    def _read_body(self) -> dict | None:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            length = 0
        if length <= 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        if not isinstance(payload, dict):
            self._send_json(400, {"error": "body must be a JSON object"})
            return None
        return payload

    def _handle_submit(self) -> None:
        from ..errors import AdmissionError, ConfigError, ServiceError
        from ..service import spec_from_document

        payload = self._read_body()
        if payload is None:
            return
        try:
            spec = spec_from_document(payload)
            handle = self.server.observatory.service.submit(spec)
        except (ConfigError, ValueError, TypeError) as exc:
            self._send_json(400, {"error": str(exc)})
        except AdmissionError as exc:
            self._send_json(429, {"error": str(exc)})
        except ServiceError as exc:
            self._send_json(409, {"error": str(exc)})
        else:
            self._send_json(202, {
                "id": handle.id,
                "query": spec.display_name,
                "tenant": spec.tenant,
                "status": handle.status(),
            })

    def _lookup_handle(self, query: str):
        params = parse_qs(query)
        id = params.get("id", [None])[0]
        if not id:
            self._send_json(400, {"error": "missing ?id=<query id>"})
            return None
        try:
            return self.server.observatory.service.handle(id)
        except KeyError:
            self._send_json(404, {"error": f"no query {id!r}"})
            return None

    def _handle_cancel(self, query: str) -> None:
        handle = self._lookup_handle(query)
        if handle is None:
            return
        cancelled = handle.cancel()
        self._send_json(200, {
            "id": handle.id,
            "cancelled": cancelled,
            "status": handle.status(),
        })

    def _handle_result(self, query: str) -> None:
        observatory = self.server.observatory
        if observatory.service is None:
            self._send_json(404, {
                "error": "no query service attached",
                "routes": observatory.routes(),
            })
            return
        handle = self._lookup_handle(query)
        if handle is None:
            return
        self._send_json(200 if handle.done else 202, handle.to_document())

    def _send_json(self, status: int, payload: dict) -> None:
        self._send(status, json.dumps(payload, default=_jsonable) + "\n",
                   "application/json; charset=utf-8")

    def _send(self, status: int, body: str, content_type: str) -> None:
        data = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, *args: object) -> None:
        """Silence per-request stderr chatter (metrics count requests)."""


class _ObservatoryHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    #: Back-reference installed by :class:`ObservatoryServer.start`.
    observatory: "ObservatoryServer"


class ObservatoryServer:
    """Serves telemetry over HTTP from a background daemon thread.

    Parameters
    ----------
    registry:
        The metrics registry ``/metrics`` exposes.  Defaults to the
        process-wide registry *at serve time*, so ``use_registry`` scopes
        apply.
    queries:
        The :class:`QueryBoard` behind ``/queries`` (a fresh empty board
        by default).
    recorder:
        The :class:`~repro.telemetry.recorder.FlightRecorder` behind
        ``/events`` (absent → the endpoint reports an empty tail).
    service:
        An attached :class:`~repro.service.QueryService`.  Switches
        ``/queries`` to the service's tenant-aware document and opens the
        ``POST /submit`` / ``POST /cancel`` / ``GET /result`` routes.
    host, port:
        Bind address; port 0 asks the kernel for an ephemeral port.

    Usable as a context manager: ``with ObservatoryServer(...) as obs:``
    starts on entry and stops (joining the thread) on exit.
    """

    def __init__(
        self,
        registry: "MetricsRegistry | None" = None,
        queries: QueryBoard | None = None,
        recorder: "FlightRecorder | None" = None,
        service: "QueryService | None" = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        if queries is None:
            queries = service.board if service is not None else QueryBoard()
        self.queries = queries
        self.recorder = recorder
        self.service = service
        self.host = host
        self.requested_port = port
        self._httpd: _ObservatoryHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._started_at: float | None = None

    # ------------------------------------------------------------------
    @property
    def registry(self) -> "MetricsRegistry":
        if self._registry is not None:
            return self._registry
        from . import get_registry  # deferred: the package imports this module

        return get_registry()

    @property
    def port(self) -> int:
        """The bound port (resolves 0 once the server has started)."""
        if self._httpd is not None:
            return self._httpd.server_address[1]
        return self.requested_port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    # ------------------------------------------------------------------
    def start(self) -> "ObservatoryServer":
        """Bind and serve from a daemon thread; returns self.

        Binding failures (port in use, bad host) surface here, before
        any query work starts.
        """
        if self._httpd is not None:
            return self
        httpd = _ObservatoryHTTPServer(
            (self.host, self.requested_port), _Handler
        )
        httpd.observatory = self
        self._httpd = httpd
        self._started_at = time.monotonic()
        self._thread = threading.Thread(
            target=httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="crowd-topk-observatory",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut down and join the serving thread (idempotent)."""
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObservatoryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # endpoint payloads (exposed for in-process use and tests)
    # ------------------------------------------------------------------
    def health(self) -> dict:
        uptime = (
            time.monotonic() - self._started_at
            if self._started_at is not None
            else 0.0
        )
        return {
            "status": "ok",
            "uptime_seconds": round(uptime, 3),
            "queries": self.queries.names(),
            "recorder_events": (
                self.recorder.events_seen if self.recorder is not None else 0
            ),
        }

    def routes(self) -> list[str]:
        """Every route this observatory serves (service routes when attached)."""
        routes = ["/metrics", "/healthz", "/queries", "/events"]
        if self.service is not None:
            routes += ["/submit", "/cancel", "/result"]
        return routes

    def queries_payload(self) -> dict:
        """The ``/queries`` document: service-aware when a service is attached."""
        if self.service is not None:
            return self.service.queries_document()
        return self.queries.progress()

    def events(self, n: int | None = None) -> dict:
        if self.recorder is None:
            return {"capacity": 0, "events_seen": 0, "events": []}
        document = self.recorder.to_dict()
        if n is not None:
            document["events"] = document["events"][-n:] if n > 0 else []
        return document

    def _count_request(self, route: str) -> None:
        self.registry.counter("observatory_requests_total", route=route).inc()
