"""Process-wide, injectable observability for the crowd simulator.

The evaluation of a crowdsourced ranker is an accounting problem: every
design decision shows up as microtasks bought, latency rounds charged, or
phase time spent.  This package provides the instruments:

* :class:`MetricsRegistry` with :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families and a nested :meth:`~MetricsRegistry.span`
  API that attributes crowd spending to timed regions.
* Sinks: :class:`JsonlSink` (machine-readable events + snapshots),
  ``registry.expose_text()`` (Prometheus text format) and
  ``registry.summary_table()`` (human digest).
* Live serving: :class:`ObservatoryServer` exposes ``/metrics``,
  ``/healthz``, ``/queries`` and ``/events`` over HTTP from a daemon
  thread; :class:`FlightRecorder` keeps a bounded ring of structured
  events and dumps it to JSON on crashes or on demand.
* A process-wide default registry with injection points: hot paths call
  :func:`get_registry` at use time, so :func:`use_registry` can scope a
  fresh registry to one query, benchmark, or test without plumbing a
  handle through every call signature.  ``CrowdSession`` additionally
  accepts an explicit per-session registry for full isolation.

Metric naming follows Prometheus conventions (``snake_case``, ``_total``
suffix on counters); ``docs/observability.md`` catalogues every name the
library emits.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator

from .recorder import FlightRecorder
from .registry import Counter, Gauge, Histogram, MetricsRegistry, Span
from .server import ObservatoryServer, QueryBoard, get_query_board, parse_address
from .sinks import JsonlSink, read_jsonl

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MetricsRegistry",
    "ObservatoryServer",
    "QueryBoard",
    "Span",
    "get_query_board",
    "get_registry",
    "parse_address",
    "read_jsonl",
    "set_registry",
    "use_registry",
    "use_thread_registry",
]

#: The process-wide default registry; never None.
_registry: MetricsRegistry = MetricsRegistry()

#: Per-thread override; lattice lanes get their own registry so that
#: concurrently racing runs never interleave counters (see crowd/lattice.py).
_tls = threading.local()


def get_registry() -> MetricsRegistry:
    """The currently installed registry (thread-local first, then global)."""
    local = getattr(_tls, "registry", None)
    if local is not None:
        return local
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` process-wide; returns the previous one."""
    global _registry
    previous = _registry
    _registry = registry
    return previous


@contextmanager
def use_registry(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Scope a (fresh by default) registry to a ``with`` block.

    Instrumented code that resolves the registry at call time — all of
    ``repro``'s built-in instrumentation — lands in ``registry`` for the
    duration of the block; the previous registry is restored afterwards.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)


@contextmanager
def use_thread_registry(
    registry: MetricsRegistry | None = None,
) -> Iterator[MetricsRegistry]:
    """Scope a registry to the *current thread* for a ``with`` block.

    Unlike :func:`use_registry` (which swaps the process-wide default and
    is therefore racy under threads), this installs the registry as a
    thread-local override that :func:`get_registry` resolves first.  The
    racing lattice wraps each lane in one of these so concurrently racing
    runs account their own counters; the lane registries are merged into
    the ambient registry in deterministic order afterwards.
    """
    registry = registry if registry is not None else MetricsRegistry()
    previous = getattr(_tls, "registry", None)
    _tls.registry = registry
    try:
        yield registry
    finally:
        _tls.registry = previous
