"""Configuration objects shared across the library.

The defaults mirror Table 6 of the paper (bold values):

=========================  =======================================
Parameter                  Default
=========================  =======================================
query size ``k``           10
confidence level ``1-α``   0.98
per-pair budget ``B``      1000 microtasks
minimum workload ``I``     30 microtasks (statistics cold start)
sweet-spot range ``c``     1.5
batch size ``η``           30 microtasks per distribution round
=========================  =======================================
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field, replace
from typing import Literal

from .errors import ConfigError

__all__ = [
    "ComparisonConfig",
    "FaultPolicy",
    "ResiliencePolicy",
    "RetryPolicy",
    "SPRConfig",
    "DEFAULT_COMPARISON",
    "DEFAULT_SPR",
    "comparison_config_from_dict",
    "default_resilience",
]

#: Environment knob installing a default platform fault rate.  When set to a
#: positive float ``r``, every :class:`ComparisonConfig` constructed without
#: an explicit ``resilience`` policy injects timeouts and losses at ``r/2``
#: each — this is how the CI fault-injection leg runs the whole tier-1 suite
#: against an unreliable platform without touching a single test.
FAULT_RATE_ENV = "CROWD_TOPK_FAULT_RATE"

EstimatorName = Literal["student", "stein", "hoeffding", "pac"]
GroupEngineName = Literal["racing", "sequential"]

#: Safety cap used in place of an unbounded per-pair budget (``B = ∞`` in
#: Table 3).  One million microtasks on one pair is far beyond anything the
#: paper's settings reach; hitting the cap resolves the pair as a tie.
UNBOUNDED_BUDGET_CAP = 1_000_000


@dataclass(frozen=True)
class FaultPolicy:
    """Seeded platform-failure model applied to outsourced microtasks.

    All rates are per-microtask (per-round for ``outage_rate``) Bernoulli
    probabilities drawn from a *dedicated* fault RNG, never from the
    session's judgment stream — with every rate at 0 the session consumes
    its RNG exactly as a fault-free platform would, so seed-pinned results
    are unchanged.

    Attributes
    ----------
    timeout_rate:
        Probability a posted task produces no answer this round (the
        worker is still typing); the task is re-posted by the retry layer.
    loss_rate:
        Probability a posted task is abandoned outright (answered but
        never delivered); indistinguishable from a timeout to the
        requester, tracked separately in telemetry.
    duplicate_rate:
        Probability a delivered answer is a duplicate submission — the
        platform hands back a copy of the previous answer for the same
        pair instead of an independent judgment.  Duplicates *are*
        consumed and charged (the worker did submit), they just carry no
        fresh information.
    outage_rate:
        Probability an entire distribution round yields nothing (the
        platform is down); no tasks are drawn, no cost is charged, the
        round still burns latency.
    seed:
        Seed of the dedicated fault RNG.  Two sessions with equal fault
        policies observe the identical failure sequence.
    """

    timeout_rate: float = 0.0
    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    outage_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("timeout_rate", "loss_rate", "duplicate_rate", "outage_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ConfigError(f"{name} must be in [0, 1), got {rate}")
        if self.timeout_rate + self.loss_rate >= 1.0:
            raise ConfigError(
                "timeout_rate + loss_rate must be < 1 so that answers can arrive"
            )

    @property
    def enabled(self) -> bool:
        """Whether any failure mode has a nonzero rate."""
        return (
            self.timeout_rate > 0
            or self.loss_rate > 0
            or self.duplicate_rate > 0
            or self.outage_rate > 0
        )

    @property
    def drop_rate(self) -> float:
        """Probability a posted task never delivers (timeout or loss)."""
        return self.timeout_rate + self.loss_rate

    def with_(self, **changes: object) -> "FaultPolicy":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RetryPolicy:
    """How comparisons keep going when the platform drops their tasks.

    Attributes
    ----------
    max_attempts:
        Consecutive delivery-free rounds a pair tolerates before it
        *degrades to a tie* — the same semantics as exhausting the per-pair
        budget ``B`` (§4): the query proceeds, the pair just carries no
        verdict.  A round that delivers at least one answer resets the
        count.
    backoff_base:
        Rounds to wait after the first failed attempt (0 = repost
        immediately next round).
    backoff_factor:
        Multiplier applied to the wait after each further consecutive
        failure (exponential backoff in rounds).
    backoff_max:
        Upper bound on the backoff wait, in rounds.
    deadline_rounds:
        Per-pair wall-clock deadline measured in pool rounds.  A pair
        still undecided after this many rounds degrades to a tie; ``None``
        disables the deadline.
    """

    max_attempts: int = 8
    backoff_base: int = 1
    backoff_factor: float = 2.0
    backoff_max: int = 16
    deadline_rounds: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.backoff_base < 0:
            raise ConfigError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max < self.backoff_base:
            raise ConfigError(
                f"backoff_max ({self.backoff_max}) must be >= backoff_base "
                f"({self.backoff_base})"
            )
        if self.deadline_rounds is not None and self.deadline_rounds < 1:
            raise ConfigError(
                f"deadline_rounds must be >= 1, got {self.deadline_rounds}"
            )

    def backoff_rounds(self, failures: int) -> int:
        """Rounds to wait after ``failures`` consecutive failed attempts."""
        if failures < 1 or self.backoff_base == 0:
            return 0
        wait = self.backoff_base * self.backoff_factor ** (failures - 1)
        return int(min(math.ceil(wait), self.backoff_max))

    def with_(self, **changes: object) -> "RetryPolicy":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Everything fault-tolerant execution needs, in one frozen bundle.

    Attached to :class:`ComparisonConfig` (``config.resilience``) instead of
    scattering loose keyword arguments over session/pool constructors.

    Attributes
    ----------
    fault:
        The platform failure model.  When any rate is nonzero,
        :class:`~repro.crowd.session.CrowdSession` automatically wraps its
        oracle in a :class:`~repro.crowd.faults.FaultInjector`.
    retry:
        Re-posting / backoff / deadline behaviour, honoured by both group
        engines.
    checkpoint_every:
        Default checkpoint cadence in latency rounds for
        :meth:`CrowdSession.enable_checkpoints` (0 keeps checkpointing
        opt-in per call).
    """

    fault: FaultPolicy = field(default_factory=FaultPolicy)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    checkpoint_every: int = 0

    def __post_init__(self) -> None:
        if self.checkpoint_every < 0:
            raise ConfigError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    @property
    def active(self) -> bool:
        """Whether faults or a deadline can alter fault-free execution."""
        return self.fault.enabled or self.retry.deadline_rounds is not None

    def with_(self, **changes: object) -> "ResiliencePolicy":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def default_resilience() -> ResiliencePolicy:
    """The ambient resilience policy, honouring :data:`FAULT_RATE_ENV`.

    With the environment knob unset (the normal case) this is the all-zero
    policy; setting ``CROWD_TOPK_FAULT_RATE=r`` injects timeouts and losses
    at ``r/2`` each into every config built without an explicit policy.
    """
    raw = os.environ.get(FAULT_RATE_ENV, "").strip()
    if not raw:
        return ResiliencePolicy()
    try:
        rate = float(raw)
    except ValueError:
        raise ConfigError(f"{FAULT_RATE_ENV} must be a float, got {raw!r}") from None
    if rate <= 0:
        return ResiliencePolicy()
    return ResiliencePolicy(
        fault=FaultPolicy(timeout_rate=rate / 2, loss_rate=rate / 2)
    )


@dataclass(frozen=True)
class ComparisonConfig:
    """Parameters of a single comparison process ``COMP(o_i, o_j)``.

    Attributes
    ----------
    confidence:
        The confidence level ``1 - α`` required before a verdict is drawn.
    budget:
        Per-pair budget ``B``: the maximum number of microtasks a single
        comparison may consume before it resolves to a tie.  ``None`` means
        unbounded (capped at :data:`UNBOUNDED_BUDGET_CAP` for safety).
    min_workload:
        Cold-start minimum ``I``; the stopping rule is not consulted before
        this many samples have been collected (common statistical practice,
        §3.1 of the paper).
    batch_size:
        Microtask distribution batch size ``η`` (§5.5).  Only affects the
        *latency* ledger: a comparison consuming ``w`` samples takes
        ``ceil(w / η)`` rounds.
    estimator:
        Which sequential tester the comparison uses: ``"student"``
        (Algorithm 1), ``"stein"`` (Algorithm 5), ``"hoeffding"`` (the
        binary-judgment baseline of §3.2) or ``"pac"`` (the anytime
        ``(ε, δ)`` rule of Ren, Liu & Shroff; ``δ = α`` and
        ``ε = pac_epsilon``).
    stein_epsilon:
        The small positive ``ε`` of Algorithm 5 keeping the Stein interval
        strictly away from the neutral point.
    pac_epsilon:
        Approximation tolerance of the ``"pac"`` estimator: a declared
        winner may be worse than the loser by at most this much (with
        probability ``1 - α``), which lets near-tie comparisons terminate
        once the anytime confidence radius shrinks under ``ε``.  ``0``
        degenerates to an exact anytime sign test.  Ignored by the other
        estimators.
    group_engine:
        How a *parallel comparison group* (§5.5) is executed.  ``"racing"``
        (the default) advances every pair of the group through one
        vectorized :class:`~repro.crowd.pool.RacingPool` in lockstep
        rounds — one oracle call and one stopping-rule evaluation per
        round for the whole group.  ``"sequential"`` runs one comparison
        process per pair in Python, reproducing the pre-engine behavior
        bit for bit.  Both engines share the per-sample stopping
        semantics, charge only consumed microtasks, and bill the group
        ``max`` of its members' rounds; they consume the session RNG in a
        different order, so individual draws (and therefore seed-pinned
        workloads) differ between them while remaining statistically
        indistinguishable.
    resilience:
        Fault/retry/checkpoint behaviour (:class:`ResiliencePolicy`).  The
        default honours the :data:`FAULT_RATE_ENV` environment knob and is
        otherwise the no-fault policy, which leaves execution bit-for-bit
        identical to a platform that never fails.
    """

    confidence: float = 0.98
    budget: int | None = 1000
    min_workload: int = 30
    batch_size: int = 30
    estimator: EstimatorName = "student"
    stein_epsilon: float = 1e-9
    pac_epsilon: float = 0.0
    group_engine: GroupEngineName = "racing"
    resilience: ResiliencePolicy = field(default_factory=default_resilience)

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.min_workload < 2:
            raise ConfigError(
                f"min_workload must be >= 2 to estimate a variance, got {self.min_workload}"
            )
        if self.budget is not None and self.budget < self.min_workload:
            raise ConfigError(
                f"budget ({self.budget}) must be >= min_workload ({self.min_workload})"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.estimator not in ("student", "stein", "hoeffding", "pac"):
            raise ConfigError(f"unknown estimator {self.estimator!r}")
        if self.stein_epsilon <= 0:
            raise ConfigError(f"stein_epsilon must be > 0, got {self.stein_epsilon}")
        if self.pac_epsilon < 0:
            raise ConfigError(f"pac_epsilon must be >= 0, got {self.pac_epsilon}")
        if self.group_engine not in ("racing", "sequential"):
            raise ConfigError(f"unknown group_engine {self.group_engine!r}")
        if not isinstance(self.resilience, ResiliencePolicy):
            raise ConfigError(
                "resilience must be a ResiliencePolicy, got "
                f"{type(self.resilience).__name__}"
            )

    @property
    def alpha(self) -> float:
        """The error budget ``α`` of a single comparison."""
        return 1.0 - self.confidence

    @property
    def effective_budget(self) -> int:
        """The per-pair budget with the unbounded case capped."""
        return UNBOUNDED_BUDGET_CAP if self.budget is None else self.budget

    def rounds_for(self, workload: int) -> int:
        """Latency rounds needed to distribute ``workload`` microtasks."""
        return math.ceil(workload / self.batch_size)

    def with_(self, **changes: object) -> "ComparisonConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def comparison_config_from_dict(data: dict) -> ComparisonConfig:
    """Rebuild a :class:`ComparisonConfig` from its ``dataclasses.asdict``.

    The inverse of ``dataclasses.asdict(config)`` — nested resilience
    dictionaries are revived into their frozen policy classes.  Used by
    checkpoint restore, where the config rides inside the checkpoint so a
    resumed query runs under the exact settings of the original one.
    """
    payload = dict(data)
    resilience = payload.get("resilience")
    if isinstance(resilience, dict):
        nested = dict(resilience)
        fault = nested.get("fault")
        if isinstance(fault, dict):
            nested["fault"] = FaultPolicy(**fault)
        retry = nested.get("retry")
        if isinstance(retry, dict):
            nested["retry"] = RetryPolicy(**retry)
        payload["resilience"] = ResiliencePolicy(**nested)
    return ComparisonConfig(**payload)


@dataclass(frozen=True)
class SPRConfig:
    """Parameters of the Select-Partition-Rank framework (§5).

    Attributes
    ----------
    comparison:
        The per-comparison configuration used throughout the query.
    sweet_spot:
        The constant ``c > 1`` bounding the sweet spot
        ``{o*_k, …, o*_{⌊ck⌋}}`` that reference selection targets.
    max_reference_changes:
        Upper bound on how many times partitioning may swap in a better
        reference (Table 4 sweeps 0..16; 2-4 is the paper's sweet spot).
    selection_budget_factor:
        Reference selection solves problem (2) subject to
        ``m(x-1) + C(bubble, m) <= factor * N`` so that sampling never
        dominates the ``O(N)`` partitioning cost.
    selection_comparison_budget:
        Per-pair budget ``B`` used *during reference selection only*
        (``None`` = twice the cold-start minimum).  Selection errors only
        affect efficiency, never correctness (§5.4): two sample maxima the
        full budget cannot separate are interchangeable as references, so
        burning ``B`` microtasks to order them buys nothing.  The cap keeps
        the selection phase at its intended ``O(N)``-comparison weight.
    min_items_for_selection:
        Below this many items SPR skips selection/partitioning and sorts
        directly; sampling machinery has no room to pay off on tiny inputs.
    """

    comparison: ComparisonConfig = field(default_factory=ComparisonConfig)
    sweet_spot: float = 1.5
    max_reference_changes: int = 2
    selection_budget_factor: float = 1.0
    selection_comparison_budget: int | None = None
    min_items_for_selection: int = 8

    def __post_init__(self) -> None:
        if self.sweet_spot <= 1.0:
            raise ConfigError(f"sweet_spot c must be > 1, got {self.sweet_spot}")
        if self.max_reference_changes < 0:
            raise ConfigError(
                f"max_reference_changes must be >= 0, got {self.max_reference_changes}"
            )
        if self.selection_budget_factor <= 0:
            raise ConfigError(
                f"selection_budget_factor must be > 0, got {self.selection_budget_factor}"
            )
        if self.min_items_for_selection < 2:
            raise ConfigError(
                f"min_items_for_selection must be >= 2, got {self.min_items_for_selection}"
            )
        if (
            self.selection_comparison_budget is not None
            and self.selection_comparison_budget < self.comparison.min_workload
        ):
            raise ConfigError(
                "selection_comparison_budget must be >= the comparison "
                f"min_workload ({self.comparison.min_workload})"
            )

    def with_(self, **changes: object) -> "SPRConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


DEFAULT_COMPARISON = ComparisonConfig()
DEFAULT_SPR = SPRConfig()
