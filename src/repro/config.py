"""Configuration objects shared across the library.

The defaults mirror Table 6 of the paper (bold values):

=========================  =======================================
Parameter                  Default
=========================  =======================================
query size ``k``           10
confidence level ``1-α``   0.98
per-pair budget ``B``      1000 microtasks
minimum workload ``I``     30 microtasks (statistics cold start)
sweet-spot range ``c``     1.5
batch size ``η``           30 microtasks per distribution round
=========================  =======================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Literal

from .errors import ConfigError

__all__ = ["ComparisonConfig", "SPRConfig", "DEFAULT_COMPARISON", "DEFAULT_SPR"]

EstimatorName = Literal["student", "stein", "hoeffding"]
GroupEngineName = Literal["racing", "sequential"]

#: Safety cap used in place of an unbounded per-pair budget (``B = ∞`` in
#: Table 3).  One million microtasks on one pair is far beyond anything the
#: paper's settings reach; hitting the cap resolves the pair as a tie.
UNBOUNDED_BUDGET_CAP = 1_000_000


@dataclass(frozen=True)
class ComparisonConfig:
    """Parameters of a single comparison process ``COMP(o_i, o_j)``.

    Attributes
    ----------
    confidence:
        The confidence level ``1 - α`` required before a verdict is drawn.
    budget:
        Per-pair budget ``B``: the maximum number of microtasks a single
        comparison may consume before it resolves to a tie.  ``None`` means
        unbounded (capped at :data:`UNBOUNDED_BUDGET_CAP` for safety).
    min_workload:
        Cold-start minimum ``I``; the stopping rule is not consulted before
        this many samples have been collected (common statistical practice,
        §3.1 of the paper).
    batch_size:
        Microtask distribution batch size ``η`` (§5.5).  Only affects the
        *latency* ledger: a comparison consuming ``w`` samples takes
        ``ceil(w / η)`` rounds.
    estimator:
        Which sequential tester the comparison uses: ``"student"``
        (Algorithm 1), ``"stein"`` (Algorithm 5) or ``"hoeffding"`` (the
        binary-judgment baseline of §3.2).
    stein_epsilon:
        The small positive ``ε`` of Algorithm 5 keeping the Stein interval
        strictly away from the neutral point.
    group_engine:
        How a *parallel comparison group* (§5.5) is executed.  ``"racing"``
        (the default) advances every pair of the group through one
        vectorized :class:`~repro.crowd.pool.RacingPool` in lockstep
        rounds — one oracle call and one stopping-rule evaluation per
        round for the whole group.  ``"sequential"`` runs one comparison
        process per pair in Python, reproducing the pre-engine behavior
        bit for bit.  Both engines share the per-sample stopping
        semantics, charge only consumed microtasks, and bill the group
        ``max`` of its members' rounds; they consume the session RNG in a
        different order, so individual draws (and therefore seed-pinned
        workloads) differ between them while remaining statistically
        indistinguishable.
    """

    confidence: float = 0.98
    budget: int | None = 1000
    min_workload: int = 30
    batch_size: int = 30
    estimator: EstimatorName = "student"
    stein_epsilon: float = 1e-9
    group_engine: GroupEngineName = "racing"

    def __post_init__(self) -> None:
        if not 0.0 < self.confidence < 1.0:
            raise ConfigError(f"confidence must be in (0, 1), got {self.confidence}")
        if self.min_workload < 2:
            raise ConfigError(
                f"min_workload must be >= 2 to estimate a variance, got {self.min_workload}"
            )
        if self.budget is not None and self.budget < self.min_workload:
            raise ConfigError(
                f"budget ({self.budget}) must be >= min_workload ({self.min_workload})"
            )
        if self.batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {self.batch_size}")
        if self.estimator not in ("student", "stein", "hoeffding"):
            raise ConfigError(f"unknown estimator {self.estimator!r}")
        if self.stein_epsilon <= 0:
            raise ConfigError(f"stein_epsilon must be > 0, got {self.stein_epsilon}")
        if self.group_engine not in ("racing", "sequential"):
            raise ConfigError(f"unknown group_engine {self.group_engine!r}")

    @property
    def alpha(self) -> float:
        """The error budget ``α`` of a single comparison."""
        return 1.0 - self.confidence

    @property
    def effective_budget(self) -> int:
        """The per-pair budget with the unbounded case capped."""
        return UNBOUNDED_BUDGET_CAP if self.budget is None else self.budget

    def rounds_for(self, workload: int) -> int:
        """Latency rounds needed to distribute ``workload`` microtasks."""
        return math.ceil(workload / self.batch_size)

    def with_(self, **changes: object) -> "ComparisonConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


@dataclass(frozen=True)
class SPRConfig:
    """Parameters of the Select-Partition-Rank framework (§5).

    Attributes
    ----------
    comparison:
        The per-comparison configuration used throughout the query.
    sweet_spot:
        The constant ``c > 1`` bounding the sweet spot
        ``{o*_k, …, o*_{⌊ck⌋}}`` that reference selection targets.
    max_reference_changes:
        Upper bound on how many times partitioning may swap in a better
        reference (Table 4 sweeps 0..16; 2-4 is the paper's sweet spot).
    selection_budget_factor:
        Reference selection solves problem (2) subject to
        ``m(x-1) + C(bubble, m) <= factor * N`` so that sampling never
        dominates the ``O(N)`` partitioning cost.
    selection_comparison_budget:
        Per-pair budget ``B`` used *during reference selection only*
        (``None`` = twice the cold-start minimum).  Selection errors only
        affect efficiency, never correctness (§5.4): two sample maxima the
        full budget cannot separate are interchangeable as references, so
        burning ``B`` microtasks to order them buys nothing.  The cap keeps
        the selection phase at its intended ``O(N)``-comparison weight.
    min_items_for_selection:
        Below this many items SPR skips selection/partitioning and sorts
        directly; sampling machinery has no room to pay off on tiny inputs.
    """

    comparison: ComparisonConfig = field(default_factory=ComparisonConfig)
    sweet_spot: float = 1.5
    max_reference_changes: int = 2
    selection_budget_factor: float = 1.0
    selection_comparison_budget: int | None = None
    min_items_for_selection: int = 8

    def __post_init__(self) -> None:
        if self.sweet_spot <= 1.0:
            raise ConfigError(f"sweet_spot c must be > 1, got {self.sweet_spot}")
        if self.max_reference_changes < 0:
            raise ConfigError(
                f"max_reference_changes must be >= 0, got {self.max_reference_changes}"
            )
        if self.selection_budget_factor <= 0:
            raise ConfigError(
                f"selection_budget_factor must be > 0, got {self.selection_budget_factor}"
            )
        if self.min_items_for_selection < 2:
            raise ConfigError(
                f"min_items_for_selection must be >= 2, got {self.min_items_for_selection}"
            )
        if (
            self.selection_comparison_budget is not None
            and self.selection_comparison_budget < self.comparison.min_workload
        ):
            raise ConfigError(
                "selection_comparison_budget must be >= the comparison "
                f"min_workload ({self.comparison.min_workload})"
            )

    def with_(self, **changes: object) -> "SPRConfig":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


DEFAULT_COMPARISON = ComparisonConfig()
DEFAULT_SPR = SPRConfig()
