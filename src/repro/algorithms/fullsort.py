"""The naive baseline: sort everything, take the first k.

The straw man the paper's framing dismisses — answering a top-k query by
establishing the *complete* total order.  Useful as a calibration point:
it shows exactly how much money the top-k structure (pruning against one
reference) saves over full ranking, and it is the honest choice when the
caller actually needs the whole order.

Uses crowd merge sort: on an unordered input its ``O(N log N)``
comparisons dominate bubble's ``O(N²)``, and there is no near-sorted seed
to exploit.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.sorting import merge_sort
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["fullsort_topk"]


def fullsort_topk(
    session: "CrowdSession", item_ids: list[int], k: int
) -> TopKOutcome:
    """Answer the top-k query by fully sorting the item set."""
    ids = validate_query(item_ids, k)
    before = session.spent()
    ranked = merge_sort(session, ids)
    return measured(
        "fullsort",
        session,
        ranked[:k],
        before,
        extras={"full_order_length": len(ranked)},
    )
