"""Harness adapter exposing SPR through the common algorithm interface."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..config import SPRConfig
from ..core.spr import spr_topk
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["spr_adapter"]


def spr_adapter(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    spr_config: SPRConfig | None = None,
) -> TopKOutcome:
    """Run SPR and wrap its result for the experiment harness.

    When no explicit :class:`SPRConfig` is given, one is derived from the
    session's comparison config so that sweeps over confidence / budget
    apply to SPR without extra plumbing.
    """
    ids = validate_query(item_ids, k)
    config = (
        spr_config
        if spr_config is not None
        else SPRConfig(comparison=session.config)
    )
    before = session.spent()
    result = spr_topk(session, ids, k, config)
    extras = {
        "recursed": result.recursed,
        "promoted_ties": result.promoted_ties,
    }
    if result.selection is not None:
        extras["plan_x"] = result.selection.plan.x
        extras["plan_m"] = result.selection.plan.m
        extras["plan_probability"] = result.selection.plan.probability
    if result.partition_result is not None:
        extras["reference"] = result.partition_result.reference
        extras["reference_changes"] = result.partition_result.reference_changes
        extras["partition_sizes"] = (
            len(result.partition_result.winners),
            len(result.partition_result.ties),
            len(result.partition_result.losers),
        )
    return measured("spr", session, list(result.topk), before, extras)
