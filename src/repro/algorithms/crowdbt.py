"""CrowdBT baseline — Chen et al., WSDM 2013 (§6.5 usage).

A *non-confidence-aware* heuristic: spend a fixed budget on pairwise binary
votes over random pairs, then fit Bradley-Terry-Luce scores by maximum
likelihood (the paper optimizes with BFGS, 100 iterations) and return the
top-k by fitted score.  The paper budget-matches it to SPR's measured TMC,
which is how the experiment harness calls it.

The worker-quality extension of the original CrowdBT is out of scope here —
the paper's simulated crowd has no per-worker identity (§4: answers are
independent across comparisons), so the plain BTL likelihood is the model
actually exercised.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np
from scipy import optimize

from ..core.topk import top_k_indices
from ..crowd.oracle import BinaryOracle
from ..errors import AlgorithmError
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["crowdbt_topk", "fit_btl_scores"]


def fit_btl_scores(
    win_counts: np.ndarray,
    *,
    regularization: float = 0.05,
    max_iter: int = 100,
) -> np.ndarray:
    """Maximum-likelihood BTL scores from a win-count matrix.

    ``win_counts[i, j]`` is how often item ``i`` beat item ``j``.  The
    (ridge-regularized) negative log-likelihood is minimized with the
    quasi-Newton family the paper cites (Nocedal & Wright); scores are
    translation-invariant, the regularizer pins the gauge.
    """
    counts = np.asarray(win_counts, dtype=np.float64)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise AlgorithmError("win_counts must be a square matrix")
    if np.any(counts < 0):
        raise AlgorithmError("win_counts must be non-negative")
    n = counts.shape[0]

    def objective(theta: np.ndarray) -> tuple[float, np.ndarray]:
        diff = theta[:, None] - theta[None, :]
        # -log sigma(d) = log(1 + e^{-d}), computed stably.
        log_sig = -np.logaddexp(0.0, -diff)
        nll = -float(np.sum(counts * log_sig))
        nll += regularization * float(theta @ theta)
        sig = 1.0 / (1.0 + np.exp(-diff))
        residual = counts * (1.0 - sig)
        grad = -(residual.sum(axis=1) - residual.sum(axis=0))
        grad += 2.0 * regularization * theta
        return nll, grad

    result = optimize.minimize(
        objective,
        np.zeros(n),
        jac=True,
        method="L-BFGS-B",
        options={"maxiter": max_iter},
    )
    return np.asarray(result.x, dtype=np.float64)


def crowdbt_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    budget: int,
    regularization: float = 0.05,
    max_iter: int = 100,
) -> TopKOutcome:
    """Answer the top-k query with budget-matched CrowdBT.

    ``budget`` binary votes are spread over uniformly random item pairs
    (bought in vectorized batches); the BTL fit then ranks the items.
    Latency: all votes are mutually independent microtasks, so the whole
    spend fits in ``ceil(votes_per_pair / η)`` parallel rounds — one batch
    round in practice.
    """
    ids = validate_query(item_ids, k)
    n = len(ids)
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    before = session.spent()

    voting = session.fork(oracle=BinaryOracle(session.oracle))
    rng = voting.rng

    counts = np.zeros((n, n), dtype=np.float64)
    remaining = budget
    chunk_pairs = 8192
    id_array = np.asarray(ids, dtype=np.int64)
    while remaining > 0:
        m = min(chunk_pairs, remaining)
        a = rng.integers(0, n, size=m)
        shift = rng.integers(1, n, size=m)
        b = (a + shift) % n  # distinct second endpoint, uniform over pairs
        votes = voting.oracle.draw_pairs(id_array[a], id_array[b], 1, rng)[:, 0]
        winners = np.where(votes > 0, a, b)
        losers = np.where(votes > 0, b, a)
        np.add.at(counts, (winners, losers), 1.0)
        remaining -= m
    session.charge_cost(budget)
    session.charge_rounds(
        max(1, math.ceil(budget / max(n, 1) / session.config.batch_size))
    )

    theta = fit_btl_scores(
        counts, regularization=regularization, max_iter=max_iter
    )
    topk = [ids[int(pos)] for pos in top_k_indices(theta, k)]
    return measured(
        "crowdbt",
        session,
        topk,
        before,
        extras={"votes": budget, "theta_spread": float(theta.max() - theta.min())},
    )
