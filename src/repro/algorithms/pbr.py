"""Preference-based racing (PBR) — Busa-Fekete et al., ICML 2013.

The paper's confidence-aware competitor that buys pairwise *binary* votes
and brackets each pair's mean with distribution-free Hoeffding intervals
(no transitivity assumed, hence its appetite for microtasks — Table 7).

An item's top-k *membership* resolves from decided pairs alone: confirmed
**in** once it has beaten ``N − k`` items (at most ``k − 1`` can be
better), confirmed **out** once ``k`` items have beaten it.  Racing all
``N(N−1)/2`` pairs eagerly would waste most of its samples — an item that
ends up discarded only ever needed ``k`` decided losses — so, like the
original algorithm, pairs are scheduled *lazily*: every undecided item
keeps a bounded window of its pairs racing and opens the next pair only
when one resolves; pairs whose both endpoints are decided stop.

Unlike the parametric testers, Hoeffding's inequality is valid from the
first sample, so PBR runs without the 30-sample cold start (the paper's
``I`` exists to make variance estimates trustworthy, which Hoeffding never
needs).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..crowd.oracle import BinaryOracle
from ..crowd.pool import ACTIVE, DEACTIVATED, RacingPool
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["pbr_topk"]

#: Votes bought per racing pair per round.
DEFAULT_STEP = 4


class _LazySchedule:
    """Per-item cursors over a randomly ordered opponent list.

    Item ``i``'s pairs are opened in random order, at most ``window`` at a
    time; a pair is racing while *either* endpoint holds it in its window.
    ``held`` tracks per (pair, endpoint) holdings so releases are exact.
    """

    def __init__(
        self,
        n: int,
        n_pairs: int,
        pair_of: np.ndarray,
        pair_ends: tuple[np.ndarray, np.ndarray],
        opponents: list[np.ndarray],
        window: int,
    ) -> None:
        self.pair_of = pair_of  # (n, n) pair-index lookup, -1 on diagonal
        self.pair_a, self.pair_b = pair_ends
        self.opponents = opponents  # per item: opponent positions, shuffled
        self.cursor = np.zeros(n, dtype=np.int64)
        self.open_count = np.zeros(n, dtype=np.int64)
        self.held_a = np.zeros(n_pairs, dtype=bool)
        self.held_b = np.zeros(n_pairs, dtype=bool)
        self.window = window

    def _hold(self, item: int, idx: int) -> None:
        if self.pair_a[idx] == item:
            self.held_a[idx] = True
        else:
            self.held_b[idx] = True
        self.open_count[item] += 1

    def release(self, idx: int) -> None:
        """Drop all holdings of pair ``idx`` (it resolved or was closed)."""
        if self.held_a[idx]:
            self.held_a[idx] = False
            self.open_count[self.pair_a[idx]] -= 1
        if self.held_b[idx]:
            self.held_b[idx] = False
            self.open_count[self.pair_b[idx]] -= 1

    def refill(self, item: int, pair_resolved: np.ndarray) -> list[int]:
        """Open pairs for ``item`` until its window is full; returns them."""
        opened: list[int] = []
        opps = self.opponents[item]
        while self.open_count[item] < self.window and self.cursor[item] < len(opps):
            other = int(opps[self.cursor[item]])
            self.cursor[item] += 1
            idx = int(self.pair_of[item, other])
            if pair_resolved[idx]:
                continue
            opened.append(idx)
            self._hold(item, idx)
        return opened


def pbr_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    step: int = DEFAULT_STEP,
    window: int | None = None,
) -> TopKOutcome:
    """Answer the top-k query by preference-based racing over binary votes.

    ``window`` bounds how many pairs each undecided item races at once
    (default ``2k``); smaller windows trade latency for cost.
    """
    ids = validate_query(item_ids, k)
    n = len(ids)
    if n == 1:
        return TopKOutcome(method="pbr", topk=(ids[0],), cost=0, rounds=0)
    window = max(2 * k, 8) if window is None else int(window)
    before = session.spent()

    racing = session.fork(
        oracle=BinaryOracle(session.oracle),
        estimator="hoeffding",
        min_workload=2,
    )
    rng = racing.rng

    pairs = [(ids[a], ids[b]) for a in range(n) for b in range(a + 1, n)]
    pair_a = np.asarray([a for a in range(n) for _ in range(a + 1, n)], dtype=np.intp)
    pair_b = np.asarray([b for a in range(n) for b in range(a + 1, n)], dtype=np.intp)
    pair_of = np.full((n, n), -1, dtype=np.int64)
    pair_of[pair_a, pair_b] = np.arange(len(pairs))
    pair_of[pair_b, pair_a] = np.arange(len(pairs))

    pool = RacingPool(racing, pairs, use_cache=False)
    pool.status[:] = DEACTIVATED  # all pairs start closed; windows open them

    opponents = []
    for item in range(n):
        opps = np.asarray([o for o in range(n) if o != item], dtype=np.int64)
        rng.shuffle(opps)
        opponents.append(opps)
    schedule = _LazySchedule(n, len(pairs), pair_of, (pair_a, pair_b), opponents, window)

    wins = np.zeros(n, dtype=np.int64)
    losses = np.zeros(n, dtype=np.int64)
    membership = np.zeros(n, dtype=np.int8)  # +1 in, -1 out, 0 undecided
    pair_resolved = np.zeros(len(pairs), dtype=bool)

    for item in range(n):
        for idx in schedule.refill(item, pair_resolved):
            pool.status[idx] = ACTIVE

    while np.any(pool.status == ACTIVE):
        resolved = pool.round(step)
        changed_items: set[int] = set()
        for idx, code in resolved:
            pair_resolved[idx] = True
            schedule.release(idx)
            a, b = int(pair_a[idx]), int(pair_b[idx])
            if code > 0:
                wins[a] += 1
                losses[b] += 1
            elif code < 0:
                wins[b] += 1
                losses[a] += 1
            changed_items.update((a, b))

        for item in changed_items:
            if membership[item] == 0 and wins[item] >= n - k:
                membership[item] = 1
            elif membership[item] == 0 and losses[item] >= k:
                membership[item] = -1
        if np.all(membership != 0):
            break

        # Close pairs nobody wants any more, then refill windows.
        closing = (
            (pool.status == ACTIVE)
            & (membership[pair_a] != 0)
            & (membership[pair_b] != 0)
        )
        for idx in np.flatnonzero(closing):
            pool.status[idx] = DEACTIVATED
            schedule.release(idx)
        for item in range(n):
            if membership[item] != 0:
                continue
            for idx in schedule.refill(item, pair_resolved):
                if pool.status[idx] == DEACTIVATED:
                    pool.status[idx] = ACTIVE

    # Copeland-style final scores: decided wins, plus the sample-mean lean
    # of every unresolved pair (0.5 when a pair carries no evidence).
    scores = wins.astype(np.float64)
    unresolved = (pool.status != 1) & (pool.status != -1)
    lean = np.where(pool.n > 0, pool.s1, 0.0)
    favours_a = unresolved & (lean > 0)
    favours_b = unresolved & (lean < 0)
    neutral = unresolved & (lean == 0)
    np.add.at(scores, pair_a[favours_a], 1.0)
    np.add.at(scores, pair_b[favours_b], 1.0)
    np.add.at(scores, pair_a[neutral], 0.5)
    np.add.at(scores, pair_b[neutral], 0.5)

    # Confirmed members outrank everyone else regardless of raw score.
    ranking = sorted(
        range(n), key=lambda pos: (-int(membership[pos] == 1), -scores[pos])
    )
    topk = [ids[pos] for pos in ranking[:k]]
    return measured(
        "pbr",
        session,
        topk,
        before,
        extras={
            "decided_members": int(np.sum(membership == 1)),
            "decided_out": int(np.sum(membership == -1)),
            "pairs": len(pairs),
        },
    )
