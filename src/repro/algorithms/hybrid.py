"""Hybrid baselines — Khan & Garcia-Molina's grade-then-rank strategy (§6.5).

``hybrid_topk`` is the paper's HYBRID: spend part of a fixed budget on
*graded* judgments to filter the item set down to a small candidate pool
(ratings being treated as ground truth, this filter is strong), then spend
the rest on round-robin pairwise binary votes among the candidates and rank
them Copeland-style, tie-broken by the phase-1 ratings.

``hybrid_spr_topk`` is the paper's HYBRIDSPR: the same filtering phase, but
the surviving candidates are ranked by confidence-aware SPR — the
combination the paper reports saves ~10% of SPR's cost while matching
HYBRID's quality.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..config import SPRConfig
from ..core.spr import spr_topk
from ..crowd.oracle import BinaryOracle
from ..errors import AlgorithmError
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["hybrid_topk", "hybrid_spr_topk", "graded_filter"]


def graded_filter(
    session: "CrowdSession",
    item_ids: list[int],
    pool_size: int,
    votes_per_item: int,
) -> tuple[list[int], dict[int, float]]:
    """Phase 1: grade every item and keep the ``pool_size`` best by mean.

    Returns the surviving candidates and every item's mean observed rating.
    Charges ``len(items) * votes_per_item`` microtasks; all items are graded
    in parallel, so latency is ``ceil(votes_per_item / η)`` rounds.
    """
    if not session.oracle.supports_rating:
        raise AlgorithmError(
            f"oracle {type(session.oracle).__name__} cannot answer graded "
            "judgments; the hybrid methods need a rating-capable dataset"
        )
    if votes_per_item < 1:
        raise AlgorithmError(f"votes_per_item must be >= 1, got {votes_per_item}")
    if not 1 <= pool_size <= len(item_ids):
        raise AlgorithmError(
            f"pool_size must be in [1, {len(item_ids)}], got {pool_size}"
        )
    means: dict[int, float] = {}
    for item in item_ids:
        ratings = session.oracle.rate(int(item), votes_per_item, session.rng)
        means[int(item)] = float(np.mean(ratings))
    session.charge_cost(len(item_ids) * votes_per_item)
    session.charge_rounds(math.ceil(votes_per_item / session.config.batch_size))
    survivors = sorted(means, key=lambda item: -means[item])[:pool_size]
    return survivors, means


def hybrid_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    budget: int,
    filter_fraction: float = 0.5,
    pool_factor: float = 2.0,
) -> TopKOutcome:
    """Answer the top-k query with the budget-matched HYBRID strategy."""
    ids = validate_query(item_ids, k)
    n = len(ids)
    if budget < n:
        raise AlgorithmError(
            f"budget {budget} cannot grade {n} items even once"
        )
    if not 0.0 < filter_fraction < 1.0:
        raise AlgorithmError(
            f"filter_fraction must be in (0, 1), got {filter_fraction}"
        )
    if pool_factor < 1.0:
        raise AlgorithmError(f"pool_factor must be >= 1, got {pool_factor}")
    before = session.spent()

    votes_per_item = max(1, int(budget * filter_fraction) // n)
    pool_size = min(max(k, math.ceil(pool_factor * k)), n)
    candidates, means = graded_filter(session, ids, pool_size, votes_per_item)

    # Phase 2: round-robin binary votes among the candidates.
    pairs = [
        (candidates[a], candidates[b])
        for a in range(len(candidates))
        for b in range(a + 1, len(candidates))
    ]
    phase2_budget = budget - n * votes_per_item
    votes_per_pair = max(1, phase2_budget // max(len(pairs), 1))
    voting = session.fork(oracle=BinaryOracle(session.oracle))
    wins: dict[int, float] = {item: 0.0 for item in candidates}
    if pairs:
        left = np.asarray([p[0] for p in pairs], dtype=np.int64)
        right = np.asarray([p[1] for p in pairs], dtype=np.int64)
        votes = voting.oracle.draw_pairs(left, right, votes_per_pair, voting.rng)
        for (a, b), tally in zip(pairs, votes.sum(axis=1)):
            if tally > 0:
                wins[a] += 1.0
            elif tally < 0:
                wins[b] += 1.0
            else:
                wins[a] += 0.5
                wins[b] += 0.5
        session.charge_cost(len(pairs) * votes_per_pair)
        session.charge_rounds(
            math.ceil(votes_per_pair / session.config.batch_size)
        )

    ranked = sorted(candidates, key=lambda item: (-wins[item], -means[item]))
    return measured(
        "hybrid",
        session,
        ranked[:k],
        before,
        extras={
            "votes_per_item": votes_per_item,
            "pool_size": pool_size,
            "votes_per_pair": votes_per_pair if pairs else 0,
        },
    )


def hybrid_spr_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    votes_per_item: int = 30,
    pool_factor: float = 2.0,
    spr_config: SPRConfig | None = None,
) -> TopKOutcome:
    """Answer the top-k query with HYBRIDSPR: graded filter, SPR ranking.

    Unlike HYBRID this is not budget-capped — the SPR phase spends whatever
    its confidence guarantee requires; the combination typically undercuts
    plain SPR because the filter removed almost all of the partitioning
    work.
    """
    ids = validate_query(item_ids, k)
    if pool_factor < 1.0:
        raise AlgorithmError(f"pool_factor must be >= 1, got {pool_factor}")
    before = session.spent()

    pool_size = min(max(k, math.ceil(pool_factor * k)), len(ids))
    candidates, _ = graded_filter(session, ids, pool_size, votes_per_item)

    config = (
        spr_config
        if spr_config is not None
        else SPRConfig(comparison=session.config)
    )
    result = spr_topk(session, candidates, k, config)
    return measured(
        "hybrid_spr",
        session,
        list(result.topk),
        before,
        extras={
            "votes_per_item": votes_per_item,
            "pool_size": pool_size,
            "spr_recursed": result.recursed,
        },
    )
