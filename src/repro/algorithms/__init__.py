"""Top-k algorithms: SPR's competitors and the non-confidence-aware methods.

Every algorithm consumes a :class:`~repro.crowd.session.CrowdSession` and
returns a :class:`~repro.algorithms.base.TopKOutcome`, so TMC / latency /
quality are measured identically across methods.  ``ALGORITHMS`` maps the
names used by the experiment harness to the implementations.
"""

from .base import TopKOutcome
from .bdp import BDPRanker, bdp_topk, resume_bdp_topk
from .crowdbt import crowdbt_topk
from .fullsort import fullsort_topk
from .heapsort import heapsort_topk
from .heuristics import borda_topk, elo_topk
from .hybrid import hybrid_spr_topk, hybrid_topk
from .infimum import infimum_estimate
from .pbr import pbr_topk
from .quickselect import quickselect_topk
from .spr_adapter import spr_adapter
from .tournament import tournament_topk

__all__ = [
    "ALGORITHMS",
    "BDPRanker",
    "TopKOutcome",
    "bdp_topk",
    "borda_topk",
    "crowdbt_topk",
    "elo_topk",
    "fullsort_topk",
    "heapsort_topk",
    "hybrid_spr_topk",
    "hybrid_topk",
    "infimum_estimate",
    "pbr_topk",
    "quickselect_topk",
    "resume_bdp_topk",
    "spr_adapter",
    "tournament_topk",
]

#: Confidence-aware methods runnable through the generic harness.
ALGORITHMS = {
    "spr": spr_adapter,
    "bdp": bdp_topk,
    "tournament": tournament_topk,
    "heapsort": heapsort_topk,
    "quickselect": quickselect_topk,
    "pbr": pbr_topk,
    "fullsort": fullsort_topk,
}
