"""Common result type and helpers for top-k algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..errors import AlgorithmError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["TopKOutcome", "validate_query", "measured"]


@dataclass(frozen=True)
class TopKOutcome:
    """What a top-k algorithm produced and what it spent.

    Attributes
    ----------
    method:
        Algorithm name (harness key).
    topk:
        The returned items, best first.
    cost:
        Total monetary cost in microtasks (TMC contribution of this call).
    rounds:
        Latency in batch rounds.
    extras:
        Method-specific diagnostics (reference trail, plan, fitted scores…).
    """

    method: str
    topk: tuple[int, ...]
    cost: int
    rounds: int
    extras: dict = field(default_factory=dict)


def validate_query(item_ids: list[int], k: int) -> list[int]:
    """Normalize and validate a top-k query's inputs."""
    ids = [int(i) for i in item_ids]
    if len(ids) != len(set(ids)):
        raise AlgorithmError("item_ids must not contain duplicates")
    if not ids:
        raise AlgorithmError("item_ids must not be empty")
    if not 1 <= k <= len(ids):
        raise AlgorithmError(f"k must be in [1, {len(ids)}], got {k}")
    return ids


def measured(
    method: str,
    session: "CrowdSession",
    topk: list[int],
    spent_before: tuple[int, int],
    extras: dict | None = None,
) -> TopKOutcome:
    """Build a :class:`TopKOutcome` from ledger deltas since ``spent_before``."""
    cost_after, rounds_after = session.spent()
    return TopKOutcome(
        method=method,
        topk=tuple(int(i) for i in topk),
        cost=cost_after - spent_before[0],
        rounds=rounds_after - spent_before[1],
        extras=extras if extras is not None else {},
    )
