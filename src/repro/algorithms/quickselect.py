"""Quick-selection baseline — §4.3 (Hoare's FIND with a crowd).

A random pivot is compared against every other item in one parallel batch;
the recursion then descends into whichever side must contain the k-th item.
Ties with the pivot (pairs the budget could not separate) travel with the
pivot as one indistinguishable block.  Expected workload is
``O(Nw + kw log k)``, but an unlucky pivot near the true top-k boundary
makes its ``N-1`` comparisons expensive — the sensitivity the paper calls
out.  The selected k items are finally ordered by a crowd sort.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.outcomes import Outcome
from ..core.sorting import odd_even_sort
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["quickselect_topk"]


def _select(session: "CrowdSession", ids: list[int], k: int) -> list[int]:
    """The (unordered) top-``k`` subset of ``ids``."""
    if len(ids) <= k:
        return list(ids)
    pivot = int(ids[session.rng.integers(0, len(ids))])
    others = [item for item in ids if item != pivot]
    records = session.compare_many([(item, pivot) for item in others])

    winners, losers, block = [], [], [pivot]
    for rec in records:
        if rec.outcome is Outcome.LEFT:
            winners.append(rec.left)
        elif rec.outcome is Outcome.RIGHT:
            losers.append(rec.left)
        else:
            block.append(rec.left)

    if len(winners) >= k:
        return _select(session, winners, k)
    if len(winners) + len(block) >= k:
        return winners + block[: k - len(winners)]
    return winners + block + _select(
        session, losers, k - len(winners) - len(block)
    )


def quickselect_topk(
    session: "CrowdSession", item_ids: list[int], k: int
) -> TopKOutcome:
    """Answer the top-k query with crowd-powered quick selection."""
    ids = validate_query(item_ids, k)
    before = session.spent()
    top = _select(session, ids, k)
    ranked = odd_even_sort(session, top)
    return measured("quickselect", session, ranked, before)
