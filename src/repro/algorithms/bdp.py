"""Bayesian Decision Process top-k ranker (Chen, Jiao & Lin — PAPERS.md).

A second algorithm *family* next to SPR: instead of the paper's
select/partition/rank pipeline over confidence-tested comparisons, BDP
keeps a Bayesian posterior over every item's latent score and *actively*
chooses, one step ahead, the comparison whose outcome is expected to
shrink the posterior ranking loss the most.

Model.  Item ``i`` carries a latent score ``θ_i ~ Gamma(a_i, 1)``
(independent across items; the prior is uniform ``a_i = prior_shape``).
A crowd judgment on pair ``(i, j)`` favours ``i`` with probability
``θ_i / (θ_i + θ_j)`` — the Bradley–Terry form — whose posterior
predictive is simply ``a_i / (a_i + a_j)`` because the ratio
``θ_i / (θ_i + θ_j)`` is Beta(``a_i``, ``a_j``).

Moment-matched update.  Conditioning on "i beat j" breaks the Gamma
family, so the posterior is projected back by moment matching.  Writing
``s = a_i + a_j``, a win multiplies the Beta ratio's first parameter by
conditioning (Beta(``a_i``, ``a_j``) → Beta(``a_i + 1``, ``a_j``)) while
the independent total ``θ_i + θ_j ~ Gamma(s, 1)`` is untouched; matching
first moments of ``θ = ratio · total`` gives the sum-preserving rule

    a_i ← (a_i + 1) · s / (s + 1),    a_j ← a_j · s / (s + 1).

The winner's pairwise mean strictly increases (``(a_i+1)/(s+1) > a_i/s``
whenever ``a_j > 0``), repeated wins drive the loser's shape toward 0,
and a *tie* — the two posteriors' marginal-likelihood-weighted average of
the win/lose projections — is exactly the prior, so ties carry no update.

One-step lookahead.  The ranking loss of a shape vector is the summed
posterior probability of mis-ordering each pair,
``Σ_{i<j} e(a_i, a_j)`` with ``e`` the incomplete-beta tail of
:func:`repro.core.stopping.pair_error` (symmetrized).  Each candidate
pair is scored by the *expected* loss after observing its outcome; the
naive reference (``mhacks__MDredd``'s ``BDPLoop.py``, SNIPPETS.md) walks
Python loops over every pair × outcome × affected pair — O(K⁴) betainc
calls.  :func:`score_pairs` computes the same matrix with O(K³) *array*
betainc work (only rows of the two touched items change, and the change
decomposes into row sums), chunked so peak memory stays at
``chunk · K²``.  :func:`score_pairs_reference` keeps the O(K⁴) scalar
form as the property-test oracle.

Verdict-backed boundary refinement.  The moment-matched shape vector is
a *score* aggregate: its total mass is conserved, so the induced ranking
can disagree with the purchased verdicts themselves near the top-k
boundary (empirically ~2% of boundary slots flip even with every verdict
correct — an order-dependence of the projection, not a judgment error).
To make the returned set's accuracy hang on the ``1 - α`` comparisons
rather than on projection artifacts, a final refinement pass takes the
top ``k + boundary_pad`` items by shape, purchases any pairs among them
the lookahead never bought (a no-op when the loop ran to exhaustion),
and ranks the candidate set by its direct-verdict Copeland score with
shape tie-breaks.  A true top-k item is then missed only when the
shapes are off by more than ``boundary_pad`` positions or a direct
verdict is actually wrong — which is what the Monte-Carlo guarantee
checker measures against the Wilson bound (``bdp_recall``).

Every comparison is purchased through :meth:`CrowdSession.compare_many`,
so BDP inherits the racing kernel, fault injection, budget/latency
ledgers, telemetry, and checkpoint/resume for free.  Stopping is
pluggable (:mod:`repro.core.stopping`): the paper-style per-comparison
confidence rule by default, or the PAC ``(ε, δ)`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.special import betainc

from ..core.stopping import (
    ConfidenceStopping,
    RankingStopping,
    stopping_from_document,
)
from ..core.topk import top_k_indices
from ..errors import AlgorithmError
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = [
    "BDPRanker",
    "bdp_topk",
    "resume_bdp_topk",
    "moment_match",
    "score_pairs",
    "score_pairs_reference",
]

#: Rows of the K³ lookahead tensor materialized at once; keeps peak
#: memory at ``chunk · K²`` floats without measurable slowdown.
_SCORE_CHUNK = 32


def _sym_error(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Posterior probability the lower-shaped item actually wins.

    ``I_{1/2}(max, min)`` — the symmetric mis-ordering risk of a pair
    (0.5 at equality, shrinking with evidence).  Broadcasts.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    return betainc(np.maximum(a, b), np.minimum(a, b), 0.5)


def moment_match(winner_shape: float, loser_shape: float) -> tuple[float, float]:
    """Posterior Gamma shapes after the winner beats the loser.

    Sum-preserving projection (see module docstring): both shapes stay
    positive, the winner's pairwise mean strictly increases, the
    loser's decreases.
    """
    total = winner_shape + loser_shape
    scale = total / (total + 1.0)
    return (winner_shape + 1.0) * scale, loser_shape * scale


def ranking_loss(shapes: np.ndarray) -> float:
    """Summed posterior mis-ordering probability over all pairs."""
    shapes = np.asarray(shapes, dtype=np.float64)
    errors = _sym_error(shapes[:, None], shapes[None, :])
    return float(np.triu(errors, 1).sum())


def score_pairs(shapes: np.ndarray, chunk: int = _SCORE_CHUNK) -> np.ndarray:
    """Expected ranking-loss change from comparing each pair, vectorized.

    Returns a symmetric ``(K, K)`` matrix whose ``[i, j]`` entry is
    ``E[loss after comparing (i, j)] − loss now`` (the diagonal is NaN);
    the most informative pair is the *minimum*.  Matches
    :func:`score_pairs_reference` to float64 round-off while replacing
    its O(K⁴) scalar loop nest with O(K³) array betainc work.
    """
    A = np.asarray(shapes, dtype=np.float64)
    K = A.size
    if K < 2:
        return np.full((K, K), np.nan)
    S2 = A[:, None] + A[None, :]
    P = A[:, None] / S2  # P[i, j] = posterior predictive that i beats j
    W = (A[:, None] + 1.0) * S2 / (S2 + 1.0)  # i's shape after beating j
    L = A[:, None] * S2 / (S2 + 1.0)  # i's shape after losing to j

    E = _sym_error(A[:, None], A[None, :])  # current pair errors, diag 0.5
    R = E.sum(axis=1)
    # Loss terms involving i or j right now: their rows against everyone
    # else, plus the pair itself (each R double-counts the 0.5 diagonal
    # and the shared e(i, j)).
    cur = R[:, None] + R[None, :] - 1.0 - E

    # T_V[i, j] = Σ_{l ∉ {i,j}} e(V[i, j], A_l): the updated item's new
    # row sum against the untouched items.  The l-sum is the K³ part —
    # chunked so only `chunk` rows of the (K, K, K) tensor exist at once.
    def row_sums(V: np.ndarray) -> np.ndarray:
        out = np.empty((K, K))
        for start in range(0, K, max(chunk, 1)):
            stop = min(start + max(chunk, 1), K)
            block = _sym_error(V[start:stop, :, None], A[None, None, :])
            out[start:stop] = block.sum(axis=2)
        return out - _sym_error(V, A[:, None]) - _sym_error(V, A[None, :])

    # If i beats j: i moves to W[i, j], j to L[j, i]; all terms that
    # change are the two new row sums plus the new shared pair error.
    win = row_sums(W) + row_sums(L).T + _sym_error(W, L.T)
    scores = P * win + (1.0 - P) * win.T - cur
    np.fill_diagonal(scores, np.nan)
    return scores


def score_pairs_reference(shapes: np.ndarray) -> np.ndarray:
    """Scalar O(K⁴) reference for :func:`score_pairs` (tests/bench only).

    Recomputes the full ranking loss from scratch for every pair and
    outcome — the shape of the naive ``BDPLoop.py`` reference this repo
    vectorizes away.
    """
    A = np.asarray(shapes, dtype=np.float64)
    K = A.size
    out = np.full((K, K), np.nan)
    base = ranking_loss(A)
    for i in range(K):
        for j in range(i + 1, K):
            p = A[i] / (A[i] + A[j])
            if_i = A.copy()
            if_i[i], if_i[j] = moment_match(A[i], A[j])
            if_j = A.copy()
            if_j[j], if_j[i] = moment_match(A[j], A[i])
            score = p * ranking_loss(if_i) + (1.0 - p) * ranking_loss(if_j) - base
            out[i, j] = out[j, i] = score
    return out


def _select_round_pairs(
    shapes: np.ndarray, available: np.ndarray, count: int
) -> list[tuple[int, int]]:
    """Greedily pick up to ``count`` disjoint pairs by ascending score.

    Disjointness makes the round's moment-matching updates commute, so
    batching comparisons cannot change what a sequential pass would have
    concluded from the same verdicts.  Ties in score break on ``(i, j)``
    index order — fully deterministic, no RNG involved.
    """
    scores = score_pairs(shapes)
    ii, jj = np.nonzero(available)
    if ii.size == 0:
        return []
    order = np.lexsort((jj, ii, scores[ii, jj]))
    chosen: list[tuple[int, int]] = []
    used = np.zeros(shapes.size, dtype=bool)
    for pos in order:
        i, j = int(ii[pos]), int(jj[pos])
        if used[i] or used[j]:
            continue
        chosen.append((i, j))
        used[i] = used[j] = True
        if len(chosen) >= count:
            break
    return chosen


@dataclass(frozen=True)
class BDPRanker:
    """The BDP ranker with its knobs bundled, mirroring :class:`SPRConfig`.

    Attributes
    ----------
    stopping:
        When the posterior justifies answering
        (:mod:`repro.core.stopping`); ``None`` uses the per-comparison
        confidence rule at the session's ``α``.
    pairs_per_round:
        Disjoint comparisons purchased per lookahead round.  1 is the
        strictly-sequential policy of the reference; larger values trade
        a little lookahead fidelity for latency.
    max_comparisons:
        Hard cap on purchased comparisons (``None`` = every pair once).
    prior_shape:
        The uniform prior ``a_i``; larger values damp early updates.
    boundary_pad:
        How far past ``k`` the verdict-backed refinement looks (module
        docstring); ``0`` disables refinement and returns the raw
        posterior ranking.
    """

    stopping: RankingStopping | None = None
    pairs_per_round: int = 1
    max_comparisons: int | None = None
    prior_shape: float = 1.0
    boundary_pad: int = 2

    def __post_init__(self) -> None:
        if self.pairs_per_round < 1:
            raise AlgorithmError(
                f"pairs_per_round must be >= 1, got {self.pairs_per_round}"
            )
        if self.max_comparisons is not None and self.max_comparisons < 1:
            raise AlgorithmError(
                f"max_comparisons must be >= 1, got {self.max_comparisons}"
            )
        if not self.prior_shape > 0:
            raise AlgorithmError(
                f"prior_shape must be > 0, got {self.prior_shape}"
            )
        if self.boundary_pad < 0:
            raise AlgorithmError(
                f"boundary_pad must be >= 0, got {self.boundary_pad}"
            )

    def rank(
        self, session: "CrowdSession", item_ids: list[int], k: int
    ) -> TopKOutcome:
        """Answer the top-k query (see :func:`bdp_topk`)."""
        return bdp_topk(
            session,
            item_ids,
            k,
            stopping=self.stopping,
            pairs_per_round=self.pairs_per_round,
            max_comparisons=self.max_comparisons,
            prior_shape=self.prior_shape,
            boundary_pad=self.boundary_pad,
        )


class _BDPState:
    """Mutable loop state shared with the checkpoint/progress providers."""

    def __init__(
        self, ids: list[int], shapes: np.ndarray, verdicts: np.ndarray
    ) -> None:
        self.ids = ids
        self.shapes = shapes
        # verdicts[i, j] for i < j: +1 item i won, -1 item j won, 0 tie;
        # the aligned `consumed` mask tells purchased ties from untouched
        # pairs.
        self.verdicts = verdicts
        self.consumed = np.zeros(verdicts.shape, dtype=bool)
        self.comparisons = 0
        self.ties = 0


def bdp_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    stopping: RankingStopping | None = None,
    pairs_per_round: int = 1,
    max_comparisons: int | None = None,
    prior_shape: float = 1.0,
    boundary_pad: int = 2,
) -> TopKOutcome:
    """Answer the crowdsourced top-k query over ``item_ids`` with BDP.

    Loop: score every not-yet-purchased pair one step ahead, buy the
    ``pairs_per_round`` most informative disjoint ones through
    :meth:`~repro.crowd.session.CrowdSession.compare_many`, moment-match
    the posteriors on the verdicts, checkpoint at the round boundary,
    and stop as soon as ``stopping`` is satisfied (default: the
    confidence rule at the session's ``α``).  Each pair is purchased at
    most once — a replayed cache verdict would double-count evidence at
    zero cost — and ties simply retire their pair.  The top-k is read
    off the posterior shapes after the verdict-backed boundary
    refinement (module docstring).
    """
    ranker = BDPRanker(  # reuse its validation
        stopping=stopping,
        pairs_per_round=pairs_per_round,
        max_comparisons=max_comparisons,
        prior_shape=prior_shape,
        boundary_pad=boundary_pad,
    )
    ids = validate_query(item_ids, k)
    rule = ranker.stopping
    if rule is None:
        rule = ConfidenceStopping(alpha=session.config.alpha)
    shapes = np.full(len(ids), float(prior_shape))
    verdicts = np.zeros((len(ids), len(ids)), dtype=np.int8)
    state = _BDPState(ids, shapes, verdicts)
    return _run(session, state, k, rule, ranker, session.spent())


def resume_bdp_topk(session: "CrowdSession") -> TopKOutcome:
    """Finish a BDP query from a restored session's checkpoint state.

    ``session`` must come from :meth:`CrowdSession.restore` on a
    checkpoint written at a BDP round boundary.  The posterior, the
    consumed-pair set, and the stopping rule are revived exactly, and
    the session restores its RNG/cache/ledgers itself — so the resumed
    loop re-purchases the interrupted round from the identical stream
    and concludes with the same top-k and total cost as an
    uninterrupted run.
    """
    restored = session.restored_state
    if restored is None:
        raise AlgorithmError("session carries no restored checkpoint state")
    query = restored.get("query", {})
    if "bdp" not in query:
        raise AlgorithmError(
            "checkpoint does not hold an in-flight BDP query "
            f"(query keys: {sorted(query)})"
        )
    doc = query["bdp"]
    ids = [int(i) for i in doc["items"]]
    shapes = np.asarray(doc["shapes"], dtype=np.float64)
    verdicts = np.zeros((len(ids), len(ids)), dtype=np.int8)
    state = _BDPState(ids, shapes, verdicts)
    for i, j, verdict in doc["consumed"]:
        state.consumed[int(i), int(j)] = True
        verdicts[int(i), int(j)] = int(verdict)
    state.comparisons = int(doc["comparisons"])
    state.ties = int(doc["ties"])
    ranker = BDPRanker(
        stopping=stopping_from_document(doc["stopping"]),
        pairs_per_round=int(doc["pairs_per_round"]),
        max_comparisons=doc["max_comparisons"],
        prior_shape=float(doc["prior_shape"]),
        boundary_pad=int(doc["boundary_pad"]),
    )
    spent_before = (int(doc["cost_before"]), int(doc["rounds_before"]))
    return _run(session, state, int(doc["k"]), ranker.stopping, ranker, spent_before)


def _run(
    session: "CrowdSession",
    state: _BDPState,
    k: int,
    rule: RankingStopping,
    ranker: BDPRanker,
    spent_before: tuple[int, int],
) -> TopKOutcome:
    """The shared fresh/resumed BDP loop."""
    ids = state.ids
    index_of = {item: pos for pos, item in enumerate(ids)}
    cap = ranker.max_comparisons

    def _provider() -> dict:
        ii, jj = np.nonzero(state.consumed)
        return {
            "items": list(ids),
            "k": k,
            "shapes": [float(a) for a in state.shapes],
            "consumed": [
                [int(i), int(j), int(state.verdicts[i, j])]
                for i, j in zip(ii, jj)
            ],
            "comparisons": state.comparisons,
            "ties": state.ties,
            "stopping": rule.to_document(),
            "pairs_per_round": ranker.pairs_per_round,
            "max_comparisons": cap,
            "prior_shape": ranker.prior_shape,
            "boundary_pad": ranker.boundary_pad,
            "cost_before": spent_before[0],
            "rounds_before": spent_before[1],
        }

    def _progress() -> dict:
        return {
            "comparisons": state.comparisons,
            "ties": state.ties,
            "loss": ranking_loss(state.shapes),
        }

    def _purchase(pairs: list[tuple[int, int]]) -> None:
        """Buy ``pairs`` through the session and fold in the verdicts."""
        records = session.compare_many([(ids[i], ids[j]) for i, j in pairs])
        for (i, j), record in zip(pairs, records):
            state.consumed[i, j] = True
            state.comparisons += 1
            winner = record.winner
            if winner is None:
                state.ties += 1
                continue
            loser = record.loser
            w, l = index_of[winner], index_of[loser]
            state.verdicts[i, j] = 1 if w == i else -1
            state.shapes[w], state.shapes[l] = moment_match(
                state.shapes[w], state.shapes[l]
            )

    telemetry = session.telemetry
    owns_checkpoint = session.register_state_provider("bdp", _provider)
    session.register_progress_provider("bdp", _progress)
    exhausted = False
    try:
        with telemetry.span("bdp.query", session=session, items=len(ids), k=k):
            while not rule.satisfied(state.shapes, k):
                available = np.triu(~state.consumed, 1)
                budget = available.sum() if cap is None else cap - state.comparisons
                if budget <= 0 or not available.any():
                    exhausted = True
                    break
                want = min(ranker.pairs_per_round, int(budget))
                _purchase(_select_round_pairs(state.shapes, available, want))
                if owns_checkpoint:
                    session.maybe_checkpoint()
            topk = _refine_boundary(
                session, state, k, ranker, cap, _purchase, owns_checkpoint
            )
    finally:
        if owns_checkpoint:
            session.unregister_state_provider("bdp")
        session.unregister_progress_provider("bdp")
    return measured(
        "bdp",
        session,
        [ids[t] for t in topk],
        spent_before,
        extras={
            "comparisons": state.comparisons,
            "ties": state.ties,
            "stopping": rule.to_document(),
            "stopping_satisfied": not exhausted,
            "loss": ranking_loss(state.shapes),
            "shapes": [float(a) for a in state.shapes],
        },
    )


def _refine_boundary(
    session: "CrowdSession",
    state: _BDPState,
    k: int,
    ranker: BDPRanker,
    cap: int | None,
    purchase,
    owns_checkpoint: bool,
) -> list[int]:
    """Verdict-backed top-k refinement (module docstring).

    Freezes the top ``k + boundary_pad`` items by shape, purchases the
    pairs among them the lookahead never bought (respecting
    ``max_comparisons``; a no-op after exhaustion), and ranks the
    candidates by Copeland score over their direct verdicts — wins 1,
    ties ½ — breaking score ties by posterior shape, then by index.
    Returns candidate *indices*, best first, length ``k``.
    """
    n = len(state.ids)
    pad = min(ranker.boundary_pad, n - k)
    if pad <= 0:
        return [int(t) for t in top_k_indices(state.shapes, k)]
    candidates = [int(t) for t in top_k_indices(state.shapes, k + pad)]
    missing = [
        (min(i, j), max(i, j))
        for pos, i in enumerate(candidates)
        for j in candidates[pos + 1 :]
        if not state.consumed[min(i, j), max(i, j)]
    ]
    if cap is not None:
        missing = missing[: max(cap - state.comparisons, 0)]
    if missing:
        purchase(missing)
        if owns_checkpoint:
            session.maybe_checkpoint()
    scores: dict[int, float] = {c: 0.0 for c in candidates}
    for pos, i in enumerate(candidates):
        for j in candidates[pos + 1 :]:
            lo, hi = min(i, j), max(i, j)
            if not state.consumed[lo, hi]:
                continue  # cap exhausted before this pair was purchasable
            verdict = int(state.verdicts[lo, hi])
            if verdict == 0:
                scores[i] += 0.5
                scores[j] += 0.5
            else:
                scores[i if (verdict == 1) == (i == lo) else j] += 1.0
    ordered = sorted(
        candidates,
        key=lambda c: (-scores[c], -state.shapes[c], c),
    )
    return ordered[:k]
