"""Heap-sort baseline — §4.2.

A min-heap of ``k`` candidate items is seeded from random items; every
other item is then tested *sequentially* against the heap root (the worst
candidate) and replaces it when found better.  The total workload is
``O(Nw log k)``; the strictly sequential scan is why heap sort has by far
the worst latency of the baselines (§5.5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.outcomes import Outcome
from ..core.sorting import odd_even_sort, resolve_winner
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["heapsort_topk"]


class _CrowdMinHeap:
    """A fixed-size min-heap ordered by crowd comparisons (root = worst)."""

    def __init__(self, session: "CrowdSession", items: list[int]) -> None:
        self.session = session
        self.heap = list(items)
        for pos in range(len(self.heap) // 2 - 1, -1, -1):
            self._sift_down(pos)

    def _worse(self, a: int, b: int) -> bool:
        """Whether item ``a`` is worse than item ``b`` (crowd-judged)."""
        record = self.session.compare(a, b)
        if record.outcome is Outcome.TIE:
            return resolve_winner(record, self.session.rng) == b
        return record.outcome is Outcome.RIGHT

    def _sift_down(self, pos: int) -> None:
        size = len(self.heap)
        while True:
            left, right = 2 * pos + 1, 2 * pos + 2
            worst = pos
            if left < size and self._worse(self.heap[left], self.heap[worst]):
                worst = left
            if right < size and self._worse(self.heap[right], self.heap[worst]):
                worst = right
            if worst == pos:
                return
            self.heap[pos], self.heap[worst] = self.heap[worst], self.heap[pos]
            pos = worst

    @property
    def root(self) -> int:
        return self.heap[0]

    def replace_root(self, item: int) -> None:
        self.heap[0] = item
        self._sift_down(0)


def heapsort_topk(
    session: "CrowdSession", item_ids: list[int], k: int
) -> TopKOutcome:
    """Answer the top-k query with a crowd-powered heap scan."""
    ids = validate_query(item_ids, k)
    before = session.spent()

    order = list(ids)
    session.rng.shuffle(order)
    heap = _CrowdMinHeap(session, order[:k])
    for item in order[k:]:
        record = session.compare(item, heap.root)
        if record.outcome is Outcome.LEFT:
            heap.replace_root(item)

    ranked = odd_even_sort(session, heap.heap)
    return measured("heapsort", session, ranked, before)
