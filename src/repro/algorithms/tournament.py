"""Tournament-tree baseline — §4.1 (Davidson et al. style).

A knockout tournament over a random permutation finds the champion; every
subsequent result item is the best of the *candidate set* — the items whose
every conqueror already sits in the result.  That candidate set is exactly
the classic "items that directly lost to selected items", of size
``O(log N)`` per extraction, giving the ``O(Nw + kw log N)`` total workload
the paper quotes.  Each knockout level is one parallel comparison group.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.sorting import resolve_winner
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["tournament_topk"]


def _knockout(
    session: "CrowdSession",
    entrants: list[int],
    conquerors: dict[int, set[int]],
) -> int:
    """Run a knockout among ``entrants``, recording loser → winner edges."""
    current = list(entrants)
    while len(current) > 1:
        pairs = [
            (current[pos], current[pos + 1]) for pos in range(0, len(current) - 1, 2)
        ]
        records = session.compare_many(pairs)
        survivors = [current[-1]] if len(current) % 2 == 1 else []
        for rec in records:
            winner = resolve_winner(rec, session.rng)
            loser = rec.left if winner == rec.right else rec.right
            conquerors[loser].add(winner)
            survivors.append(winner)
        current = survivors
    return current[0]


def tournament_topk(
    session: "CrowdSession", item_ids: list[int], k: int
) -> TopKOutcome:
    """Answer the top-k query with repeated tournament selection."""
    ids = validate_query(item_ids, k)
    before = session.spent()

    order = list(ids)
    session.rng.shuffle(order)
    conquerors: dict[int, set[int]] = {item: set() for item in order}

    result: list[int] = []
    champion = _knockout(session, order, conquerors)
    result.append(champion)
    selected = {champion}

    while len(result) < k:
        candidates = [
            item
            for item in order
            if item not in selected and conquerors[item] <= selected
        ]
        next_best = _knockout(session, candidates, conquerors)
        result.append(next_best)
        selected.add(next_best)

    return measured("tournament", session, result, before)
