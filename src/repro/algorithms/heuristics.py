"""Budget-matched heuristic rankers from the crowdsourced-top-k survey.

The paper benchmarks two non-confidence-aware methods (CrowdBT, Hybrid).
The survey it builds on (Zhang, Li & Feng, PVLDB'16 [44]) evaluates a
longer tail of heuristics; the two most instructive are implemented here
to extend the Figure-14 comparison:

* :func:`borda_topk` — spread the budget over random pairs, rank items by
  their empirical win rate (Borda / Copeland counting).  The simplest
  possible aggregation and the classic "why you need a model" baseline.
* :func:`elo_topk` — sequential ELO updates over random pairs: each vote
  moves the two items' ratings by a K-factor scaled surprise.  Order-
  sensitive and non-convergent at fixed K, but cheap and incremental.

Both consume exactly ``budget`` binary microtasks, like the paper's
CrowdBT protocol.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..core.topk import top_k_indices
from ..crowd.oracle import BinaryOracle
from ..errors import AlgorithmError
from .base import TopKOutcome, measured, validate_query

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["borda_topk", "elo_topk"]


def _random_binary_votes(
    session: "CrowdSession", ids: list[int], budget: int, chunk: int = 8192
):
    """Yield ``(left_pos, right_pos, vote)`` for ``budget`` random pairs.

    Votes are bought through a binary-judgment fork of the session in
    vectorized chunks; positions index into ``ids``.
    """
    voting = session.fork(oracle=BinaryOracle(session.oracle))
    rng = voting.rng
    id_array = np.asarray(ids, dtype=np.int64)
    n = len(ids)
    remaining = budget
    while remaining > 0:
        m = min(chunk, remaining)
        a = rng.integers(0, n, size=m)
        shift = rng.integers(1, n, size=m)
        b = (a + shift) % n
        votes = voting.oracle.draw_pairs(id_array[a], id_array[b], 1, rng)[:, 0]
        yield a, b, votes
        remaining -= m


def _finish(
    session: "CrowdSession", method: str, ids, scores, k, before, budget, extras
) -> TopKOutcome:
    session.charge_cost(budget)
    # All votes are independent microtasks: the whole spend parallelizes
    # into a handful of batch rounds.
    session.charge_rounds(
        max(1, math.ceil(budget / max(len(ids), 1) / session.config.batch_size))
    )
    topk = [ids[int(pos)] for pos in top_k_indices(np.asarray(scores), k)]
    return measured(method, session, topk, before, extras)


def borda_topk(
    session: "CrowdSession", item_ids: list[int], k: int, *, budget: int
) -> TopKOutcome:
    """Rank items by empirical win rate over ``budget`` random binary votes."""
    ids = validate_query(item_ids, k)
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    before = session.spent()

    n = len(ids)
    wins = np.zeros(n, dtype=np.float64)
    appearances = np.zeros(n, dtype=np.float64)
    for a, b, votes in _random_binary_votes(session, ids, budget):
        np.add.at(appearances, a, 1.0)
        np.add.at(appearances, b, 1.0)
        np.add.at(wins, np.where(votes > 0, a, b), 1.0)
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = np.where(appearances > 0, wins / appearances, 0.0)
    return _finish(
        session, "borda", ids, rate, k, before, budget,
        {"votes": budget, "min_appearances": int(appearances.min())},
    )


def elo_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    budget: int,
    k_factor: float = 24.0,
    spread: float = 400.0,
) -> TopKOutcome:
    """Rank items by ELO ratings updated over ``budget`` random binary votes.

    Standard logistic ELO: the winner of each vote gains
    ``K · (1 − expected)`` rating points where
    ``expected = 1 / (1 + 10^{(r_loser − r_winner)/spread})``.  Updates are
    sequential within each purchased chunk (ELO is order-dependent by
    design).
    """
    ids = validate_query(item_ids, k)
    if budget < 1:
        raise AlgorithmError(f"budget must be >= 1, got {budget}")
    if k_factor <= 0 or spread <= 0:
        raise AlgorithmError("k_factor and spread must be positive")
    before = session.spent()

    ratings = np.full(len(ids), 1500.0)
    for a, b, votes in _random_binary_votes(session, ids, budget):
        winners = np.where(votes > 0, a, b)
        losers = np.where(votes > 0, b, a)
        for w_pos, l_pos in zip(winners, losers):
            expected = 1.0 / (
                1.0 + 10.0 ** ((ratings[l_pos] - ratings[w_pos]) / spread)
            )
            delta = k_factor * (1.0 - expected)
            ratings[w_pos] += delta
            ratings[l_pos] -= delta
    return _finish(
        session, "elo", ids, ratings, k, before, budget,
        {"votes": budget, "rating_spread": float(ratings.max() - ratings.min())},
    )
