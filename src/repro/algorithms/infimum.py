"""Infimum-cost estimation — Lemma 1 (§4.4).

The minimum possible cost of a crowdsourced top-k query confirms exactly

* the chain ``o*_1 ≻ o*_2 ≻ … ≻ o*_k`` (k−1 adjacent comparisons), and
* ``o*_k ≻ o*_j`` for every non-result ``j`` (N−k prune comparisons),

and nothing else.  This module *measures* that bound by actually running
the required comparison processes — it is an oracle-assisted yardstick
(it reads the ground-truth order, which no real algorithm can), plotted as
the "infimum" series of Figures 9, 11 and 12.

Latency: the prune comparisons are mutually independent (one parallel
group) and so are the chain comparisons; the infimum latency is the larger
group maximum, matching the luckiest possible schedule.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.items import ItemSet
from ..errors import AlgorithmError
from .base import TopKOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = ["infimum_estimate", "infimum_pairs"]


def infimum_pairs(items: ItemSet, k: int) -> list[tuple[int, int]]:
    """The exact comparison set of Lemma 1 (better item first in each pair)."""
    if not 1 <= k <= len(items):
        raise AlgorithmError(f"k must be in [1, {len(items)}], got {k}")
    order = items.true_order
    chain = [(int(order[j]), int(order[j + 1])) for j in range(k - 1)]
    prune = [(int(order[k - 1]), int(order[j])) for j in range(k, len(order))]
    return chain + prune


def infimum_estimate(
    session: "CrowdSession", items: ItemSet, k: int
) -> TopKOutcome:
    """Measure ``TMC_inf`` by running exactly the Lemma-1 comparisons.

    Uses the session's oracle, estimator and per-pair budget, so the bound
    moves with every swept parameter the way the paper's infimum series
    does.  The returned ``topk`` is the ground truth (the infimum scenario
    assumes every verdict lands correctly).
    """
    pairs = infimum_pairs(items, k)
    before = session.spent()
    chain = pairs[: k - 1]
    prune = pairs[k - 1 :]
    if prune:
        session.compare_many(prune)
    if chain:
        session.compare_many(chain)
    cost_after, rounds_after = session.spent()
    return TopKOutcome(
        method="infimum",
        topk=tuple(int(i) for i in items.true_top_k(k)),
        cost=cost_after - before[0],
        rounds=rounds_after - before[1],
        extras={"pairs": len(pairs)},
    )
