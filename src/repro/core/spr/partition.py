"""Reference-based partitioning — Algorithm 4 (§5.2).

All remaining items race against the reference in lockstep batches of
microtasks (one :class:`~repro.crowd.pool.RacingPool` round = one latency
round), harvesting winners and losers as their comparisons resolve and
deferring the difficult pairs.  The deferment enables the *reference
change* optimization: as soon as ``k`` winners are confirmed, the k-th best
winner — provably between ``o*_k`` and the current reference (Lemma 4) —
takes over as reference, and the still-undecided items restart against it.

Following Line 13 of Algorithm 4 the final reference joins the winners when
fewer than ``k`` of them were confirmed; otherwise it is returned among the
losers (``k`` confirmed items already beat it).  The three groups therefore
always partition the input exactly.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ...crowd.pool import RacingPool
from ...errors import AlgorithmError
from ..topk import top_k_indices

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...crowd.session import CrowdSession

__all__ = ["PartitionResult", "partition"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of reference-based partitioning.

    ``winners`` are confirmed superior to the (final) reference — with the
    reference appended when fewer than ``k`` items beat it; ``ties`` could
    not be separated from it within the per-pair budget; ``losers`` are
    confirmed inferior, including any replaced references.  The three lists
    partition the input item set.
    """

    winners: tuple[int, ...]
    ties: tuple[int, ...]
    losers: tuple[int, ...]
    reference: int
    reference_changes: int
    cost: int
    rounds: int

    @property
    def reference_in_winners(self) -> bool:
        """Whether Line 13 added the final reference back into winners."""
        return self.reference in self.winners


def _kth_best_winner(
    session: "CrowdSession",
    winners: list[int],
    reference: int,
    k: int,
    pool_means: dict[int, float] | None = None,
) -> int:
    """The k-th best confirmed winner, judged by observed means vs ``r``.

    Every winner's mean against the reference is already paid for — the
    racing pool hands it over (its running ``s1 / n``) the moment the pair
    resolves, and winners carried over a reference change fall back to the
    judgment cache's running moments.  The k-th largest sample mean is the
    free estimate of the k-th best item.
    """
    means = []
    for item in winners:
        mean = pool_means.get(item) if pool_means is not None else None
        if mean is None:
            _, mean, _ = session.moments(item, reference)
        means.append(mean if math.isfinite(mean) else math.inf)
    # Stable selection of the k-th largest mean: argpartition-based, with
    # ties resolved toward the earlier winner exactly like the stable
    # full sort this replaced.
    kth = top_k_indices(np.asarray(means, dtype=np.float64), k)[-1]
    return winners[int(kth)]


def partition(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    reference: int,
    *,
    max_reference_changes: int = 2,
    step: int | None = None,
    checkpointing: bool = True,
    resume: dict | None = None,
) -> PartitionResult:
    """Partition ``item_ids`` against ``reference`` into winners/ties/losers.

    ``step`` is the per-round microtask batch per undecided pair (defaults
    to the session's batch size η).  ``max_reference_changes`` bounds the
    Table-4 reference-change optimization; 0 reproduces plain Algorithm 4
    without Lines 9-12.

    ``checkpointing=True`` registers this loop as the session's
    ``"partition"`` state provider and offers a checkpoint at every round
    boundary (a no-op unless the session has
    :meth:`~repro.crowd.session.CrowdSession.enable_checkpoints` on).
    Registration fails silently for nested invocations — only the
    outermost partitioning loop produces resumable state.  ``resume``
    takes the provider's persisted document and restarts the loop exactly
    where the checkpoint left it (``item_ids``/``k``/``reference`` are
    then read from the document, not the arguments).
    """
    if resume is not None:
        reference = int(resume["reference"])
        k = int(resume["k"])
        max_reference_changes = int(resume["max_reference_changes"])
        step = resume["step"]
        winners = [int(i) for i in resume["winners"]]
        losers = [int(i) for i in resume["losers"]]
        ties = [int(i) for i in resume["ties"]]
        changes = int(resume["changes"])
        cost_before = int(resume["cost_before"])
        rounds_before = int(resume["rounds_before"])
        pairs = [(int(a), int(b)) for a, b in resume["pool_pairs"]]
        pool = RacingPool(session, pairs, resume_state=resume["pool_state"])
        resolved_backlog: list[tuple[int, int]] = []
        pool_means = {
            int(item): float(mean) for item, mean in resume["pool_means"].items()
        }
    else:
        ids = [int(i) for i in item_ids]
        reference = int(reference)
        if reference not in ids:
            raise AlgorithmError(f"reference {reference} is not among the items")
        if not 1 <= k <= len(ids):
            raise AlgorithmError(f"k must be in [1, {len(ids)}], got {k}")
        if max_reference_changes < 0:
            raise AlgorithmError("max_reference_changes must be >= 0")

        cost_before, rounds_before = session.spent()
        winners = []
        losers = []
        ties = []
        changes = 0

        pending = [i for i in ids if i != reference]
        pool = RacingPool(session, [(item, reference) for item in pending])
        resolved_backlog = list(pool.initial_decisions)
        # Winner means vs the *current* reference, harvested as resolved.
        pool_means = {}

    telemetry = session.telemetry

    def _provider() -> dict:
        # Called at a round boundary: the backlog is folded, so the lists
        # plus the pool's exact numeric state describe the loop fully.
        active = pool.active_indices
        return {
            "k": k,
            "reference": reference,
            "max_reference_changes": max_reference_changes,
            "step": step,
            "winners": list(winners),
            "losers": list(losers),
            "ties": list(ties),
            "changes": changes,
            "cost_before": cost_before,
            "rounds_before": rounds_before,
            "pool_pairs": [
                [int(pool.left[i]), int(pool.right[i])] for i in active
            ],
            "pool_state": pool.snapshot_state(active),
            "pool_means": pool_means,
        }

    # The provider reads the loop variables through this closure, so it is
    # registered before the loop and sees every rebinding (pool restarts,
    # reference changes) up to the moment a checkpoint is pulled.
    owns_checkpoint = checkpointing and session.register_state_provider(
        "partition", _provider
    )

    def _progress() -> dict:
        # Cheap, read-only, safe at any instant — the observatory's
        # /queries endpoint may call this from another thread mid-round.
        return {
            "reference": int(reference),
            "reference_changes": changes,
            "winners": len(winners),
            "ties": len(ties),
            "losers": len(losers),
            "pool": pool.progress(step),
        }

    owns_progress = session.register_progress_provider("partition", _progress)
    try:
        while True:
            new_ties = 0
            for idx, code in resolved_backlog:
                item = int(pool.left[idx])
                if code > 0:
                    winners.append(item)
                    pool_means[item] = pool.mean(idx)
                elif code < 0:
                    losers.append(item)
                else:
                    ties.append(item)
                    new_ties += 1
                    logger.debug(
                        "deferment: item %d could not be separated from "
                        "reference %d within the per-pair budget", item, reference,
                    )
            if new_ties:
                # One batched charge per backlog fold instead of one
                # counter lookup per tie.
                telemetry.counter("spr_deferments_total").add(new_ties)
            resolved_backlog = []
            if owns_checkpoint:
                # Round boundary with the backlog folded: the one safe
                # point where the provider's document fully describes the
                # loop, so the cadence check lives here.
                session.maybe_checkpoint()

            # Lines 9-12: swap in a better reference once k winners exist
            # and undecided pairs remain to benefit from it.
            undecided = len(pool.active_indices) + len(ties)
            if (
                len(winners) >= k
                and changes < max_reference_changes
                and undecided > 0
            ):
                new_reference = _kth_best_winner(
                    session, winners, reference, k, pool_means
                )
                losers.append(reference)
                winners.remove(new_reference)
                restart = [int(pool.left[i]) for i in pool.active_indices] + ties
                ties = []
                pool_means = {}  # stale: measured vs the old reference
                telemetry.counter("spr_reference_changes_total").inc()
                telemetry.emit(
                    "reference_change",
                    old=int(reference),
                    new=int(new_reference),
                    change=changes + 1,
                    restarting=len(restart),
                )
                logger.info(
                    "reference change %d: %d -> %d with %d pairs restarting",
                    changes + 1, reference, new_reference, len(restart),
                )
                reference = new_reference
                changes += 1
                pool = RacingPool(session, [(item, reference) for item in restart])
                resolved_backlog = list(pool.initial_decisions)
                continue

            if pool.is_done:
                break
            resolved_backlog = pool.round(step)
    finally:
        if owns_checkpoint:
            session.unregister_state_provider("partition")
        if owns_progress:
            session.unregister_progress_provider("partition")

    # Line 13: the reference is itself a top-k candidate when fewer than k
    # items beat it; otherwise it is dominated by k confirmed items.
    if len(winners) < k:
        winners.append(reference)
    else:
        losers.append(reference)

    cost_after, rounds_after = session.spent()
    return PartitionResult(
        winners=tuple(winners),
        ties=tuple(ties),
        losers=tuple(losers),
        reference=reference,
        reference_changes=changes,
        cost=cost_after - cost_before,
        rounds=rounds_after - rounds_before,
    )
