"""Reference-based sorting — §5.3.

The top-k candidates all carry sample bags against the shared reference
``r``, so Thurstone's Case-V calculation orders them *for free*:
``Pr{μ_{i,r} > μ_{j,r}} = Φ((μ̂_i − μ̂_j)/σ̂)`` ranks ``i`` above ``j``
exactly when its observed mean against ``r`` is larger.  That almost-sorted
order seeds a best-case-linear crowd bubble sort (the parallel odd-even
form), whose re-comparisons are largely served from the judgment cache.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ...stats.thurstone import win_probability
from ..sorting import odd_even_sort

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...crowd.session import CrowdSession

__all__ = ["thurstone_order", "pairwise_win_probability", "reference_sort"]


def thurstone_order(
    session: "CrowdSession", candidate_ids: list[int], reference: int
) -> list[int]:
    """Order candidates by their observed means against ``reference``.

    This is the ranking induced by pairwise Thurstone win probabilities:
    ``win_probability`` is monotone in the mean difference, so sorting by
    means realizes it without further microtasks.  Candidates without a
    bag against the reference (recursion results, randomly promoted ties)
    sort as if neutral (mean 0); the reference itself is neutral by
    definition.
    """
    reference = int(reference)

    def observed_mean(item: int) -> float:
        if item == reference:
            return 0.0
        _, mean, _ = session.moments(item, reference)
        return mean if math.isfinite(mean) else 0.0

    return sorted(
        (int(i) for i in candidate_ids), key=lambda item: -observed_mean(item)
    )


def pairwise_win_probability(
    session: "CrowdSession", i: int, j: int, reference: int
) -> float:
    """Thurstone ``Pr{o_i ≻ o_j}`` from the two bags against ``reference``.

    Exposed for inspection and for the examples; the sort itself only needs
    the induced order.  The variance fed to Thurstone's formula is the
    variance *of the mean* (``S²/n``) of each bag; items without a bag
    contribute a neutral mean with zero spread, so the probability against
    them reduces to a mean-sign comparison.
    """
    reference = int(reference)

    def bag_stats(item: int) -> tuple[float, float]:
        if int(item) == reference:
            return 0.0, 0.0
        n, mean, var = session.moments(int(item), reference)
        if n == 0 or not math.isfinite(mean):
            return 0.0, 0.0
        if n < 2 or not math.isfinite(var):
            return mean, 0.0
        return mean, var / n

    mean_i, var_i = bag_stats(i)
    mean_j, var_j = bag_stats(j)
    return win_probability(mean_i, var_i, mean_j, var_j)


def reference_sort(
    session: "CrowdSession",
    candidate_ids: list[int],
    reference: int | None = None,
) -> list[int]:
    """Sort candidates best-first, seeded by the Thurstone order.

    With ``reference=None`` (no shared bags — e.g. tiny inputs that skipped
    partitioning) the sort starts from the given order.
    """
    ids = [int(i) for i in candidate_ids]
    if len(ids) <= 1:
        return ids
    initial = thurstone_order(session, ids, reference) if reference is not None else ids
    return odd_even_sort(session, ids, initial_order=initial)
