"""The Select-Partition-Rank framework (§5 of the paper)."""

from .partition import PartitionResult, partition
from .rank import reference_sort, thurstone_order
from .select import SelectionResult, select_reference
from .spr import (
    SPRResult,
    expected_precision_lower_bound,
    resume_spr_topk,
    spr_topk,
)

__all__ = [
    "PartitionResult",
    "SPRResult",
    "SelectionResult",
    "expected_precision_lower_bound",
    "partition",
    "reference_sort",
    "resume_spr_topk",
    "select_reference",
    "spr_topk",
    "thurstone_order",
]
