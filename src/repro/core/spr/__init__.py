"""The Select-Partition-Rank framework (§5 of the paper)."""

from .partition import PartitionResult, partition
from .rank import reference_sort, thurstone_order
from .select import SelectionResult, select_reference
from .spr import SPRResult, expected_precision_lower_bound, spr_topk

__all__ = [
    "PartitionResult",
    "SPRResult",
    "SelectionResult",
    "expected_precision_lower_bound",
    "partition",
    "reference_sort",
    "select_reference",
    "spr_topk",
    "thurstone_order",
]
