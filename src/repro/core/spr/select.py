"""Reference selection — Algorithm 3 and optimization problem (2).

The goal is an item inside the *sweet spot* ``{o*_k, …, o*_{⌊ck⌋}}``: good
enough to prune every non-result item, but not so good that real top-k
items get pruned against it.  The procedure:

1. Solve problem (2) for the sampling plan ``(x, m)`` maximizing the
   Lemma-2 success probability under an ``O(N)`` comparison budget.
2. Run ``m`` independent sampling procedures of ``x`` uniform draws (with
   replacement) each; find each procedure's best item by a parallel
   knockout tournament.
3. Return the median of the ``m`` maxima, found by the partial bubble sort
   of Appendix C.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ...errors import AlgorithmError
from ...stats.reference import SamplingPlan, solve_sampling_plan
from ..sorting import crowd_max_many, median_of_multiset

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...crowd.session import CrowdSession

__all__ = ["SelectionResult", "select_reference"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of reference selection.

    Attributes
    ----------
    reference:
        The selected reference item id (median of the sample maxima).
    plan:
        The sampling plan ``(x, m)`` the selection executed.
    maxima:
        The ``m`` per-procedure best items (duplicates possible — strong
        items win several procedures).
    cost, rounds:
        Microtasks and latency rounds the selection consumed.
    """

    reference: int
    plan: SamplingPlan
    maxima: tuple[int, ...]
    cost: int
    rounds: int


def select_reference(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    *,
    sweet_spot: float = 1.5,
    budget_factor: float = 1.0,
) -> SelectionResult:
    """Pick a reference item expected to land in the sweet spot.

    ``budget_factor`` scales the comparison budget of problem (2) relative
    to ``N`` (the partitioning cost the selection must not dominate).
    """
    ids = [int(i) for i in item_ids]
    n = len(ids)
    if n < 2:
        raise AlgorithmError("reference selection needs at least 2 items")
    if not 1 <= k < n:
        raise AlgorithmError(f"k must be in [1, {n - 1}], got {k}")

    plan = solve_sampling_plan(n, k, sweet_spot, int(budget_factor * n))
    cost_before, rounds_before = session.spent()

    id_array = np.asarray(ids, dtype=np.int64)
    samples = [
        id_array[session.rng.integers(0, n, size=plan.x)].tolist()
        for _ in range(plan.m)
    ]
    maxima = crowd_max_many(session, samples)
    reference = maxima[0] if plan.m == 1 else median_of_multiset(session, maxima)

    cost_after, rounds_after = session.spent()
    logger.debug(
        "selected reference %d from %d procedures of %d draws "
        "(%d microtasks, %d rounds)",
        int(reference), plan.m, plan.x,
        cost_after - cost_before, rounds_after - rounds_before,
    )
    return SelectionResult(
        reference=int(reference),
        plan=plan,
        maxima=tuple(maxima),
        cost=cost_after - cost_before,
        rounds=rounds_after - rounds_before,
    )
