"""The SPR driver — Algorithm 2 (§5) plus the §5.4 accuracy analysis.

``spr_topk`` glues the three phases together:

1. **Select** a reference expected to land in the sweet spot (§5.1).
2. **Partition** every other item against it into winners / ties / losers
   with deferment and optional reference changes (§5.2).
3. **Rank** the k result candidates by Thurstone-seeded sorting (§5.3),
   recursing into the losers in the (rare) case the winners and ties
   cannot fill the result.

Tiny inputs skip phases 1-2 — with no room for sampling to pay off the
framework degenerates to a direct crowd sort, which is also the recursion
base case.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING

from ...config import SPRConfig
from ...errors import AlgorithmError
from ...stats.reference import SamplingPlan
from .partition import PartitionResult, partition
from .rank import reference_sort
from .select import SelectionResult, select_reference

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ...crowd.session import CrowdSession

__all__ = [
    "SPRResult",
    "spr_topk",
    "resume_spr_topk",
    "expected_precision_lower_bound",
]


@dataclass(frozen=True)
class SPRResult:
    """Result and diagnostics of one SPR query.

    Attributes
    ----------
    topk:
        The returned top-k items, best first.
    selection, partition_result:
        Phase diagnostics of the outermost SPR invocation (None when the
        input was small enough to sort directly).
    recursed:
        Whether Algorithm 2 had to recurse into the losers.
    cost, rounds:
        Microtasks and latency rounds consumed by this invocation
        (including recursion and ranking).
    """

    topk: tuple[int, ...]
    selection: SelectionResult | None
    partition_result: PartitionResult | None
    recursed: bool
    cost: int
    rounds: int
    promoted_ties: tuple[int, ...] = field(default=())


def expected_precision_lower_bound(alpha: float, c: float) -> float:
    """The §5.4 lower bound on expected precision, ``(1 − α) / c``.

    Each true top-k item survives partitioning with probability at least
    ``1 − α``; drawing k results out of the ≤ ck partition survivors keeps
    at least a ``1/c`` fraction — the ranking phase only refines this.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if c <= 1.0:
        raise ValueError(f"c must be > 1, got {c}")
    return (1.0 - alpha) / c


def spr_topk(
    session: "CrowdSession",
    item_ids: list[int],
    k: int,
    config: SPRConfig | None = None,
) -> SPRResult:
    """Answer the crowdsourced top-k query over ``item_ids`` with SPR."""
    config = config if config is not None else SPRConfig()
    ids = list(dict.fromkeys(int(i) for i in item_ids))
    if len(ids) != len(list(item_ids)):
        raise AlgorithmError("item_ids must not contain duplicates")
    if not 1 <= k <= len(ids):
        raise AlgorithmError(f"k must be in [1, {len(ids)}], got {k}")
    cost_before, rounds_before = session.spent()
    telemetry = session.telemetry

    # Degenerate / base cases: nothing to prune, just sort.
    if k == len(ids) or len(ids) < config.min_items_for_selection:
        with telemetry.span("spr.rank", session=session, items=len(ids), k=k):
            ranked = reference_sort(session, ids, reference=None)
        cost_after, rounds_after = session.spent()
        return SPRResult(
            topk=tuple(ranked[:k]),
            selection=None,
            partition_result=None,
            recursed=False,
            cost=cost_after - cost_before,
            rounds=rounds_after - rounds_before,
        )

    # Selection runs under a capped per-pair budget: a tie between two
    # candidate references marks them interchangeable, so the full budget
    # would be spent separating items whose order cannot matter (§5.4 —
    # selection errors only cost efficiency).  The shared cache carries the
    # purchased judgments into partitioning.
    selection_cap = config.selection_comparison_budget
    if selection_cap is None:
        selection_cap = 2 * session.config.min_workload
    selection_budget = min(session.config.effective_budget, selection_cap)
    selection_session = session.fork(budget=selection_budget)
    with telemetry.span("spr.select", session=session, items=len(ids), k=k):
        selection = select_reference(
            selection_session,
            ids,
            k,
            sweet_spot=config.sweet_spot,
            budget_factor=config.selection_budget_factor,
        )

    # Query-level state for checkpoint/resume: what surrounds the
    # partitioning loop.  Only the outermost SPR invocation owns the key;
    # recursive blow-up queries run without checkpointing — their state is
    # not resumable on its own.
    def _provider() -> dict:
        return {
            "items": list(ids),
            "k": k,
            "config": _spr_config_document(config),
            "selection": _selection_document(selection),
            "cost_before": cost_before,
            "rounds_before": rounds_before,
        }

    owns_checkpoint = session.register_state_provider("spr", _provider)
    try:
        with telemetry.span("spr.partition", session=session, items=len(ids), k=k):
            part = partition(
                session,
                ids,
                k,
                selection.reference,
                max_reference_changes=config.max_reference_changes,
                checkpointing=owns_checkpoint,
            )
    finally:
        if owns_checkpoint:
            session.unregister_state_provider("spr")
    return _conclude(
        session, ids, k, config, selection, part, cost_before, rounds_before
    )


def _spr_config_document(config: SPRConfig) -> dict:
    """The SPR knobs as a JSON document (the comparison config rides in the
    session's own checkpoint state)."""
    return {
        "sweet_spot": config.sweet_spot,
        "max_reference_changes": config.max_reference_changes,
        "selection_budget_factor": config.selection_budget_factor,
        "selection_comparison_budget": config.selection_comparison_budget,
        "min_items_for_selection": config.min_items_for_selection,
    }


def _selection_document(selection: SelectionResult) -> dict:
    return {
        "reference": selection.reference,
        "plan": asdict(selection.plan),
        "maxima": [int(i) for i in selection.maxima],
        "cost": selection.cost,
        "rounds": selection.rounds,
    }


def resume_spr_topk(session: "CrowdSession") -> SPRResult:
    """Finish an SPR query from a restored session's checkpoint state.

    ``session`` must come from :meth:`CrowdSession.restore` on a checkpoint
    written mid-partition: the selection phase is replayed from its
    persisted result (no re-sampling, no RNG consumption), the
    partitioning loop restarts from its exact racing state, and the query
    concludes identically — same top-k, same total cost — to the run that
    was killed.
    """
    state = session.restored_state
    if state is None:
        raise AlgorithmError("session carries no restored checkpoint state")
    query = state.get("query", {})
    if "spr" not in query or "partition" not in query:
        raise AlgorithmError(
            "checkpoint does not hold an in-flight SPR query "
            f"(query keys: {sorted(query)})"
        )
    spr_state = query["spr"]
    config = SPRConfig(comparison=session.config, **spr_state["config"])
    sel = spr_state["selection"]
    selection = SelectionResult(
        reference=int(sel["reference"]),
        plan=SamplingPlan(**sel["plan"]),
        maxima=tuple(int(i) for i in sel["maxima"]),
        cost=int(sel["cost"]),
        rounds=int(sel["rounds"]),
    )
    ids = [int(i) for i in spr_state["items"]]
    k = int(spr_state["k"])
    cost_before = int(spr_state["cost_before"])
    rounds_before = int(spr_state["rounds_before"])
    telemetry = session.telemetry

    def _provider() -> dict:
        return {
            "items": list(ids),
            "k": k,
            "config": _spr_config_document(config),
            "selection": _selection_document(selection),
            "cost_before": cost_before,
            "rounds_before": rounds_before,
        }

    owns_checkpoint = session.register_state_provider("spr", _provider)
    try:
        with telemetry.span("spr.partition", session=session, items=len(ids), k=k):
            part = partition(
                session,
                ids,
                k,
                selection.reference,
                checkpointing=owns_checkpoint,
                resume=query["partition"],
            )
    finally:
        if owns_checkpoint:
            session.unregister_state_provider("spr")
    return _conclude(
        session, ids, k, config, selection, part, cost_before, rounds_before
    )


def _conclude(
    session: "CrowdSession",
    ids: list[int],
    k: int,
    config: SPRConfig,
    selection: SelectionResult,
    part: PartitionResult,
    cost_before: int,
    rounds_before: int,
) -> SPRResult:
    """Lines 4-10 of Algorithm 2: turn a partition into the ranked top-k."""
    telemetry = session.telemetry
    winners = list(part.winners)
    ties = list(part.ties)
    losers = list(part.losers)

    recursed = False
    promoted: tuple[int, ...] = ()
    if len(winners) >= k:
        # Line 10: the winners already contain the answer.  With a
        # sweet-spot reference |W| <= ck with high probability; when low
        # confidence floods W with false winners far beyond that, sorting
        # all of them would cost O(|W|²·B) — re-querying the winners is an
        # order of magnitude cheaper and keeps every guarantee (they are a
        # strict superset of the answer).
        blow_up_at = max(
            math.ceil(3 * config.sweet_spot * k), config.min_items_for_selection
        )
        if len(winners) > blow_up_at:
            telemetry.counter("spr_recursions_total").inc()
            inner = spr_topk(session, winners, k, config)
            cost_after, rounds_after = session.spent()
            return SPRResult(
                topk=inner.topk,
                selection=selection,
                partition_result=part,
                recursed=True,
                cost=cost_after - cost_before,
                rounds=rounds_after - rounds_before,
            )
        candidates = winners
    elif len(winners) + len(ties) >= k:
        # Lines 4-6: fill up with random ties (§5.4 analyses this risk).
        shortfall = k - len(winners)
        pick = session.rng.choice(len(ties), size=shortfall, replace=False)
        promoted = tuple(ties[int(p)] for p in pick)
        candidates = winners + list(promoted)
    else:
        # Lines 7-9: even the ties cannot fill the result — recurse into
        # the losers for the remainder.
        recursed = True
        telemetry.counter("spr_recursions_total").inc()
        shortfall = k - len(winners) - len(ties)
        tail = spr_topk(session, losers, shortfall, config)
        candidates = winners + ties + list(tail.topk)

    with telemetry.span(
        "spr.rank", session=session, items=len(candidates), k=k
    ):
        ranked = reference_sort(session, candidates, reference=part.reference)
    cost_after, rounds_after = session.spent()
    return SPRResult(
        topk=tuple(ranked[:k]),
        selection=selection,
        partition_result=part,
        recursed=recursed,
        cost=cost_after - cost_before,
        rounds=rounds_after - rounds_before,
        promoted_ties=promoted,
    )
