"""Comparison outcomes.

A comparison process ``COMP(o_i, o_j)`` ends in one of three ways: the left
item wins (``o_i ≻ o_j``), the right item wins (``o_i ≺ o_j``), or the pair
is indistinguishable under the per-pair budget (``o_i ∼ o_j``).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Outcome"]


class Outcome(Enum):
    """Ternary verdict of a pairwise comparison."""

    LEFT = 1  #: the left item wins: o_i ≻ o_j
    RIGHT = -1  #: the right item wins: o_i ≺ o_j
    TIE = 0  #: indistinguishable under the budget: o_i ∼ o_j

    @classmethod
    def from_code(cls, code: int | None) -> "Outcome":
        """Map a tester decision code (``+1``/``-1``/``0``/``None``)."""
        if code is None or code == 0:
            return cls.TIE
        return cls.LEFT if code > 0 else cls.RIGHT

    def flipped(self) -> "Outcome":
        """The same verdict seen from the opposite side of the pair."""
        if self is Outcome.LEFT:
            return Outcome.RIGHT
        if self is Outcome.RIGHT:
            return Outcome.LEFT
        return Outcome.TIE

    @property
    def decided(self) -> bool:
        """Whether the comparison separated the pair."""
        return self is not Outcome.TIE
