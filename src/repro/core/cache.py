"""Per-pair judgment bags.

All human feedback is stored and reused (§5.3: "the results of comparisons
are always *reusable*").  The cache keys bags by the unordered pair and
normalizes the sign: the stored values are always ``v(o_a, o_b)`` with
``a < b``, so both orientations of a pair share one bag.

Bags grow by amortized-doubling into numpy buffers, keeping appends O(1)
and reads zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JudgmentCache"]


@dataclass
class _Bag:
    """A growable array of canonical-orientation judgments.

    Alongside the raw values the bag maintains running moments (``Σv`` and
    ``Σv²``), so :meth:`JudgmentCache.moments` answers in O(1) instead of
    re-reducing the whole bag — it is read per winner on every SPR
    reference change and per pair when seeding the Thurstone order.
    """

    buffer: np.ndarray
    size: int
    s1: float = 0.0
    s2: float = 0.0

    @classmethod
    def empty(cls, capacity: int = 32) -> "_Bag":
        return cls(np.empty(capacity, dtype=np.float64), 0)

    def append(self, values: np.ndarray) -> None:
        self.extend_raw(values, float(values.sum()), float(np.square(values).sum()))

    def extend_raw(self, values: np.ndarray, s1_delta: float, s2_delta: float) -> None:
        """Append ``values`` with their moment deltas already reduced.

        The batched apply path computes ``Σv`` / ``Σv²`` for many bags in
        grouped array passes (see :meth:`JudgmentCache.append_rows`);
        ``extend_raw`` lets it hand those in instead of re-reducing per
        bag.  Callers must supply deltas bit-identical to
        ``values.sum()`` / ``np.square(values).sum()``.
        """
        needed = self.size + len(values)
        if needed > len(self.buffer):
            capacity = max(needed, 2 * len(self.buffer))
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self.size] = self.buffer[: self.size]
            self.buffer = grown
        self.buffer[self.size : needed] = values
        self.size = needed
        self.s1 += float(s1_delta)
        self.s2 += float(s2_delta)

    def view(self) -> np.ndarray:
        return self.buffer[: self.size]


#: Shared zero-length bag returned for cache misses in bulk lookups.
_EMPTY_BAG = np.empty(0, dtype=np.float64)


class JudgmentCache:
    """Symmetric store of all judgments collected for each item pair."""

    def __init__(self) -> None:
        self._bags: dict[tuple[int, int], _Bag] = {}
        self._total = 0
        # Batches queued by :meth:`defer_rows`, applied in arrival order by
        # :meth:`_drain` before any read or direct write touches the bags.
        self._pending: list[
            tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]
        ] = []

    @staticmethod
    def _key(i: int, j: int) -> tuple[tuple[int, int], float]:
        """Canonical key and the sign mapping ``v(i, j) -> stored value``."""
        i, j = int(i), int(j)
        if i == j:
            raise ValueError(f"cannot compare item {i} with itself")
        return ((i, j), 1.0) if i < j else ((j, i), -1.0)

    def count(self, i: int, j: int) -> int:
        """Number of judgments stored for the pair ``{i, j}``."""
        if self._pending:
            self._drain()
        key, _ = self._key(i, j)
        bag = self._bags.get(key)
        return bag.size if bag is not None else 0

    def bag(self, i: int, j: int) -> np.ndarray:
        """All stored judgments oriented as ``v(o_i, o_j)`` (copy-free when
        the orientation is canonical)."""
        if self._pending:
            self._drain()
        key, sign = self._key(i, j)
        bag = self._bags.get(key)
        if bag is None:
            return np.empty(0, dtype=np.float64)
        values = bag.view()
        return values if sign > 0 else -values

    def bags_for(
        self, lefts: np.ndarray, rights: np.ndarray
    ) -> "list[np.ndarray]":
        """Oriented judgment views for many pairs in one pass.

        Equivalent to ``[self.bag(i, j) for i, j in zip(lefts, rights)]``
        but pays the drain guard and key canonicalisation once instead of
        per pair — this is what keeps racing-pool construction cheap when
        an experiment builds hundreds of pools against a warm cache.

        Trusted internal path: no self-pairs (the pool validated its
        pairs); misses share one module-level empty array.
        """
        if self._pending:
            self._drain()
        bags = self._bags
        out: list[np.ndarray] = []
        for i, j in zip(lefts.tolist(), rights.tolist()):
            bag = bags.get((i, j) if i < j else (j, i))
            if bag is None:
                out.append(_EMPTY_BAG)
            elif i < j:
                out.append(bag.buffer[: bag.size])
            else:
                out.append(-bag.buffer[: bag.size])
        return out

    def append(self, i: int, j: int, values: np.ndarray) -> None:
        """Store new judgments expressed in the ``v(o_i, o_j)`` orientation."""
        if self._pending:
            self._drain()
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        key, sign = self._key(i, j)
        bag = self._bags.get(key)
        if bag is None:
            bag = _Bag.empty(max(32, len(values)))
            self._bags[key] = bag
        bag.append(values if sign > 0 else -values)
        self._total += len(values)

    def append_rows(
        self,
        lefts: np.ndarray,
        rights: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Store one padded matrix of judgments across many pairs at once.

        Row ``r`` contributes ``values[r, :counts[r]]`` to the bag of
        ``(lefts[r], rights[r])`` — exactly equivalent to calling
        :meth:`append` per row in row order, but the per-bag moments
        (``Σv``, ``Σv²``) are reduced in grouped array passes instead of
        one reduction per pair.  Rows are grouped by their consumed count
        so every row's sum runs over the *same slice shape* numpy's
        pairwise summation would see in the per-row call — the batched
        moments are bit-identical, not merely close (pinned by
        tests/test_cache.py and the apply-parity golden).
        """
        if self._pending:
            self._drain()
        counts_list = (
            counts.tolist() if isinstance(counts, np.ndarray) else list(counts)
        )
        rows = len(counts_list)
        if rows == 0:
            return
        values = np.asarray(values, dtype=np.float64)
        if rows <= 8:
            # Typical late rounds race a handful of survivors; per-row
            # scalar reductions (exactly :meth:`_Bag.append`'s math) beat
            # the batch machinery's fixed dispatch cost there.
            s1_list = s2_list = None
        else:
            squares = np.square(values)
            first = counts_list[0]
            if all(count == first for count in counts_list):
                # The common wide round: every pair consumed the full
                # step, so one sliced reduction covers all rows with no
                # gather copies.
                if first == 0:
                    return
                s1 = np.sum(values[:, :first], axis=1)
                s2 = np.sum(squares[:, :first], axis=1)
            else:
                counts = np.asarray(counts_list, dtype=np.int64)
                s1 = np.zeros(rows, dtype=np.float64)
                s2 = np.zeros(rows, dtype=np.float64)
                for width in np.unique(counts):
                    if width == 0:
                        continue
                    group = np.flatnonzero(counts == width)
                    s1[group] = np.sum(values[group, :width], axis=1)
                    s2[group] = np.sum(squares[group, :width], axis=1)
            s1_list, s2_list = s1.tolist(), s2.tolist()

        bags = self._bags
        total = 0
        for row, (i, j, width) in enumerate(
            zip(lefts.tolist(), rights.tolist(), counts_list)
        ):
            if width == 0:
                continue
            if i == j:
                raise ValueError(f"cannot compare item {i} with itself")
            key, flip = ((i, j), False) if i < j else ((j, i), True)
            bag = bags.get(key)
            if bag is None:
                bag = _Bag.empty(max(32, width))
                bags[key] = bag
            chunk = values[row, :width]
            if s1_list is None:
                row_s1 = float(chunk.sum())
                row_s2 = float(np.square(chunk).sum())
            else:
                row_s1 = s1_list[row]
                row_s2 = s2_list[row]
            if flip:
                # Negation is exact, and -Σv == Σ(-v) bit for bit.
                bag.extend_raw(-chunk, -row_s1, row_s2)
            else:
                bag.extend_raw(chunk, row_s1, row_s2)
            total += width
        self._total += total

    def defer_rows(
        self,
        lefts: np.ndarray,
        rights: np.ndarray,
        values: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """Queue one :meth:`append_rows`-shaped batch for a later bulk apply.

        The racing pool's per-round commit hands its consumed draws here:
        the round pays one list append, and the accumulated batches are
        folded into the bags the moment anything next looks at the cache
        (every read and direct-write entry point drains first, so no
        caller can observe a stale bag).  Deferral only moves the work in
        time — batches are applied in arrival order with per-chunk moment
        deltas bit-identical to an immediate :meth:`append` per row.

        Trusted internal path: rows are assumed well-formed (float64
        matrix, ``counts[r] <= values.shape[1]``, no self-pairs — the
        pool validated its pairs at construction).
        """
        self._pending.append((lefts, rights, values, counts))

    def settle(self) -> None:
        """Fold every deferred batch into the bags right now.

        Reads drain automatically; this is for callers about to bypass
        the public read API (serializers, tests poking at internals).
        """
        if self._pending:
            self._drain()

    def _drain(self) -> None:
        """Apply the deferred batches in arrival order.

        The moment deltas of every row across *all* batches are reduced
        first, grouped by consumed width so each stacked ``np.sum`` sees
        the same reduction length the per-row call would — bit-identical
        sums, a few array passes total.  The bag commits then replay
        chronologically with operator-only index arithmetic (the loop body
        is :meth:`_Bag.extend_raw` inlined), so bag contents, sizes and
        running moments match an eager row-by-row append exactly.
        """
        pending = self._pending
        self._pending = []
        jobs: list[tuple[int, int, int, np.ndarray]] = []
        by_width: dict[int, list[int]] = {}
        for lefts, rights, values, counts in pending:
            lefts_list = lefts.tolist()
            rights_list = rights.tolist()
            for row, width in enumerate(counts.tolist()):
                if width == 0:
                    continue
                group = by_width.get(width)
                if group is None:
                    group = by_width[width] = []
                group.append(len(jobs))
                jobs.append((lefts_list[row], rights_list[row], width, values[row]))
        if not jobs:
            return
        s1_of = [0.0] * len(jobs)
        s2_of = [0.0] * len(jobs)
        for width, members in by_width.items():
            block = np.stack([jobs[pos][3][:width] for pos in members])
            s1 = np.sum(block, axis=1)
            s2 = np.sum(np.square(block), axis=1)
            for pos, s1_val, s2_val in zip(members, s1.tolist(), s2.tolist()):
                s1_of[pos] = s1_val
                s2_of[pos] = s2_val

        bags = self._bags
        total = 0
        for pos, (i, j, width, row) in enumerate(jobs):
            if i == j:
                raise ValueError(f"cannot compare item {i} with itself")
            if i < j:
                key = (i, j)
                flip = False
            else:
                key = (j, i)
                flip = True
            bag = bags[key] if key in bags else None
            if bag is None:
                bag = _Bag.empty(32 if width < 32 else width)
                bags[key] = bag
            chunk = row[:width]
            size = bag.size
            needed = size + width
            buffer = bag.buffer
            if needed > buffer.shape[0]:
                doubled = 2 * buffer.shape[0]
                grown = np.empty(
                    needed if needed > doubled else doubled, dtype=np.float64
                )
                grown[:size] = buffer[:size]
                bag.buffer = buffer = grown
            if flip:
                # Negation is exact, and a -= x is a += (-x) bit for bit.
                buffer[size:needed] = -chunk
                bag.s1 -= s1_of[pos]
            else:
                buffer[size:needed] = chunk
                bag.s1 += s1_of[pos]
            bag.s2 += s2_of[pos]
            bag.size = needed
            total += width
        self._total += total

    def moments(self, i: int, j: int) -> tuple[int, float, float]:
        """``(n, mean, variance)`` of the stored bag for ``(i, j)``.

        Variance is the unbiased sample variance (NaN below 2 samples).
        Used by reference-based sorting to seed the Thurstone order.  Reads
        the bag's running moments, so the call is O(1) regardless of bag
        size; the sign of the mean follows the requested orientation.
        """
        if self._pending:
            self._drain()
        key, sign = self._key(i, j)
        bag = self._bags.get(key)
        if bag is None or bag.size == 0:
            return 0, float("nan"), float("nan")
        n = bag.size
        mean = bag.s1 / n
        if n < 2:
            return n, sign * mean, float("nan")
        var = max((bag.s2 - n * mean * mean) / (n - 1), 0.0)
        return n, sign * float(mean), float(var)

    def clear(self) -> None:
        """Drop every bag (deferred batches included — they would have
        been stored and then dropped, so cancelling them is equivalent)."""
        self._pending.clear()
        self._bags.clear()
        self._total = 0

    @property
    def total_samples(self) -> int:
        """Total judgments stored across all pairs."""
        if self._pending:
            self._drain()
        return self._total

    @property
    def pair_count(self) -> int:
        """Number of pairs with at least one stored judgment."""
        if self._pending:
            self._drain()
        return len(self._bags)

    def pairs(self) -> list[tuple[int, int]]:
        """All canonical pairs with stored judgments."""
        if self._pending:
            self._drain()
        return list(self._bags)
