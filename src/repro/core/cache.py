"""Per-pair judgment bags.

All human feedback is stored and reused (§5.3: "the results of comparisons
are always *reusable*").  The cache keys bags by the unordered pair and
normalizes the sign: the stored values are always ``v(o_a, o_b)`` with
``a < b``, so both orientations of a pair share one bag.

Bags grow by amortized-doubling into numpy buffers, keeping appends O(1)
and reads zero-copy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JudgmentCache"]


@dataclass
class _Bag:
    """A growable array of canonical-orientation judgments.

    Alongside the raw values the bag maintains running moments (``Σv`` and
    ``Σv²``), so :meth:`JudgmentCache.moments` answers in O(1) instead of
    re-reducing the whole bag — it is read per winner on every SPR
    reference change and per pair when seeding the Thurstone order.
    """

    buffer: np.ndarray
    size: int
    s1: float = 0.0
    s2: float = 0.0

    @classmethod
    def empty(cls, capacity: int = 32) -> "_Bag":
        return cls(np.empty(capacity, dtype=np.float64), 0)

    def append(self, values: np.ndarray) -> None:
        needed = self.size + len(values)
        if needed > len(self.buffer):
            capacity = max(needed, 2 * len(self.buffer))
            grown = np.empty(capacity, dtype=np.float64)
            grown[: self.size] = self.buffer[: self.size]
            self.buffer = grown
        self.buffer[self.size : needed] = values
        self.size = needed
        self.s1 += float(values.sum())
        self.s2 += float(np.square(values).sum())

    def view(self) -> np.ndarray:
        return self.buffer[: self.size]


class JudgmentCache:
    """Symmetric store of all judgments collected for each item pair."""

    def __init__(self) -> None:
        self._bags: dict[tuple[int, int], _Bag] = {}
        self._total = 0

    @staticmethod
    def _key(i: int, j: int) -> tuple[tuple[int, int], float]:
        """Canonical key and the sign mapping ``v(i, j) -> stored value``."""
        i, j = int(i), int(j)
        if i == j:
            raise ValueError(f"cannot compare item {i} with itself")
        return ((i, j), 1.0) if i < j else ((j, i), -1.0)

    def count(self, i: int, j: int) -> int:
        """Number of judgments stored for the pair ``{i, j}``."""
        key, _ = self._key(i, j)
        bag = self._bags.get(key)
        return bag.size if bag is not None else 0

    def bag(self, i: int, j: int) -> np.ndarray:
        """All stored judgments oriented as ``v(o_i, o_j)`` (copy-free when
        the orientation is canonical)."""
        key, sign = self._key(i, j)
        bag = self._bags.get(key)
        if bag is None:
            return np.empty(0, dtype=np.float64)
        values = bag.view()
        return values if sign > 0 else -values

    def append(self, i: int, j: int, values: np.ndarray) -> None:
        """Store new judgments expressed in the ``v(o_i, o_j)`` orientation."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        key, sign = self._key(i, j)
        bag = self._bags.get(key)
        if bag is None:
            bag = _Bag.empty(max(32, len(values)))
            self._bags[key] = bag
        bag.append(values if sign > 0 else -values)
        self._total += len(values)

    def moments(self, i: int, j: int) -> tuple[int, float, float]:
        """``(n, mean, variance)`` of the stored bag for ``(i, j)``.

        Variance is the unbiased sample variance (NaN below 2 samples).
        Used by reference-based sorting to seed the Thurstone order.  Reads
        the bag's running moments, so the call is O(1) regardless of bag
        size; the sign of the mean follows the requested orientation.
        """
        key, sign = self._key(i, j)
        bag = self._bags.get(key)
        if bag is None or bag.size == 0:
            return 0, float("nan"), float("nan")
        n = bag.size
        mean = bag.s1 / n
        if n < 2:
            return n, sign * mean, float("nan")
        var = max((bag.s2 - n * mean * mean) / (n - 1), 0.0)
        return n, sign * float(mean), float(var)

    def clear(self) -> None:
        """Drop every bag."""
        self._bags.clear()
        self._total = 0

    @property
    def total_samples(self) -> int:
        """Total judgments stored across all pairs."""
        return self._total

    @property
    def pair_count(self) -> int:
        """Number of pairs with at least one stored judgment."""
        return len(self._bags)

    def pairs(self) -> list[tuple[int, int]]:
        """All canonical pairs with stored judgments."""
        return list(self._bags)
