"""Hoeffding sequential tester for bounded (e.g. binary ±1) judgments.

This is the distribution-free interval the paper evaluates pairwise
*binary* judgments with (§3.2, Appendix D).  For samples supported on an
interval of width ``R``, Hoeffding's inequality gives the ``1 - α``
confidence half-width ``R · sqrt(ln(2/α) / (2n))``; for binary ±1 votes
(``R = 2``) the implied stopping sample size matches Equation (3),
``n_b = (2/μ̃²)·ln(2/α)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import SequentialTester

__all__ = ["HoeffdingTester"]


@dataclass
class HoeffdingTester(SequentialTester):
    """Sequential Hoeffding test of ``μ = 0`` for samples of bounded range."""

    value_range: float = 2.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.value_range <= 0:
            raise ValueError(f"value_range must be > 0, got {self.value_range}")

    def decision_codes(
        self, n: np.ndarray, mean: np.ndarray, s2: np.ndarray
    ) -> np.ndarray:
        n = np.asarray(n, dtype=np.float64)
        mean = np.asarray(mean, dtype=np.float64)
        half = self.value_range * np.sqrt(math.log(2.0 / self.alpha) / (2.0 * n))
        codes = np.zeros(mean.shape, dtype=np.int8)
        codes[mean - half > 0.0] = 1
        codes[mean + half < 0.0] = -1
        return codes
