"""Stein's sequential tester — Algorithm 5 (Appendix E) of the paper.

Stein's two-stage estimation answers "how many samples are needed so that
the ``1 - α`` interval has half-width ``L``?" with
``n ≥ S²·L⁻²·t²_{1-α/2, df}``.  The paper turns this progressive: after
every sample set ``L = |μ̄| − ε`` (the largest half-width whose interval
still excludes 0) and stop as soon as the current sample count satisfies
Stein's requirement.

A reproduction note, verified by ``tests/test_estimators.py``: reading
Algorithm 5 with the *current* sample deviation ``S_w`` and ``w−1``
degrees of freedom makes its stopping condition algebraically identical to
Algorithm 1's (both reduce to ``w ≥ t²S²/μ̄²``), so the two testers would
stop at the same sample on every stream.  What makes Stein's method a
distinct tool — the property his 1945 paper is about — is that the
variance estimate and its degrees of freedom are *frozen at the first
stage* (here: the cold-start sample of size ``I``).  This implementation
follows that two-stage reading: ``S²`` and ``df = I − 1`` come from the
first ``I`` samples, only the mean keeps updating.  Workloads therefore
track Student's closely but not identically, exactly as in the paper's
Table 3 / Figure 17.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...stats.tdist import t_quantiles
from .base import MomentState, SequentialTester, sample_variance

__all__ = ["SteinTester"]


@dataclass
class SteinTester(SequentialTester):
    """Progressive two-stage Stein estimation of ``μ = 0``.

    The first stage is the cold-start sample (``min_workload`` draws): it
    fixes the variance estimate and the t quantile's degrees of freedom.
    The second stage extends the mean one sample at a time and stops as
    soon as ``n ≥ S²_stage · t²_{α/2, I-1} / (|μ̄_n| − ε)²``.
    """

    epsilon: float = 1e-9
    #: First-stage variance (NaN until the stage completes).
    stage_variance: float = field(default=float("nan"), init=False)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epsilon <= 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon}")

    def reset(self) -> None:
        super().reset()
        self.stage_variance = float("nan")

    @property
    def stage_df(self) -> int:
        """Degrees of freedom of the frozen first-stage estimate."""
        return self.min_workload - 1

    def _capture_if_ready(self) -> None:
        """Freeze the stage variance once the first stage is complete.

        The push-based paths cannot pinpoint the exact crossing sample, so
        they freeze at the first observation point at or past the stage —
        the natural reading when samples arrive in opaque batches.
        """
        if np.isnan(self.stage_variance) and self.state.n >= self.min_workload:
            self.stage_variance = float(self.state.variance)

    def push(self, value: float) -> None:
        super().push(value)
        self._capture_if_ready()

    def push_many(self, values: np.ndarray) -> None:
        super().push_many(values)
        self._capture_if_ready()

    @staticmethod
    def frozen_codes(
        n: np.ndarray,
        mean: np.ndarray,
        stage_variance: np.ndarray | float,
        stage_df: int,
        alpha: float,
        epsilon: float,
    ) -> np.ndarray:
        """Vectorized two-stage stopping rule over cumulative moments.

        ``stage_variance`` broadcasts against ``n``/``mean``; entries whose
        stage variance is still NaN (first stage incomplete) never decide.
        """
        n = np.asarray(n, dtype=np.float64)
        mean = np.asarray(mean, dtype=np.float64)
        tq = t_quantiles(alpha, max(stage_df, 1))[stage_df]
        half_width = np.abs(mean) - epsilon
        with np.errstate(invalid="ignore", divide="ignore"):
            required = (
                np.asarray(stage_variance, dtype=np.float64)
                * tq**2
                / np.square(half_width)
            )
        codes = np.zeros(mean.shape, dtype=np.int8)
        decided = (half_width > 0.0) & np.isfinite(required) & (required <= n)
        codes[decided & (mean > 0.0)] = 1
        codes[decided & (mean < 0.0)] = -1
        return codes

    def decision_codes(
        self, n: np.ndarray, mean: np.ndarray, s2: np.ndarray
    ) -> np.ndarray:
        """Elementwise rule using this tester's frozen stage variance.

        Only meaningful for cumulative prefixes of *this* tester's stream —
        pools racing many pairs must track per-pair stage variances and
        call :meth:`frozen_codes` directly.
        """
        return self.frozen_codes(
            n,
            mean,
            self.stage_variance,
            self.stage_df,
            self.alpha,
            self.epsilon,
        )

    def scan(self, values: np.ndarray) -> tuple[int, int | None]:
        """Sequential scan with first-stage variance capture."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0, self.decision()
        n = self.state.n + np.arange(1, values.size + 1)
        s1 = self.state.s1 + np.cumsum(values)
        s2 = self.state.s2 + np.cumsum(np.square(values))

        if np.isnan(self.stage_variance):
            crossing = np.flatnonzero(n == self.min_workload)
            if crossing.size:
                at = int(crossing[0])
                var = sample_variance(
                    np.asarray([n[at]]),
                    np.asarray([s1[at] / n[at]]),
                    np.asarray([s2[at]]),
                )[0]
                self.stage_variance = float(var)

        codes = self.decision_codes(n, s1 / n, s2)
        codes = np.where(n >= self.min_workload, codes, 0)
        hits = np.flatnonzero(codes)
        if hits.size == 0:
            self.state.push_many(values)
            return values.size, None
        stop = int(hits[0])
        self.state = MomentState(int(n[stop]), float(s1[stop]), float(s2[stop]))
        return stop + 1, int(codes[stop])
