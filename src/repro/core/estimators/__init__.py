"""Sequential confidence testers used by the comparison process.

Four testers are provided; the first three match the paper:

* :class:`StudentTester` — Algorithm 1, Student's t confidence interval.
* :class:`SteinTester` — Algorithm 5, Stein's two-stage estimation made
  progressive.
* :class:`HoeffdingTester` — the distribution-free interval used for
  pairwise *binary* judgments (§3.2, Appendix D).
* :class:`PACTester` — an anytime PAC ``(ε, δ)`` rule (Ren, Liu &
  Shroff, PAPERS.md) that tolerates an ``ε``-approximate winner and so
  terminates on near-ties the classical rules sample forever on.

All testers share the :class:`SequentialTester` interface: push samples,
ask for a ternary :meth:`~SequentialTester.decision`.  Each also exposes a
vectorized ``decision_codes`` classmethod over cumulative-moment arrays so
that racing pools can evaluate thousands of stopping rules per round
without Python-level loops.
"""

from ...config import ComparisonConfig
from .base import MomentState, SequentialTester
from .hoeffding import HoeffdingTester
from .pac import PACTester
from .stein import SteinTester
from .student import StudentTester

__all__ = [
    "MomentState",
    "SequentialTester",
    "StudentTester",
    "SteinTester",
    "HoeffdingTester",
    "PACTester",
    "make_tester",
    "TESTER_CLASSES",
]

TESTER_CLASSES = {
    "student": StudentTester,
    "stein": SteinTester,
    "hoeffding": HoeffdingTester,
    "pac": PACTester,
}


def make_tester(
    config: ComparisonConfig, value_range: float | None = None
) -> SequentialTester:
    """Instantiate the tester named by ``config.estimator``.

    ``value_range`` (the width of the sample support) is required by the
    Hoeffding tester and ignored by the parametric ones.
    """
    cls = TESTER_CLASSES[config.estimator]
    if cls is HoeffdingTester:
        if value_range is None:
            raise ValueError(
                "the hoeffding estimator needs the sample value_range "
                "(e.g. 2.0 for binary ±1 judgments)"
            )
        return HoeffdingTester(
            alpha=config.alpha,
            min_workload=config.min_workload,
            value_range=value_range,
        )
    if cls is SteinTester:
        return SteinTester(
            alpha=config.alpha,
            min_workload=config.min_workload,
            epsilon=config.stein_epsilon,
        )
    if cls is PACTester:
        return PACTester(
            alpha=config.alpha,
            min_workload=config.min_workload,
            epsilon=config.pac_epsilon,
        )
    return StudentTester(alpha=config.alpha, min_workload=config.min_workload)
