"""Student's t sequential tester — Algorithm 1 of the paper.

After each sample the ``1 - α`` confidence interval

``[μ̄ − t_{α/2, n-1}·S/√n,  μ̄ + t_{α/2, n-1}·S/√n]``

is checked against the neutral value 0; the comparison concludes as soon as
the interval excludes it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...stats.tdist import t_quantiles
from .base import SequentialTester, sample_variance

__all__ = ["StudentTester"]


@dataclass
class StudentTester(SequentialTester):
    """Sequential two-sided t test of ``μ = 0`` at confidence ``1 - α``."""

    def decision_codes(
        self, n: np.ndarray, mean: np.ndarray, s2: np.ndarray
    ) -> np.ndarray:
        n = np.asarray(n)
        mean = np.asarray(mean, dtype=np.float64)
        var = sample_variance(n, mean, np.asarray(s2, dtype=np.float64))
        max_df = int(np.max(n)) - 1 if n.size else 1
        tq = t_quantiles(self.alpha, max(max_df, 1))
        df = np.clip(n - 1, 0, len(tq) - 1).astype(np.intp)
        with np.errstate(invalid="ignore", divide="ignore"):
            margin = tq[df] * np.sqrt(var / n)
        codes = np.zeros(mean.shape, dtype=np.int8)
        valid = (n >= 2) & np.isfinite(margin)
        codes[valid & (mean - margin > 0.0)] = 1
        codes[valid & (mean + margin < 0.0)] = -1
        return codes

    def interval(self) -> tuple[float, float]:
        """Current confidence interval for the preference mean.

        Mostly useful for inspection and testing; requires >= 2 samples.
        """
        st = self.state
        if st.n < 2:
            raise ValueError("need at least 2 samples for an interval")
        tq = t_quantiles(self.alpha, st.n - 1)[st.n - 1]
        margin = tq * st.std / np.sqrt(st.n)
        return st.mean - margin, st.mean + margin
