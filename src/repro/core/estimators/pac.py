"""PAC ``(ε, δ)`` sequential tester (anytime-valid LIL confidence bound).

Ren, Liu & Shroff's PAC ranking results (PAPERS.md) replace the paper's
per-comparison ``1 - α`` guarantee with an *approximation* guarantee:
the declared winner of a pairwise duel is allowed to be worse than the
loser, but by at most ``ε``, with probability at least ``1 - δ``.  The
practical payoff is termination on near-ties: a comparison whose true
gap is below ``ε`` stops once the confidence radius shrinks under ``ε``
instead of sampling forever (or until the budget kills it).

The confidence sequence is a finite-LIL bound: at sample count ``n`` the
radius is

    margin(n) = sqrt(2 · σ̂² · ln((π²/(3δ)) · log₂(2n)²) / n)

which holds *simultaneously over all n* with probability ``1 - δ`` (a
union bound over doubling epochs — the standard anytime trick from the
lil'UCB / PAC best-arm literature).  Anytime validity is what makes the
rule safe to consult after every batch, exactly how racing pools use
``decision_codes``.

Decision rule (sign convention shared with all testers: ``μ > 0`` means
the left item leads):

* conclude ``+1`` when ``μ̂ > 0`` and ``μ̂ - margin > -ε`` — left wins,
  and even in the worst case of the interval the right item leads by
  less than ``ε``;
* conclude ``-1`` symmetrically;
* otherwise keep sampling.

With ``ε = 0`` this degenerates to an anytime-valid sign test (no
near-tie escape hatch, like the classical testers).  ``δ`` is carried in
the shared ``alpha`` field so configuration plumbing is uniform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .base import SequentialTester, sample_variance

__all__ = ["PACTester"]


@dataclass
class PACTester(SequentialTester):
    """Anytime ``(ε, δ)`` test of ``μ = 0`` with an ε-tolerant stop.

    ``alpha`` plays the role of ``δ``; ``epsilon`` is the allowed
    selection error.  ``epsilon = 0`` gives an exact anytime sign test.
    """

    epsilon: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.epsilon < 0:
            raise ValueError(f"epsilon must be >= 0, got {self.epsilon}")

    def decision_codes(
        self, n: np.ndarray, mean: np.ndarray, s2: np.ndarray
    ) -> np.ndarray:
        n = np.asarray(n, dtype=np.float64)
        mean = np.asarray(mean, dtype=np.float64)
        var = sample_variance(n, mean, np.asarray(s2, dtype=np.float64))
        with np.errstate(invalid="ignore", divide="ignore"):
            log_term = np.log(
                (math.pi * math.pi / (3.0 * self.alpha))
                * np.square(np.log2(2.0 * n))
            )
            margin = np.sqrt(2.0 * var * log_term / n)
        codes = np.zeros(mean.shape, dtype=np.int8)
        valid = (n >= 2) & np.isfinite(margin)
        codes[valid & (mean > 0.0) & (mean - margin > -self.epsilon)] = 1
        codes[valid & (mean < 0.0) & (mean + margin < self.epsilon)] = -1
        return codes
