"""Shared state and interface for sequential confidence testers."""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

import numpy as np

__all__ = ["MomentState", "SequentialTester", "sample_variance"]


def sample_variance(n: np.ndarray, mean: np.ndarray, s2: np.ndarray) -> np.ndarray:
    """Unbiased sample variance from cumulative moments, vectorized.

    ``n`` sample counts, ``mean`` sample means, ``s2`` sums of squares.
    Entries with ``n < 2`` come back NaN; tiny negative values from
    floating-point cancellation are clipped to 0.
    """
    n = np.asarray(n, dtype=np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        var = (s2 - n * mean * mean) / (n - 1.0)
    var = np.where(n >= 2, np.maximum(var, 0.0), np.nan)
    return var


@dataclass
class MomentState:
    """Running first/second moments of a sample stream.

    Keeps ``n``, ``Σv`` and ``Σv²`` so that mean and unbiased variance are
    O(1) to read and O(1) to update per sample — the representation every
    stopping rule in the paper needs and nothing more.
    """

    n: int = 0
    s1: float = 0.0
    s2: float = 0.0

    def push(self, value: float) -> None:
        """Account one sample."""
        self.n += 1
        self.s1 += value
        self.s2 += value * value

    def push_many(self, values: np.ndarray) -> None:
        """Account a batch of samples."""
        values = np.asarray(values, dtype=np.float64)
        self.n += values.size
        self.s1 += float(values.sum())
        self.s2 += float(np.square(values).sum())

    @property
    def mean(self) -> float:
        """Sample mean (NaN when empty)."""
        return self.s1 / self.n if self.n else math.nan

    @property
    def variance(self) -> float:
        """Unbiased sample variance (NaN below 2 samples)."""
        if self.n < 2:
            return math.nan
        var = (self.s2 - self.n * self.mean * self.mean) / (self.n - 1)
        return max(var, 0.0)

    @property
    def std(self) -> float:
        """Unbiased sample standard deviation (NaN below 2 samples)."""
        var = self.variance
        return math.sqrt(var) if not math.isnan(var) else math.nan

    def copy(self) -> "MomentState":
        return MomentState(self.n, self.s1, self.s2)


@dataclass
class SequentialTester(ABC):
    """A progressive stopping rule over a stream of preference samples.

    Subclasses implement :meth:`decision_codes`, a *vectorized* evaluation
    of the stopping rule over arrays of cumulative moments.  The streaming
    methods (:meth:`push` / :meth:`decision`) and the chunked
    :meth:`scan` are derived from it, so scalar and vectorized paths can
    never disagree.

    Decision encoding: ``+1`` concludes the left item wins (``μ > 0``),
    ``-1`` the right item wins (``μ < 0``), ``0`` / ``None`` undecided.
    """

    alpha: float
    min_workload: int
    state: MomentState = field(default_factory=MomentState, init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.min_workload < 2:
            raise ValueError(f"min_workload must be >= 2, got {self.min_workload}")

    # ------------------------------------------------------------------
    # vectorized core (subclass responsibility)
    # ------------------------------------------------------------------
    @abstractmethod
    def decision_codes(
        self, n: np.ndarray, mean: np.ndarray, s2: np.ndarray
    ) -> np.ndarray:
        """Evaluate the stopping rule elementwise over cumulative moments.

        Parameters are aligned arrays of sample counts, sample means and
        sums of squares.  Returns an int8 array of codes in ``{-1, 0, +1}``.
        Implementations must not apply the ``min_workload`` gate — the base
        class handles it uniformly.
        """

    # ------------------------------------------------------------------
    # derived streaming interface
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Forget all samples."""
        self.state = MomentState()

    def push(self, value: float) -> None:
        """Feed one sample."""
        self.state.push(value)

    def push_many(self, values: np.ndarray) -> None:
        """Feed a batch of samples without consulting the stopping rule."""
        self.state.push_many(values)

    def decision(self) -> int | None:
        """Current verdict: ``+1``, ``-1`` or ``None`` (keep sampling).

        The rule is gated on the cold-start minimum workload ``I``.
        """
        if self.state.n < self.min_workload:
            return None
        code = int(
            self.decision_codes(
                np.asarray([self.state.n]),
                np.asarray([self.state.mean]),
                np.asarray([self.state.s2]),
            )[0]
        )
        return code if code else None

    def scan(self, values: np.ndarray) -> tuple[int, int | None]:
        """Feed ``values`` one at a time, stopping at the first verdict.

        Returns ``(consumed, decision)`` where ``consumed`` is how many of
        ``values`` were actually used; the tester state advances by exactly
        those samples, reproducing the strictly sequential Algorithm 1/5
        semantics at vectorized speed.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return 0, self.decision()
        n = self.state.n + np.arange(1, values.size + 1)
        s1 = self.state.s1 + np.cumsum(values)
        s2 = self.state.s2 + np.cumsum(np.square(values))
        codes = self.decision_codes(n, s1 / n, s2)
        codes = np.where(n >= self.min_workload, codes, 0)
        hits = np.flatnonzero(codes)
        if hits.size == 0:
            self.state.push_many(values)
            return values.size, None
        stop = int(hits[0])
        self.state = MomentState(int(n[stop]), float(s1[stop]), float(s2[stop]))
        return stop + 1, int(codes[stop])

    # convenience ------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of samples consumed so far."""
        return self.state.n
