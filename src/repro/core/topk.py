"""Partial-selection top-k: ``argpartition`` with full-sort semantics.

Every "take the k best by score" site in the library used
``np.argsort(-values, kind="stable")[:k]`` — an O(N log N) full sort for
an O(N) selection problem.  :func:`top_k_indices` returns the *identical*
index sequence via ``np.argpartition`` + an O(k log k) ordering of the
survivors, which is the textbook selection idiom for top-k queries over
large score vectors.

The tricky part is exactness, not speed: ``argpartition`` breaks ties at
the k-boundary arbitrarily, while the stable full sort admits the
*lowest-indexed* holders of the boundary value.  The implementation
therefore re-derives the boundary membership explicitly, so callers can
swap a full sort for this function without perturbing a single pinned
trace.
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices"]


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, in descending-value order.

    Bit-for-bit equivalent to ``np.argsort(-values, kind="stable")[:k]``:
    descending by value, ties broken by ascending index, including at the
    k-boundary.  ``k`` is clamped to ``[0, len(values)]``.  NaN entries
    sort last (as the full sort does) via an explicit full-sort fallback —
    correctness over speed on that rare path.
    """
    values = np.asarray(values)
    n = values.size
    k = max(0, min(int(k), n))
    if k == 0:
        return np.empty(0, dtype=np.intp)
    if k >= n or (values.dtype.kind == "f" and np.isnan(values).any()):
        return np.argsort(-values, kind="stable")[:k].astype(np.intp, copy=False)

    # Unordered top-k: everything left of the partition point is >= the
    # boundary value (ties at the boundary chosen arbitrarily).
    part = np.argpartition(-values, k - 1)[:k]
    threshold = values[part].min()
    above = np.flatnonzero(values > threshold)
    # flatnonzero yields ascending indices, so truncating keeps exactly
    # the lowest-indexed boundary holders — the stable sort's choice.
    at_threshold = np.flatnonzero(values == threshold)[: k - above.size]
    cand = np.concatenate([above, at_threshold])
    # Order survivors: value descending, index ascending (lexsort keys
    # are applied last-first).
    order = np.lexsort((cand, -values[cand]))
    return cand[order].astype(np.intp, copy=False)
