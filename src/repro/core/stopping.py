"""Pluggable stopping rules for posterior-based ranking queries.

The Bayesian Decision Process ranker (:mod:`repro.algorithms.bdp`) keeps
one Gamma-shape parameter per item; at any point the posterior
probability that item ``j`` outranks item ``i`` is a regularized
incomplete beta evaluated at ``1/2`` (see :func:`pair_error`).  A
*stopping rule* looks at the current shape vector and decides whether
the top-k identified so far is trustworthy enough to return.

Two guarantees are offered, mirroring the two comparison-level testers:

* :class:`ConfidenceStopping` — the paper's per-comparison flavour: every
  member of the returned top-k beats the strongest excluded rival with
  posterior probability at least ``1 - α``.
* :class:`PACStopping` — the PAC ``(ε, δ)`` flavour (Ren, Liu & Shroff,
  PAPERS.md): with posterior probability at least ``1 - δ``, no excluded
  item beats a returned one by a relative margin exceeding ``ε`` (a
  union bound over the k boundary events).  Near-ties inside the
  tolerance stop early instead of being sampled to the budget cap.

Both rules are frozen dataclasses so they ride inside experiment
``RunSpec`` objects across process boundaries, and both round-trip
through plain JSON documents (:meth:`to_document` /
:func:`stopping_from_document`) so a checkpointed BDP query resumes
under the exact stopping rule it started with.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np
from scipy.special import betainc

from ..errors import ConfigError
from .topk import top_k_indices

__all__ = [
    "ConfidenceStopping",
    "PACStopping",
    "RankingStopping",
    "pair_error",
    "stopping_from_document",
]


def pair_error(shape_i: np.ndarray, shape_j: np.ndarray) -> np.ndarray:
    """Posterior probability that item ``j`` outranks item ``i``.

    With independent latent scores ``θ_i ~ Gamma(a_i, 1)`` the ratio
    ``θ_i / (θ_i + θ_j)`` is Beta(``a_i``, ``a_j``), so

        P(θ_i < θ_j) = I_{1/2}(a_i, a_j)

    (the regularized incomplete beta at ``1/2``).  When ``a_i > a_j``
    this is the probability that ranking ``i`` above ``j`` is *wrong* —
    strictly below ``1/2`` and shrinking as evidence accumulates.
    Vectorized over aligned arrays; broadcasts like the inputs.
    """
    return betainc(
        np.asarray(shape_i, dtype=np.float64),
        np.asarray(shape_j, dtype=np.float64),
        0.5,
    )


def _split_boundary(shapes: np.ndarray, k: int) -> tuple[np.ndarray, float] | None:
    """Top-k member shapes and the strongest excluded rival's shape.

    Returns ``None`` when there is no excluded rival (``k >= n``), in
    which case any stopping rule is vacuously satisfied.
    """
    shapes = np.asarray(shapes, dtype=np.float64)
    if k >= shapes.size:
        return None
    top = top_k_indices(shapes, k)
    mask = np.ones(shapes.size, dtype=bool)
    mask[top] = False
    return shapes[top], float(shapes[mask].max())


@dataclass(frozen=True)
class RankingStopping(ABC):
    """Decides when a posterior shape vector supports returning a top-k."""

    @abstractmethod
    def satisfied(self, shapes: np.ndarray, k: int) -> bool:
        """Whether the current posterior justifies stopping."""

    @abstractmethod
    def to_document(self) -> dict:
        """JSON-serializable description, inverted by
        :func:`stopping_from_document`."""


@dataclass(frozen=True)
class ConfidenceStopping(RankingStopping):
    """Stop when every returned item beats the strongest excluded rival
    with posterior probability at least ``1 - alpha``."""

    alpha: float

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")

    def satisfied(self, shapes: np.ndarray, k: int) -> bool:
        boundary = _split_boundary(shapes, k)
        if boundary is None:
            return True
        top, rival = boundary
        return float(pair_error(top, rival).max()) <= self.alpha

    def to_document(self) -> dict:
        return {"kind": "confidence", "alpha": self.alpha}


@dataclass(frozen=True)
class PACStopping(RankingStopping):
    """Stop when, with posterior probability ``>= 1 - delta``, no excluded
    item beats a returned one by a relative margin exceeding ``epsilon``.

    The boundary event for member ``t`` vs the strongest rival ``r`` is
    ``θ_t / (θ_t + θ_r) < 1/2 - ε`` — the rival not merely winning but
    winning *beyond the tolerance*; its posterior probability is the
    incomplete beta at ``1/2 - ε``.  Summing over the k members union-
    bounds the total failure probability by ``delta``.  ``epsilon = 0``
    recovers a (union-bounded) exact rule; larger ``epsilon`` lets
    posterior near-ties at the boundary stop early.
    """

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon < 0.5:
            raise ConfigError(f"epsilon must be in [0, 0.5), got {self.epsilon}")
        if not 0.0 < self.delta < 1.0:
            raise ConfigError(f"delta must be in (0, 1), got {self.delta}")

    def satisfied(self, shapes: np.ndarray, k: int) -> bool:
        boundary = _split_boundary(shapes, k)
        if boundary is None:
            return True
        top, rival = boundary
        tails = betainc(top, np.full_like(top, rival), 0.5 - self.epsilon)
        return float(tails.sum()) <= self.delta

    def to_document(self) -> dict:
        return {"kind": "pac", "epsilon": self.epsilon, "delta": self.delta}


def stopping_from_document(document: dict) -> RankingStopping:
    """Revive a stopping rule from its :meth:`~RankingStopping.to_document`."""
    kind = document.get("kind")
    if kind == "confidence":
        return ConfidenceStopping(alpha=float(document["alpha"]))
    if kind == "pac":
        return PACStopping(
            epsilon=float(document["epsilon"]), delta=float(document["delta"])
        )
    raise ConfigError(f"unknown stopping rule kind {kind!r}")
