"""The three judgment models as first-class objects (§3, Table 1).

The paper compares three ways to ask the crowd about items; across this
library they are realized by (oracle adapter, tester) pairings.  This
module is the facade that makes the pairing explicit: given any base
preference oracle, ``configure(model, ...)`` returns the oracle view and
the comparison configuration that together implement the chosen model.

=============  ==========  =========  ========  ====================
Model          Target      Pref.      Error     Workload per target
=============  ==========  =========  ========  ====================
graded         item        absolute   high      unknown (no stop rule)
binary         item pair   relative   low       large (Hoeffding)
preference     item pair   relative   moderate  small (Student/Stein)
=============  ==========  =========  ========  ====================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..config import ComparisonConfig
from ..errors import ConfigError, OracleError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.oracle import JudgmentOracle

__all__ = ["JudgmentModel", "JUDGMENT_MODELS", "configure"]


@dataclass(frozen=True)
class JudgmentModel:
    """Descriptor of one judgment model (one row of Table 1)."""

    name: str
    target: str
    preference: str
    error: str
    workload: str
    default_estimator: str | None

    @property
    def has_stopping_rule(self) -> bool:
        """Whether comparisons under this model can stop adaptively."""
        return self.default_estimator is not None


#: Table 1, as data.
JUDGMENT_MODELS = {
    "preference": JudgmentModel(
        name="preference",
        target="item pair",
        preference="relative",
        error="moderate",
        workload="small",
        default_estimator="student",
    ),
    "binary": JudgmentModel(
        name="binary",
        target="item pair",
        preference="relative",
        error="low",
        workload="large",
        default_estimator="hoeffding",
    ),
    "graded": JudgmentModel(
        name="graded",
        target="item",
        preference="absolute",
        error="high",
        workload="unknown",
        default_estimator=None,
    ),
}


def configure(
    model: str,
    oracle: "JudgmentOracle",
    config: ComparisonConfig | None = None,
) -> tuple["JudgmentOracle", ComparisonConfig]:
    """Adapt ``oracle`` and ``config`` to the named judgment model.

    * ``"preference"`` — the oracle is used as-is with a parametric tester
      (Student by default; Stein if the config already asks for it).
    * ``"binary"`` — the oracle is wrapped in
      :class:`~repro.crowd.oracle.BinaryOracle` (sign-only answers,
      exact ties re-drawn) and the Hoeffding tester is selected.
    * ``"graded"`` — there is no comparison process; the oracle must
      support absolute ratings and is returned unchanged for callers that
      grade items directly (e.g. the Hybrid filter).  Raises when the
      oracle cannot rate.
    """
    from ..crowd.oracle import BinaryOracle  # deferred: avoids cycles

    try:
        descriptor = JUDGMENT_MODELS[model]
    except KeyError:
        known = ", ".join(sorted(JUDGMENT_MODELS))
        raise ConfigError(f"unknown judgment model {model!r}; known: {known}")
    config = config if config is not None else ComparisonConfig()

    if descriptor.name == "preference":
        estimator = (
            config.estimator if config.estimator in ("student", "stein")
            else "student"
        )
        return oracle, config.with_(estimator=estimator)
    if descriptor.name == "binary":
        return BinaryOracle(oracle), config.with_(estimator="hoeffding")
    # graded
    if not oracle.supports_rating:
        raise OracleError(
            f"{type(oracle).__name__} cannot answer graded judgments"
        )
    return oracle, config
