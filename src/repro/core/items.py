"""Items and ground-truth orderings.

An :class:`ItemSet` carries the *global* item identifiers of a dataset
together with their hidden scores.  Algorithms only ever see the ids — the
scores exist so that the simulator can answer microtasks and so that metrics
can grade results.  Ties in the hidden score are broken by ascending id,
giving every experiment a single well-defined total order ``Ω``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from ..errors import DatasetError

__all__ = ["ItemSet"]


@dataclass(frozen=True)
class ItemSet:
    """An immutable collection of items with hidden ground-truth scores.

    Attributes
    ----------
    ids:
        Global item identifiers (unique non-negative ints).
    scores:
        Hidden scores aligned with ``ids``; higher is better.
    labels:
        Optional human-readable names aligned with ``ids``.
    """

    ids: np.ndarray
    scores: np.ndarray
    labels: tuple[str, ...] | None = None
    _rank_by_id: dict[int, int] = field(init=False, repr=False, compare=False)
    _order: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        ids = np.array(self.ids, dtype=np.int64, copy=True)
        scores = np.array(self.scores, dtype=np.float64, copy=True)
        if ids.ndim != 1 or scores.ndim != 1 or len(ids) != len(scores):
            raise DatasetError("ids and scores must be 1-D arrays of equal length")
        if len(ids) == 0:
            raise DatasetError("an ItemSet cannot be empty")
        if len(np.unique(ids)) != len(ids):
            raise DatasetError("item ids must be unique")
        if np.any(ids < 0):
            raise DatasetError("item ids must be non-negative")
        if not np.all(np.isfinite(scores)):
            raise DatasetError("item scores must be finite")
        if self.labels is not None and len(self.labels) != len(ids):
            raise DatasetError("labels must align with ids")
        ids.flags.writeable = False
        scores.flags.writeable = False
        object.__setattr__(self, "ids", ids)
        object.__setattr__(self, "scores", scores)
        # Ω: descending score, ascending id on ties.
        order = np.lexsort((ids, -scores))
        true_order = ids[order]
        true_order.flags.writeable = False
        object.__setattr__(self, "_order", true_order)
        object.__setattr__(
            self,
            "_rank_by_id",
            {int(item): rank + 1 for rank, item in enumerate(true_order)},
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, item_id: int) -> bool:
        return int(item_id) in self._rank_by_id

    @property
    def true_order(self) -> np.ndarray:
        """All ids sorted by the ground-truth total order Ω (best first)."""
        return self._order

    def true_top_k(self, k: int) -> np.ndarray:
        """The ids of the true top-``k`` items (best first)."""
        if not 1 <= k <= len(self):
            raise DatasetError(f"k must be in [1, {len(self)}], got {k}")
        return self._order[:k]

    def rank_of(self, item_id: int) -> int:
        """1-based rank of ``item_id`` in Ω (1 = best)."""
        try:
            return self._rank_by_id[int(item_id)]
        except KeyError:
            raise DatasetError(f"item {item_id} is not in this ItemSet") from None

    def score_of(self, item_id: int) -> float:
        """Hidden score of ``item_id``."""
        idx = np.flatnonzero(self.ids == int(item_id))
        if idx.size == 0:
            raise DatasetError(f"item {item_id} is not in this ItemSet")
        return float(self.scores[idx[0]])

    def label_of(self, item_id: int) -> str:
        """Human-readable name of ``item_id`` (falls back to ``item <id>``)."""
        if self.labels is None:
            return f"item {int(item_id)}"
        idx = int(np.flatnonzero(self.ids == int(item_id))[0])
        return self.labels[idx]

    # ------------------------------------------------------------------
    def subset(
        self, n: int, rng: np.random.Generator | None = None
    ) -> "ItemSet":
        """A sub-collection of ``n`` items (random without replacement).

        Used by the item-cardinality sweeps (Figure 9): the ground-truth
        order of the subset is Ω restricted to the chosen ids.  With
        ``rng=None`` the first ``n`` ids (by id order) are taken, which is
        deterministic but arbitrary with respect to quality.
        """
        if not 1 <= n <= len(self):
            raise DatasetError(f"subset size must be in [1, {len(self)}], got {n}")
        if n == len(self):
            return self
        if rng is None:
            pick = np.arange(n)
        else:
            pick = rng.choice(len(self), size=n, replace=False)
        labels = (
            tuple(self.labels[i] for i in pick) if self.labels is not None else None
        )
        return ItemSet(self.ids[pick].copy(), self.scores[pick].copy(), labels)

    def restrict(self, item_ids: Sequence[int]) -> "ItemSet":
        """The sub-collection holding exactly ``item_ids``."""
        wanted = np.asarray(item_ids, dtype=np.int64)
        pos = {int(i): idx for idx, i in enumerate(self.ids)}
        try:
            pick = np.asarray([pos[int(i)] for i in wanted], dtype=np.intp)
        except KeyError as exc:
            raise DatasetError(f"item {exc.args[0]} is not in this ItemSet") from None
        labels = (
            tuple(self.labels[i] for i in pick) if self.labels is not None else None
        )
        return ItemSet(self.ids[pick].copy(), self.scores[pick].copy(), labels)
