"""Core machinery: items, comparison processes, estimators, and SPR."""

from .cache import JudgmentCache
from .comparison import Comparator, ComparisonRecord
from .items import ItemSet
from .outcomes import Outcome
from .topk import top_k_indices

__all__ = [
    "Comparator",
    "ComparisonRecord",
    "ItemSet",
    "JudgmentCache",
    "Outcome",
    "top_k_indices",
]
