"""Core machinery: items, comparison processes, estimators, and SPR."""

from .cache import JudgmentCache
from .comparison import Comparator, ComparisonRecord
from .items import ItemSet
from .outcomes import Outcome

__all__ = [
    "Comparator",
    "ComparisonRecord",
    "ItemSet",
    "JudgmentCache",
    "Outcome",
]
