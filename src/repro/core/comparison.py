"""The comparison process ``COMP(o_i, o_j)`` (§3.1, Algorithms 1 and 5).

A :class:`Comparator` progressively buys preference judgments for a pair
until its sequential tester reaches a verdict at confidence ``1 - α`` or the
per-pair budget ``B`` runs out (tie).  Judgments are drawn through a
judgment oracle and every purchased sample is stored in a
:class:`~repro.core.cache.JudgmentCache`, so later comparisons of the same
pair replay the stored bag for free before buying anything new.

Microtasks are published in batches of ``η`` (the latency model of §5.5)
but the stopping rule is evaluated after *every* sample inside a batch, so
the monetary cost is identical to the strictly sequential Algorithm 1.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..config import ComparisonConfig
from ..telemetry import get_registry
from .cache import JudgmentCache
from .estimators import make_tester
from .outcomes import Outcome

if TYPE_CHECKING:  # pragma: no cover - import for type checkers only
    from ..crowd.oracle import JudgmentOracle

__all__ = ["Comparator", "ComparisonRecord"]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class ComparisonRecord:
    """Everything a comparison process concluded and consumed.

    Attributes
    ----------
    left, right:
        The compared item ids, in the orientation of the call.
    outcome:
        :class:`Outcome` of the process (``LEFT``/``RIGHT``/``TIE``).
    workload:
        Total samples backing the verdict, ``w_{i,j}`` — including replayed
        cached judgments.
    cost:
        *New* microtasks purchased by this call (0 when fully cached).
    rounds:
        Batch-distribution rounds this call occupied the crowd for.
    mean, std:
        Sample moments of the judgments backing the verdict
        (std is NaN below 2 samples).
    """

    left: int
    right: int
    outcome: Outcome
    workload: int
    cost: int
    rounds: int
    mean: float
    std: float

    @property
    def winner(self) -> int | None:
        """The preferred item id, or ``None`` on a tie."""
        if self.outcome is Outcome.LEFT:
            return self.left
        if self.outcome is Outcome.RIGHT:
            return self.right
        return None

    @property
    def loser(self) -> int | None:
        """The rejected item id, or ``None`` on a tie."""
        if self.outcome is Outcome.LEFT:
            return self.right
        if self.outcome is Outcome.RIGHT:
            return self.left
        return None

    @property
    def from_cache(self) -> bool:
        """Whether the verdict came entirely from replayed judgments."""
        return self.cost == 0 and self.workload > 0

    @classmethod
    def from_race(
        cls,
        left: int,
        right: int,
        code: int,
        *,
        workload: int,
        cost: int,
        rounds: int,
        mean: float,
        std: float,
    ) -> "ComparisonRecord":
        """Build a record from a racing pool's per-pair end state.

        ``code`` is the pool's decision code (``+1``/``-1``/``0``) in the
        orientation of ``(left, right)``; the remaining fields carry the
        same meaning as in a sequentially produced record.
        """
        return cls(
            left=int(left),
            right=int(right),
            outcome=Outcome.from_code(code),
            workload=int(workload),
            cost=int(cost),
            rounds=int(rounds),
            mean=mean if workload else math.nan,
            std=std,
        )

    @classmethod
    def from_arrays(
        cls,
        lefts: np.ndarray,
        rights: np.ndarray,
        codes: np.ndarray,
        *,
        workloads: np.ndarray,
        costs: np.ndarray,
        rounds: np.ndarray,
        means: np.ndarray,
        stds: np.ndarray,
    ) -> "list[ComparisonRecord]":
        """Build a whole round's records in one pass over parallel arrays.

        Element ``r`` of every input describes one record; the result is
        field-for-field identical (order included) to calling
        :meth:`from_race` per element — the per-record arithmetic
        (orientation flips, moment math, NaN substitution for empty
        workloads) is expected to have happened in array form already,
        which is the point: the only remaining per-record work is
        constructing the frozen dataclass itself.
        """
        nan = math.nan
        left_outcome, right_outcome, tie = Outcome.LEFT, Outcome.RIGHT, Outcome.TIE
        return [
            cls(
                left=left,
                right=right,
                outcome=(
                    tie if code == 0 else left_outcome if code > 0 else right_outcome
                ),
                workload=workload,
                cost=cost,
                rounds=spent_rounds,
                mean=mean if workload else nan,
                std=std,
            )
            for left, right, code, workload, cost, spent_rounds, mean, std in zip(
                lefts.tolist(),
                rights.tolist(),
                codes.tolist(),
                workloads.tolist(),
                costs.tolist(),
                rounds.tolist(),
                means.tolist(),
                stds.tolist(),
            )
        ]


class Comparator:
    """Runs comparison processes against an oracle with a shared cache."""

    def __init__(
        self,
        oracle: "JudgmentOracle",
        config: ComparisonConfig | None = None,
        cache: JudgmentCache | None = None,
    ) -> None:
        self.oracle = oracle
        self.config = config if config is not None else ComparisonConfig()
        self.cache = cache if cache is not None else JudgmentCache()
        self._instrument_cache: tuple | None = None
        if self.config.estimator == "hoeffding" and oracle.value_range is None:
            raise ValueError(
                "the hoeffding estimator requires an oracle with bounded support"
            )

    def _judgments_counter(self):
        """The hot-path counter handle, re-bound when the registry changes."""
        registry = get_registry()
        cached = self._instrument_cache
        if cached is None or cached[0] is not registry:
            cached = (registry, registry.counter("oracle_judgments_total"))
            self._instrument_cache = cached
        return cached[1]

    def compare(
        self, i: int, j: int, rng: np.random.Generator
    ) -> ComparisonRecord:
        """Run ``COMP(o_i, o_j)``: replay the cache, then buy until a verdict.

        Returns a :class:`ComparisonRecord`; never raises on indecision —
        budget exhaustion is the tie outcome, as in the paper.
        """
        config = self.config
        tester = make_tester(config, self.oracle.value_range)
        budget = config.effective_budget

        decision: int | None = None
        cached = self.cache.bag(i, j)
        if cached.size:
            _, decision = tester.scan(cached[:budget])
            if decision is not None and logger.isEnabledFor(logging.DEBUG):
                logger.debug(
                    "cache hit: COMP(%d, %d) decided from %d stored judgments",
                    i, j, tester.n,
                )

        cost = 0
        rounds = 0
        judgments_drawn = self._judgments_counter()
        injector = self._active_injector()
        if injector is not None:
            cost, rounds, decision = self._faulty_buy(
                i, j, rng, tester, budget, decision, injector
            )
        else:
            deadline = config.resilience.retry.deadline_rounds
            while decision is None and tester.n < budget:
                if deadline is not None and rounds >= deadline:
                    get_registry().counter(
                        "crowd_degraded_ties_total", reason="deadline"
                    ).inc()
                    break
                chunk = min(config.batch_size, budget - tester.n)
                values = self.oracle.draw(i, j, chunk, rng)
                judgments_drawn.inc(chunk)
                consumed, decision = tester.scan(values)
                self.cache.append(i, j, values[:consumed])
                cost += consumed
                rounds += 1
        if decision is None and logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "budget tie: COMP(%d, %d) undecided after %d samples (B=%d)",
                i, j, tester.n, budget,
            )

        state = tester.state
        std = state.std if state.n >= 2 else math.nan
        return ComparisonRecord(
            left=int(i),
            right=int(j),
            outcome=Outcome.from_code(decision),
            workload=state.n,
            cost=cost,
            rounds=rounds,
            mean=state.mean if state.n else math.nan,
            std=std,
        )

    def _active_injector(self):
        """The session's fault injector, when faults are actually enabled."""
        from ..crowd.faults import FaultInjector  # deferred: crowd imports core

        oracle = self.oracle
        if isinstance(oracle, FaultInjector) and oracle.enabled:
            return oracle
        return None

    def _faulty_buy(
        self,
        i: int,
        j: int,
        rng: np.random.Generator,
        tester,
        budget: int,
        decision: int | None,
        injector,
    ) -> tuple[int, int, int | None]:
        """The buy loop against a faulty platform: consume what arrives.

        Mirrors the racing pool's semantics for a single pair: lost tasks
        are never consumed, charged, or cached; delivery-free rounds go
        through the :class:`~repro.config.RetryPolicy` (backoff waits burn
        latency rounds); ``max_attempts`` delivery-free rounds in a row or
        a passed ``deadline_rounds`` degrade the pair to a tie with the
        same undecided semantics as budget exhaustion.
        """
        config = self.config
        retry = config.resilience.retry
        deadline = retry.deadline_rounds
        judgments_drawn = self._judgments_counter()
        registry = get_registry()
        cost = 0
        rounds = 0
        failures = 0
        while decision is None and tester.n < budget:
            if deadline is not None and rounds >= deadline:
                registry.counter(
                    "crowd_degraded_ties_total", reason="deadline"
                ).inc()
                break
            chunk = min(config.batch_size, budget - tester.n)
            values, drawn = injector.deliver(i, j, chunk, rng)
            if drawn:
                judgments_drawn.inc(drawn)
            rounds += 1
            if values.size == 0:
                failures += 1
                if failures >= retry.max_attempts:
                    registry.counter(
                        "crowd_degraded_ties_total", reason="retries"
                    ).inc()
                    break
                registry.counter("crowd_retries_total").inc()
                rounds += retry.backoff_rounds(failures)  # idle wait
                continue
            failures = 0
            consumed, decision = tester.scan(values[: budget - tester.n])
            self.cache.append(i, j, values[:consumed])
            cost += consumed
        return cost, rounds, decision

    def moments(self, i: int, j: int) -> tuple[int, float, float]:
        """``(n, mean, variance)`` of the stored bag for ``(i, j)``."""
        return self.cache.moments(i, j)
