"""Crowd-powered ordering primitives shared by SPR and the baselines.

Everything here spends real (simulated) microtasks through a
:class:`~repro.crowd.session.CrowdSession` and is therefore subject to the
same confidence guarantees, caching and cost/latency accounting as any
other comparison.  Parallel groups — every knockout level and every
odd/even pass — go through :meth:`CrowdSession.compare_many`, so under the
default ``group_engine="racing"`` they advance in vectorized lockstep
rounds with no per-pair Python loop on the oracle path.

Ties — pairs the budget could not separate — are resolved *heuristically*
(by the sign of the observed sample mean, then randomly) because every
ordering primitive must return a total order; the heuristic uses only
information already paid for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import AlgorithmError
from .comparison import ComparisonRecord
from .outcomes import Outcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession

__all__ = [
    "resolve_winner",
    "crowd_max",
    "crowd_max_many",
    "odd_even_sort",
    "merge_sort",
    "insertion_sort",
    "bubble_sort_to_median",
    "median_of_multiset",
]


def resolve_winner(record: ComparisonRecord, rng: np.random.Generator) -> int:
    """The winning item id of ``record``, breaking ties heuristically.

    A decided record answers directly.  A tied record falls back to the
    sign of the observed preference mean — the best unpaid-for guess — and
    to a coin flip when even that is uninformative.
    """
    if record.outcome is Outcome.LEFT:
        return record.left
    if record.outcome is Outcome.RIGHT:
        return record.right
    if np.isfinite(record.mean) and record.mean != 0.0:
        return record.left if record.mean > 0 else record.right
    return record.left if rng.random() < 0.5 else record.right


def crowd_max(session: "CrowdSession", ids: list[int]) -> int:
    """Best item of ``ids`` by a parallel knockout tournament.

    Each tournament level is one parallel comparison group (§5.5), so the
    latency is ``O(log n)`` groups.  Duplicate ids are collapsed first —
    the maximum of a multiset is the maximum of its support.
    """
    unique = list(dict.fromkeys(int(i) for i in ids))
    if not unique:
        raise AlgorithmError("crowd_max needs at least one item")
    current = unique
    while len(current) > 1:
        pairs = [
            (current[pos], current[pos + 1]) for pos in range(0, len(current) - 1, 2)
        ]
        records = session.compare_many(pairs)
        survivors = [resolve_winner(rec, session.rng) for rec in records]
        if len(current) % 2 == 1:
            survivors.append(current[-1])
        current = survivors
    return current[0]


def crowd_max_many(
    session: "CrowdSession", samples: list[list[int]]
) -> list[int]:
    """Best item of each sample, running all tournaments in lockstep.

    The ``m`` independent sampling procedures of reference selection are
    outsourced simultaneously (§5.5), so each knockout *level* across all
    tournaments forms one parallel comparison group and the total latency
    is the depth of the deepest tournament, not the sum.
    """
    brackets = [list(dict.fromkeys(int(i) for i in sample)) for sample in samples]
    if any(not bracket for bracket in brackets):
        raise AlgorithmError("crowd_max_many needs non-empty samples")
    while any(len(bracket) > 1 for bracket in brackets):
        pairs: list[tuple[int, int]] = []
        sources: list[int] = []
        for which, bracket in enumerate(brackets):
            for pos in range(0, len(bracket) - 1, 2):
                pairs.append((bracket[pos], bracket[pos + 1]))
                sources.append(which)
        records = session.compare_many(pairs)
        # Odd leftovers get a bye into the next level.
        survivors: list[list[int]] = [
            [bracket[-1]] if len(bracket) % 2 == 1 else [] for bracket in brackets
        ]
        for which, rec in zip(sources, records):
            survivors[which].append(resolve_winner(rec, session.rng))
        brackets = survivors
    return [bracket[0] for bracket in brackets]


def median_of_multiset(
    session: "CrowdSession", ids: list[int]
) -> int:
    """The (upper) median of a multiset of item ids by crowd sorting.

    Duplicates — one item winning several sampling procedures — count with
    multiplicity; only the distinct items are actually sorted (via the
    parallel :func:`odd_even_sort`), then the median is read off the
    cumulative multiplicities.
    """
    items = [int(i) for i in ids]
    if not items:
        raise AlgorithmError("median of an empty list is undefined")
    counts: dict[int, int] = {}
    for item in items:
        counts[item] = counts.get(item, 0) + 1
    ranked = odd_even_sort(session, list(counts))
    target = (len(items) + 1) // 2
    seen = 0
    for item in ranked:
        seen += counts[item]
        if seen >= target:
            return item
    raise AssertionError("multiset median walk must terminate")


def _adjacent_pass(
    session: "CrowdSession", order: list[int], start: int
) -> bool:
    """One odd-even transposition pass over ``order`` (best-first).

    Compares positions ``(start, start+1), (start+2, start+3), …`` as a
    single parallel group and swaps wherever the right item proved better.
    Ties leave the current order untouched.  Returns whether any swap
    happened.
    """
    pairs_at = list(range(start, len(order) - 1, 2))
    if not pairs_at:
        return False
    records = session.compare_many(
        [(order[pos], order[pos + 1]) for pos in pairs_at]
    )
    swapped = False
    for pos, rec in zip(pairs_at, records):
        if rec.outcome is Outcome.RIGHT:
            order[pos], order[pos + 1] = order[pos + 1], order[pos]
            swapped = True
    return swapped


def odd_even_sort(
    session: "CrowdSession",
    ids: list[int],
    initial_order: list[int] | None = None,
) -> list[int]:
    """Sort ``ids`` best-first by crowd comparisons, near-linear when
    pre-sorted.

    This is the parallel form of the bubble sort §5.3 recommends: each
    odd/even pass is one parallel comparison group, an almost-sorted input
    terminates after a constant number of passes, and repeated comparisons
    of the same pair are served from the judgment cache at zero cost.

    ``initial_order`` (e.g. the Thurstone seeding) must be a permutation of
    ``ids`` when given.
    """
    if initial_order is not None:
        if sorted(map(int, initial_order)) != sorted(map(int, ids)):
            raise AlgorithmError("initial_order must be a permutation of ids")
        order = [int(i) for i in initial_order]
    else:
        order = [int(i) for i in ids]
    if len(order) != len(set(order)):
        raise AlgorithmError("cannot sort duplicate item ids")
    if len(order) <= 1:
        return order

    # A full odd+even sweep with no swap is a fixed point; n sweeps is the
    # worst-case bound of odd-even transposition sort.
    for _ in range(len(order)):
        swapped_even = _adjacent_pass(session, order, 0)
        swapped_odd = _adjacent_pass(session, order, 1)
        if not swapped_even and not swapped_odd:
            break
    return order


def merge_sort(session: "CrowdSession", ids: list[int]) -> list[int]:
    """Sort ``ids`` best-first by crowd-powered merge sort.

    The §5.3 cautionary tale: merge sort's comparison count is input-
    *independent* — it cannot exploit a nearly sorted input, so on the
    Thurstone-seeded candidates of the ranking phase it spends strictly
    more than the adaptive bubble/odd-even sort (see
    ``bench_ablation_sorting``).  Provided for completeness and for
    baselines that sort unordered sets, where its ``O(n log n)``
    comparisons beat bubble's ``O(n²)``.
    """
    order = [int(i) for i in ids]
    if len(order) != len(set(order)):
        raise AlgorithmError("cannot sort duplicate item ids")
    if len(order) <= 1:
        return order

    def merge(left: list[int], right: list[int]) -> list[int]:
        merged: list[int] = []
        i = j = 0
        while i < len(left) and j < len(right):
            record = session.compare(left[i], right[j])
            if resolve_winner(record, session.rng) == left[i]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return merged

    def sort(chunk: list[int]) -> list[int]:
        if len(chunk) <= 1:
            return chunk
        mid = len(chunk) // 2
        return merge(sort(chunk[:mid]), sort(chunk[mid:]))

    return sort(order)


def insertion_sort(
    session: "CrowdSession",
    ids: list[int],
    initial_order: list[int] | None = None,
) -> list[int]:
    """Sort ``ids`` best-first by crowd-powered insertion sort.

    Like bubble sort, insertion sort is *adaptive*: a nearly sorted input
    costs ``O(n + inversions)`` comparisons.  Its comparisons are strictly
    sequential though, so it trades the odd-even sort's parallel latency
    for a slightly lower comparison count.
    """
    if initial_order is not None:
        if sorted(map(int, initial_order)) != sorted(map(int, ids)):
            raise AlgorithmError("initial_order must be a permutation of ids")
        order = [int(i) for i in initial_order]
    else:
        order = [int(i) for i in ids]
    if len(order) != len(set(order)):
        raise AlgorithmError("cannot sort duplicate item ids")

    result = order[:1]
    for item in order[1:]:
        placed = False
        # Scan from the tail: near-sorted inputs place in O(1) comparisons.
        for pos in range(len(result) - 1, -1, -1):
            record = session.compare(item, result[pos])
            if resolve_winner(record, session.rng) == result[pos]:
                result.insert(pos + 1, item)
                placed = True
                break
        if not placed:
            result.insert(0, item)
    return result


def bubble_sort_to_median(session: "CrowdSession", ids: list[int]) -> int:
    """The median item of ``ids`` via the partial bubble sort of Appendix C.

    Pass ``i`` sinks the ``i``-th best item into position ``i-1``; after
    ``⌈m/2⌉`` passes the (upper) median sits at position ``⌈m/2⌉ - 1``.
    Duplicate ids (one item winning several sampling procedures) are kept —
    they are genuine votes for that item — and comparisons between two
    copies of the same item are skipped as order-preserving.
    """
    order = [int(i) for i in ids]
    if not order:
        raise AlgorithmError("median of an empty list is undefined")
    m = len(order)
    passes = (m + 1) // 2
    for sunk in range(passes):
        for pos in range(m - 1, sunk, -1):
            a, b = order[pos - 1], order[pos]
            if a == b:
                continue
            rec = session.compare(b, a)
            if rec.outcome is Outcome.LEFT:
                order[pos - 1], order[pos] = order[pos], order[pos - 1]
    return order[passes - 1]
