"""One front door for execution selection: :class:`ExecutionPolicy`.

Three generations of knobs accumulated around "how should this work be
executed":

* ``ComparisonConfig.group_engine`` — how one parallel comparison *group*
  advances (``"racing"`` lockstep kernel vs ``"sequential"`` per-pair
  Python);
* the ``engine=`` keyword on experiment entry points — how *independent
  runs* are scheduled (``"pool"`` serial/process-pool vs ``"lattice"``
  fused in-process racing), plus the ambient installers
  :func:`repro.experiments.use_engine` / ``set_default_engine``;
* the ``CROWD_TOPK_ENGINE`` environment variable — the CI-facing ambient
  default behind both.

``ExecutionPolicy`` collapses them into one declarative object with one
documented resolution order.  For each field, the first hit wins:

1. an explicit value on the policy itself (``ExecutionPolicy(...)``);
2. the legacy spelling at the call site (``engine=`` keyword,
   ``config.group_engine``) — kept working, now defined as a thin alias
   for a policy with that single field set;
3. the ambient installation (:func:`~repro.experiments.use_engine`,
   :func:`~repro.experiments.use_jobs`);
4. the ``CROWD_TOPK_ENGINE`` environment variable (run engine only);
5. the library defaults: ``group_engine="racing"``, ``run_engine="pool"``,
   ``n_jobs=1``.

The legacy spellings are *deprecated aliases* in documentation only — they
emit no runtime warnings (CI legs and downstream scripts drive whole
suites through them) and keep their exact semantics.  New code should
construct an :class:`ExecutionPolicy` and pass it where accepted (e.g.
``QuerySpec.execution``).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Literal

from .config import ComparisonConfig
from .errors import ConfigError

__all__ = ["ExecutionPolicy", "DEFAULT_EXECUTION", "execution_policy_from_dict"]

GroupEngineName = Literal["racing", "sequential"]
RunEngineName = Literal["pool", "lattice"]


@dataclass(frozen=True)
class ExecutionPolicy:
    """Declarative execution selection with a single resolution order.

    Every field defaults to ``None`` — "no opinion" — so an empty policy
    defers entirely to the legacy spellings, the ambient installers, the
    environment, and finally the library defaults (see the module
    docstring for the full order).

    Attributes
    ----------
    group_engine:
        How a parallel comparison group advances: ``"racing"`` (one
        vectorized lockstep kernel for the whole group) or
        ``"sequential"`` (one comparison process per pair).  Resolved
        against ``ComparisonConfig.group_engine`` by
        :meth:`apply_to_config`.
    run_engine:
        How independent experiment runs are scheduled: ``"pool"``
        (serial at one job, process pool above) or ``"lattice"`` (fused
        in-process racing of all runs).
    n_jobs:
        Worker processes for the pool engine: ``1`` serial, ``0`` one
        per CPU, ``None`` the ambient default installed by
        :func:`repro.experiments.use_jobs`.
    """

    group_engine: GroupEngineName | None = None
    run_engine: RunEngineName | None = None
    n_jobs: int | None = None

    def __post_init__(self) -> None:
        if self.group_engine not in (None, "racing", "sequential"):
            raise ConfigError(
                f"unknown group_engine {self.group_engine!r}"
            )
        if self.run_engine not in (None, "pool", "lattice"):
            raise ConfigError(f"unknown run_engine {self.run_engine!r}")
        if self.n_jobs is not None and (
            not isinstance(self.n_jobs, int)
            or isinstance(self.n_jobs, bool)
            or self.n_jobs < 0
        ):
            raise ConfigError(
                f"n_jobs must be a non-negative int or None, got {self.n_jobs!r}"
            )

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def resolve_group_engine(
        self, config: ComparisonConfig | None = None
    ) -> GroupEngineName:
        """The concrete group engine under the documented order.

        An explicit policy field wins; otherwise the legacy spelling —
        the config's ``group_engine`` (itself defaulting to
        ``"racing"``) — decides.
        """
        if self.group_engine is not None:
            return self.group_engine
        if config is not None:
            return config.group_engine
        return "racing"

    def resolve_run_engine(self, engine: str | None = None) -> RunEngineName:
        """The concrete run engine under the documented order.

        ``engine`` is the legacy call-site keyword; it loses to an
        explicit policy field and beats the ambient installation /
        environment variable (step 3/4), which
        :func:`repro.experiments.resolve_engine` implements.
        """
        from .experiments.parallel import resolve_engine  # deferred: cycle

        if self.run_engine is not None:
            return resolve_engine(self.run_engine)
        return resolve_engine(engine)

    def resolve_jobs(self, n_jobs: int | None = None) -> int:
        """The concrete worker count under the documented order.

        ``n_jobs`` is the legacy call-site keyword; explicit policy field
        first, then the keyword, then the ambient default
        (:func:`repro.experiments.use_jobs`), with ``0`` expanding to one
        worker per CPU.
        """
        from .experiments.parallel import resolve_jobs  # deferred: cycle

        if self.n_jobs is not None:
            return resolve_jobs(self.n_jobs)
        return resolve_jobs(n_jobs)

    def apply_to_config(self, config: ComparisonConfig) -> ComparisonConfig:
        """``config`` with this policy's group engine applied (if any)."""
        engine = self.resolve_group_engine(config)
        if engine == config.group_engine:
            return config
        return config.with_(group_engine=engine)

    # ------------------------------------------------------------------
    # serialization (QuerySpec documents carry the policy)
    # ------------------------------------------------------------------
    def to_document(self) -> dict:
        """A JSON-ready dict (inverse of :func:`execution_policy_from_dict`)."""
        return {
            "group_engine": self.group_engine,
            "run_engine": self.run_engine,
            "n_jobs": self.n_jobs,
        }

    def with_(self, **changes: object) -> "ExecutionPolicy":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]


def execution_policy_from_dict(data: dict) -> ExecutionPolicy:
    """Revive an :class:`ExecutionPolicy` from :meth:`ExecutionPolicy.to_document`."""
    return ExecutionPolicy(
        group_engine=data.get("group_engine"),
        run_engine=data.get("run_engine"),
        n_jobs=data.get("n_jobs"),
    )


#: The empty policy: every decision defers down the resolution order.
DEFAULT_EXECUTION = ExecutionPolicy()
