"""Persisting crowd state across queries and processes.

§5.3: "all human preference feedback can be stored and the results of
comparisons are always *reusable*."  Within a process the
:class:`~repro.core.cache.JudgmentCache` provides that reuse; this module
extends it across processes — a deployment that ran a top-5 query
yesterday should not re-purchase a single microtask when today's top-10
query touches the same pairs.

Two formats:

* ``save_cache`` / ``load_cache`` — compressed numpy archive of the raw
  bags (lossless, compact; the natural operational format).
* ``cache_to_json`` / ``cache_from_json`` — human-readable interchange for
  audits and cross-tool exchange.

``save_checkpoint`` / ``load_checkpoint`` extend the archive format with a
full :class:`~repro.crowd.session.CrowdSession` state document (config, RNG
states, ledgers, in-flight query state) so a killed query resumes to the
identical result at identical cost.  Checkpoints are written atomically —
to a temporary file in the target directory, then ``os.replace``'d into
place — so a crash mid-write never corrupts the previous checkpoint.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from .core.cache import JudgmentCache
from .errors import CrowdTopkError

__all__ = [
    "save_cache",
    "load_cache",
    "save_checkpoint",
    "load_checkpoint",
    "cache_to_json",
    "cache_from_json",
]

_FORMAT_VERSION = 1
_CHECKPOINT_VERSION = 1


def save_cache(cache: JudgmentCache, path: str | os.PathLike) -> None:
    """Write all judgment bags to a compressed ``.npz`` archive."""
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "__meta__": np.asarray([_FORMAT_VERSION], dtype=np.int64)
    }
    index = []
    for number, (a, b) in enumerate(cache.pairs()):
        arrays[f"bag_{number}"] = cache.bag(a, b)
        index.append((a, b))
    arrays["__pairs__"] = np.asarray(index, dtype=np.int64).reshape(-1, 2)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_cache(path: str | os.PathLike) -> JudgmentCache:
    """Read a judgment cache written by :func:`save_cache`."""
    path = Path(path)
    with np.load(path) as archive:
        if "__meta__" not in archive or "__pairs__" not in archive:
            raise CrowdTopkError(f"{path} is not a crowd-topk cache archive")
        version = int(archive["__meta__"][0])
        if version != _FORMAT_VERSION:
            raise CrowdTopkError(
                f"cache archive version {version} is not supported "
                f"(expected {_FORMAT_VERSION})"
            )
        cache = JudgmentCache()
        pairs = archive["__pairs__"]
        for number, (a, b) in enumerate(pairs):
            cache.append(int(a), int(b), archive[f"bag_{number}"])
    return cache


def save_checkpoint(
    state: dict, cache: JudgmentCache, path: str | os.PathLike
) -> None:
    """Atomically write a session checkpoint (state document + cache).

    ``state`` must be JSON-serializable (``CrowdSession.checkpoint_state``
    produces one; Python's ``json`` round-trips the arbitrary-precision
    ints of RNG bit-generator states and the exact ``repr`` of every
    float).  The judgment bags ride alongside as raw numpy arrays — the
    same layout as :func:`save_cache` — so the bulk data never passes
    through JSON.

    Atomicity: the archive is written to a ``.tmp`` sibling in the target
    directory and moved into place with :func:`os.replace`, which is
    atomic on POSIX and Windows — a reader never observes a torn file and
    a crash mid-write leaves any previous checkpoint intact.
    """
    path = Path(path)
    arrays: dict[str, np.ndarray] = {
        "__meta__": np.asarray([_FORMAT_VERSION], dtype=np.int64),
        "__checkpoint__": np.asarray(
            [json.dumps({"version": _CHECKPOINT_VERSION, **state})]
        ),
    }
    index = []
    for number, (a, b) in enumerate(cache.pairs()):
        arrays[f"bag_{number}"] = cache.bag(a, b)
        index.append((a, b))
    arrays["__pairs__"] = np.asarray(index, dtype=np.int64).reshape(-1, 2)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, "wb") as handle:
            np.savez_compressed(handle, **arrays)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # a failed write leaves no debris
            tmp.unlink()


def load_checkpoint(path: str | os.PathLike) -> tuple[dict, JudgmentCache]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Returns ``(state, cache)`` — the JSON state document (without the
    version key) and the revived judgment cache.
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as archive:
        if "__checkpoint__" not in archive or "__pairs__" not in archive:
            raise CrowdTopkError(f"{path} is not a crowd-topk checkpoint archive")
        document = json.loads(str(archive["__checkpoint__"][0]))
        version = document.pop("version", None)
        if version != _CHECKPOINT_VERSION:
            raise CrowdTopkError(
                f"checkpoint version {version} is not supported "
                f"(expected {_CHECKPOINT_VERSION})"
            )
        cache = JudgmentCache()
        pairs = archive["__pairs__"]
        for number, (a, b) in enumerate(pairs):
            cache.append(int(a), int(b), archive[f"bag_{number}"])
    return document, cache


def cache_to_json(cache: JudgmentCache) -> str:
    """Serialize all judgment bags as a JSON document."""
    payload = {
        "format": "crowd-topk-cache",
        "version": _FORMAT_VERSION,
        "pairs": [
            {
                "left": a,
                "right": b,
                "judgments": cache.bag(a, b).tolist(),
            }
            for a, b in cache.pairs()
        ],
    }
    return json.dumps(payload)


def cache_from_json(document: str) -> JudgmentCache:
    """Deserialize a cache produced by :func:`cache_to_json`."""
    try:
        payload = json.loads(document)
    except json.JSONDecodeError as exc:
        raise CrowdTopkError(f"invalid cache JSON: {exc}") from None
    if not isinstance(payload, dict) or payload.get("format") != "crowd-topk-cache":
        raise CrowdTopkError("document is not a crowd-topk cache")
    if payload.get("version") != _FORMAT_VERSION:
        raise CrowdTopkError(
            f"cache version {payload.get('version')} is not supported"
        )
    cache = JudgmentCache()
    for entry in payload.get("pairs", []):
        cache.append(
            int(entry["left"]),
            int(entry["right"]),
            np.asarray(entry["judgments"], dtype=np.float64),
        )
    return cache
