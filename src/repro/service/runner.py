"""Turning a :class:`~repro.service.spec.QuerySpec` into an answer.

This is the canonical dispatch used by every front door — the
:class:`~repro.service.service.QueryService` workers, ``crowd-topk
query``/``submit``, and direct library calls — so a spec produces
bit-identical results no matter which door it entered through.  The
standalone ``spr_topk`` / ``bdp_topk`` entry points remain, but they are
now the thin layer: a spec is the full description, and
:func:`execute_spec` is one table lookup away from them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..algorithms import ALGORITHMS, resume_bdp_topk
from ..algorithms.base import TopKOutcome
from ..core.spr import resume_spr_topk
from ..datasets import load_dataset
from .spec import QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession
    from ..telemetry import MetricsRegistry

__all__ = ["execute_spec", "run_query", "session_for", "resume_session"]


def session_for(
    spec: QuerySpec,
    registry: "MetricsRegistry | None" = None,
) -> "tuple[CrowdSession, list[int]]":
    """Build the seeded session and working set a spec describes.

    The session is exactly what a standalone run would construct: same
    dataset oracle, same resolved comparison config, same seed, and the
    spec's ``cost_sla`` as the hard cost ceiling — which is why a service
    run and a standalone run of the same spec consume identical draws.
    """
    if spec.dataset is None:
        raise ValueError("spec has no dataset; build the session yourself")
    dataset = load_dataset(spec.dataset)
    from ..crowd.session import CrowdSession  # deferred: session imports config

    session = CrowdSession(
        dataset.oracle,
        config=spec.resolved_config(),
        seed=spec.seed,
        max_total_cost=spec.cost_sla,
        telemetry=registry,
    )
    return session, spec.resolve_items(dataset)


def execute_spec(
    session: "CrowdSession",
    spec: QuerySpec,
    items: list[int] | None = None,
) -> TopKOutcome:
    """Run ``spec`` on an existing session; the canonical dispatch.

    ``items`` defaults to the spec's resolved working set (requires a
    dataset-named spec).  The method table and keyword forwarding are
    the same for every caller, so two doors can never diverge.
    """
    if items is None:
        if spec.dataset is None:
            raise ValueError("spec has no dataset; pass items explicitly")
        items = spec.resolve_items(load_dataset(spec.dataset))
    algorithm = ALGORITHMS[spec.method]
    return algorithm(session, items, spec.k, **dict(spec.method_kwargs))


def resume_session(session: "CrowdSession", spec: QuerySpec) -> TopKOutcome:
    """Continue ``spec`` on a session restored from its checkpoint.

    Only ``spr`` and ``bdp`` carry resumable query state; the restored
    session's ``restored_state`` must hold it (the service guarantees
    this by pairing each checkpoint with its spec document).
    """
    if spec.method == "spr":
        result = resume_spr_topk(session)
        return TopKOutcome(
            method="spr",
            topk=list(result.topk),
            cost=session.total_cost,
            rounds=session.total_rounds,
            extras={"resumed": True},
        )
    if spec.method == "bdp":
        outcome = resume_bdp_topk(session)
        extras = dict(outcome.extras)
        extras["resumed"] = True
        return TopKOutcome(
            method=outcome.method,
            topk=outcome.topk,
            cost=outcome.cost,
            rounds=outcome.rounds,
            extras=extras,
        )
    raise ValueError(f"method {spec.method!r} does not support resume")


def run_query(
    spec: QuerySpec,
    registry: "MetricsRegistry | None" = None,
) -> TopKOutcome:
    """Answer one spec start to finish, standalone (no service).

    The one-shot convenience door: builds the spec's session, dispatches
    the method, returns the outcome.  ``QueryService.submit`` of the
    same spec returns a bit-identical outcome — the service adds tenancy,
    SLAs, durability and sharing *around* this exact execution.
    """
    session, items = session_for(spec, registry)
    return execute_spec(session, spec, items)
