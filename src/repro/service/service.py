"""The long-lived multi-tenant query service.

One process, many tenants, many concurrent top-k queries — all entering
through one front door::

    service = QueryService(max_workers=4, capacity=500_000)
    handle = service.submit(QuerySpec(method="spr", k=5, dataset="jester",
                                      tenant="acme", cost_sla=50_000))
    handle.result()          # blocks; bit-identical to a standalone run

Inside, :meth:`QueryService.submit` passes admission control (committed
budget vs capacity), parks or rejects over-capacity queries, and hands
admitted ones to a bounded worker pool.  Each query runs on its own
seeded :class:`~repro.crowd.session.CrowdSession` pointed at its
tenant's namespace of the shared cross-query judgment cache, with a
spend gate enforcing cancellation, the latency SLA, and fair
deficit-round-robin microtask allocation across tenants (the cost SLA is
the session's hard cost ceiling).  With ``state_dir`` set, every query's
spec document is persisted at submission and its session checkpoints at
round boundaries, so :meth:`QueryService.recover` in a fresh process
resumes every in-flight query exactly where it died.

Determinism contract: a query on a *cold* tenant namespace consumes the
same draws as the standalone run of its spec — the service adds tenancy,
scheduling and durability around the identical execution.  On a *warm*
namespace, earlier queries' judgments are reused (that is the point), so
verdicts match what a standalone run with that same pre-populated cache
would produce; which judgments are warm under concurrency depends on
round interleaving.  Recovered queries keep their private checkpointed
cache rather than re-joining the shared namespace — resume determinism
outranks sharing for the remainder of a recovered query.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import TYPE_CHECKING

from ..crowd.session import CrowdSession
from ..datasets import load_dataset
from ..errors import (
    BudgetExhaustedError,
    QueryCancelledError,
    ServiceError,
    SLAExceededError,
)
from ..telemetry import MetricsRegistry
from ..telemetry.server import QueryBoard
from .cache import SharedJudgmentCache
from .runner import execute_spec, resume_session, session_for
from .scheduler import AdmissionController, FairMarketplace
from .spec import QuerySpec, spec_from_document

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..algorithms.base import TopKOutcome

__all__ = ["QueryService", "QueryHandle"]

#: Sentinel shutting down a worker thread.
_STOP = object()

#: Handle lifecycle states.
STATUSES = ("queued", "running", "done", "failed", "cancelled")


class QueryHandle:
    """The caller's view of one submitted query.

    Returned by :meth:`QueryService.submit`; thread-safe.  ``status()``
    is a cheap snapshot, ``result()`` blocks, ``cancel()`` is
    best-effort immediate (a parked query dies instantly, a running one
    at its next spend).
    """

    def __init__(self, service: "QueryService", id: str, spec: QuerySpec) -> None:
        self._service = service
        self.id = id
        self.spec = spec
        self.commitment = spec.cost_sla or 0
        self.outcome: "TopKOutcome | None" = None
        self.error: BaseException | None = None
        self.resume_from: str | None = None
        self._status = "queued"
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._lane = None
        self._session: CrowdSession | None = None

    def status(self) -> str:
        """One of ``queued / running / done / failed / cancelled``."""
        return self._status

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the query finishes; False on timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: float | None = None) -> "TopKOutcome":
        """The query's outcome, blocking until it finishes.

        Raises the query's terminal error for failed/cancelled queries
        and :class:`TimeoutError` if ``timeout`` elapses first.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"query {self.id} still {self._status!r} after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        assert self.outcome is not None
        return self.outcome

    def cancel(self) -> bool:
        """Request cancellation; False if the query already finished."""
        return self._service._cancel(self)

    def to_document(self) -> dict:
        """A JSON-ready row for the observatory's ``/queries`` table."""
        spec = self.spec
        doc: dict = {
            "query": spec.display_name,
            "id": self.id,
            "tenant": spec.tenant,
            "method": spec.method,
            "k": spec.k,
            "status": self._status,
            "cost_sla": spec.cost_sla,
            "latency_sla": spec.latency_sla,
        }
        session = self._session
        if self._status == "running" and session is not None:
            try:
                doc.update(session.progress())
            except Exception as exc:  # torn mid-round read: degrade
                doc["error"] = f"{type(exc).__name__}: {exc}"
        elif self.outcome is not None:
            doc["cost"] = self.outcome.cost
            doc["rounds"] = self.outcome.rounds
            doc["topk"] = list(self.outcome.topk)
        elif self.error is not None:
            doc["error"] = f"{type(self.error).__name__}: {self.error}"
        return doc


class QueryService:
    """A long-lived scheduler of concurrent top-k queries (see module doc).

    Parameters
    ----------
    max_workers:
        Worker threads — queries running simultaneously.  Further
        admitted queries wait in the run queue.
    capacity:
        Admission-control bound on the summed ``cost_sla`` of unfinished
        queries (``None`` = unbounded).  Queries without a ``cost_sla``
        commit nothing against it.
    admission:
        ``"queue"`` (default) parks over-capacity submissions until
        capacity frees; ``"reject"`` raises
        :class:`~repro.errors.AdmissionError` from :meth:`submit`.
    marketplace_slots, quantum:
        Crowd-throughput arbitration: rounds in flight at once, and the
        DRR quantum in microtasks (see
        :class:`~repro.service.scheduler.FairMarketplace`).
    cache_entries, cache_bytes:
        Global LRU bounds on the shared judgment cache (``None`` =
        unbounded).
    state_dir:
        Durability root.  When set, each query persists
        ``<id>.spec.json`` at submission, checkpoints to ``<id>.ckpt``
        at round boundaries, and records ``<id>.result.json`` at the
        end; :meth:`recover` rebuilds unfinished queries from these.
    checkpoint_every:
        Checkpoint cadence in latency rounds (durable queries only).
    registry:
        Metrics registry for all ``service_*`` families (defaults to the
        process registry).
    board:
        The :class:`~repro.telemetry.QueryBoard` running sessions
        register on (a fresh board by default); hand it to an
        :class:`~repro.telemetry.ObservatoryServer` together with the
        service for tenant-aware ``/queries``.
    """

    def __init__(
        self,
        max_workers: int = 4,
        capacity: int | None = None,
        admission: str = "queue",
        marketplace_slots: int = 4,
        quantum: int = 500,
        cache_entries: int | None = None,
        cache_bytes: int | None = None,
        state_dir: str | os.PathLike | None = None,
        checkpoint_every: int = 1,
        registry: MetricsRegistry | None = None,
        board: QueryBoard | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.registry = registry if registry is not None else _process_registry()
        self.board = board if board is not None else QueryBoard()
        self.cache = SharedJudgmentCache(
            max_entries=cache_entries,
            max_bytes=cache_bytes,
            registry=self.registry,
        )
        self.marketplace = FairMarketplace(
            slots=marketplace_slots, quantum=quantum, registry=self.registry
        )
        self.admission = AdmissionController(
            capacity=capacity, policy=admission, registry=self.registry
        )
        self.state_dir = os.fspath(state_dir) if state_dir is not None else None
        if self.state_dir is not None:
            os.makedirs(self.state_dir, exist_ok=True)
        self.checkpoint_every = checkpoint_every
        self._lock = threading.Lock()
        self._handles: dict[str, QueryHandle] = {}
        self._admission_parked: list[QueryHandle] = []
        self._run_queue: "queue.Queue[object]" = queue.Queue()
        self._next_id = 1
        self._closed = False
        self._active_gauge = self.registry.gauge("service_active_queries")
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"crowd-topk-service-{n}",
                daemon=True,
            )
            for n in range(max_workers)
        ]
        for worker in self._workers:
            worker.start()

    # ------------------------------------------------------------------
    # the front door
    # ------------------------------------------------------------------
    def submit(self, spec: QuerySpec) -> QueryHandle:
        """Admit ``spec`` and schedule it; returns its :class:`QueryHandle`.

        Raises :class:`~repro.errors.AdmissionError` over capacity under
        the ``"reject"`` policy; under ``"queue"`` the handle parks in
        ``"queued"`` state until capacity frees.  Durable services
        require dataset-named specs (an explicit-items spec cannot be
        revived in a fresh process).
        """
        if self._closed:
            raise ServiceError("service is closed")
        if self.state_dir is not None and spec.dataset is None:
            raise ServiceError(
                "durable services need dataset-named specs "
                "(explicit items cannot be recovered)"
            )
        with self._lock:
            handle = QueryHandle(self, self._make_id(), spec)
            self._handles[handle.id] = handle
        self._persist_spec(handle)
        if self.admission.try_admit(handle.commitment):
            self._run_queue.put(handle)
        else:
            with self._lock:
                self._admission_parked.append(handle)
        return handle

    def handle(self, id: str) -> QueryHandle:
        """Look up a handle by id (raises ``KeyError`` for unknown ids)."""
        with self._lock:
            return self._handles[id]

    def handles(self) -> list[QueryHandle]:
        """Every handle this service has issued, in submission order."""
        with self._lock:
            return list(self._handles.values())

    def _make_id(self) -> str:
        id = f"q{self._next_id:04d}"
        self._next_id += 1
        return id

    # ------------------------------------------------------------------
    # cancellation
    # ------------------------------------------------------------------
    def _cancel(self, handle: QueryHandle) -> bool:
        with self._lock:
            if handle.done:
                return False
            handle._cancel.set()
            parked = handle in self._admission_parked
            if parked:
                self._admission_parked.remove(handle)
            lane = handle._lane
        if lane is not None:
            lane.abort(QueryCancelledError(f"query {handle.id} cancelled"))
        if parked:
            self._finish(
                handle,
                "cancelled",
                error=QueryCancelledError(f"query {handle.id} cancelled"),
                committed=False,
            )
        return True

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            item = self._run_queue.get()
            if item is _STOP:
                return
            handle: QueryHandle = item  # type: ignore[assignment]
            try:
                self._run(handle)
            except BaseException as exc:  # defensive: workers must survive
                if not handle.done:
                    self._finish(handle, "failed", error=exc)

    def _run(self, handle: QueryHandle) -> None:
        spec = handle.spec
        if handle._cancel.is_set():
            self._finish(
                handle,
                "cancelled",
                error=QueryCancelledError(f"query {handle.id} cancelled"),
            )
            return
        handle._status = "running"
        self._active_gauge.inc()
        lane = self.marketplace.open_lane(spec.tenant)
        handle._lane = lane
        session: CrowdSession | None = None
        try:
            if handle.resume_from is not None:
                session = CrowdSession.restore(
                    handle.resume_from,
                    load_dataset(spec.dataset).oracle,
                    telemetry=self.registry,
                )
                self.registry.counter("service_recovered_queries_total").inc()
            else:
                session, items = session_for(spec, self.registry)
                # The cold path of the determinism contract: the tenant
                # namespace holds exactly what earlier queries stored, so
                # a first query sees an empty cache — standalone run.
                session.use_cache(self.cache.tenant(spec.tenant))
            handle._session = session
            session.set_spend_gate(self._make_gate(handle, session))
            if self.state_dir is not None and spec.resumable:
                session.enable_checkpoints(
                    self._path(handle.id, "ckpt"), self.checkpoint_every
                )
            session.register_progress_provider(
                "service",
                lambda: {
                    "id": handle.id,
                    "tenant": spec.tenant,
                    "cost_sla": spec.cost_sla,
                    "latency_sla": spec.latency_sla,
                },
            )
            self.board.register(f"{handle.id}:{spec.display_name}", session)
            if handle.resume_from is not None:
                outcome = resume_session(session, spec)
            else:
                outcome = execute_spec(session, spec, items)
        except QueryCancelledError as exc:
            self._finish(handle, "cancelled", error=exc)
        except SLAExceededError as exc:
            self.registry.counter(
                "service_sla_breaches_total", kind="latency"
            ).inc()
            self._finish(handle, "failed", error=exc)
        except BudgetExhaustedError as exc:
            self.registry.counter(
                "service_sla_breaches_total", kind="cost"
            ).inc()
            self._finish(handle, "failed", error=exc)
        except BaseException as exc:
            self._finish(handle, "failed", error=exc)
        else:
            handle.outcome = outcome
            self._finish(handle, "done")
        finally:
            lane.close()
            if session is not None:
                session.set_spend_gate(None)
                self.board.unregister(f"{handle.id}:{spec.display_name}")

    def _make_gate(self, handle: QueryHandle, session: CrowdSession):
        spec = handle.spec
        lane = handle._lane

        def gate(microtasks: int) -> None:
            if handle._cancel.is_set():
                raise QueryCancelledError(f"query {handle.id} cancelled")
            if (
                spec.latency_sla is not None
                and session.latency.rounds >= spec.latency_sla
            ):
                raise SLAExceededError(
                    f"query {handle.id} spent {session.latency.rounds} rounds; "
                    f"latency SLA is {spec.latency_sla}"
                )
            lane.gate(microtasks)

        return gate

    def _finish(
        self,
        handle: QueryHandle,
        status: str,
        error: BaseException | None = None,
        committed: bool = True,
    ) -> None:
        if status == "running" or status not in STATUSES:
            raise ValueError(f"not a terminal status: {status!r}")
        was_running = handle._status == "running"
        handle._status = status
        handle.error = error
        self._persist_result(handle)
        handle._done.set()
        if was_running:
            self._active_gauge.dec()
        self.registry.counter(
            "service_queries_total", tenant=handle.spec.tenant, status=status
        ).inc()
        if committed:
            self.admission.release(handle.commitment)
        self._admit_parked()

    def _admit_parked(self) -> None:
        admitted: list[QueryHandle] = []
        with self._lock:
            while self._admission_parked:
                head = self._admission_parked[0]
                if not self.admission.readmit(head.commitment):
                    break
                admitted.append(self._admission_parked.pop(0))
        for handle in admitted:
            self._run_queue.put(handle)

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def _path(self, id: str, kind: str) -> str:
        assert self.state_dir is not None
        return os.path.join(self.state_dir, f"{id}.{kind}")

    def _persist_spec(self, handle: QueryHandle) -> None:
        if self.state_dir is None:
            return
        import json

        document = {"id": handle.id, **handle.spec.to_document()}
        path = self._path(handle.id, "spec.json")
        temp = f"{path}.tmp"
        with open(temp, "w", encoding="utf-8") as sink:
            json.dump(document, sink, indent=2, sort_keys=True)
            sink.write("\n")
        os.replace(temp, path)

    def _persist_result(self, handle: QueryHandle) -> None:
        if self.state_dir is None:
            return
        import json

        document: dict = {"id": handle.id, "status": handle._status}
        if handle.outcome is not None:
            document["outcome"] = {
                "method": handle.outcome.method,
                "topk": list(handle.outcome.topk),
                "cost": handle.outcome.cost,
                "rounds": handle.outcome.rounds,
            }
        if handle.error is not None:
            document["error"] = (
                f"{type(handle.error).__name__}: {handle.error}"
            )
        path = self._path(handle.id, "result.json")
        temp = f"{path}.tmp"
        with open(temp, "w", encoding="utf-8") as sink:
            json.dump(document, sink, indent=2, sort_keys=True)
            sink.write("\n")
        os.replace(temp, path)

    def recover(self) -> list[QueryHandle]:
        """Re-submit every unfinished query found in ``state_dir``.

        A query is unfinished when its spec document has no result
        document.  Queries with a checkpoint resume from it (``spr`` /
        ``bdp``) on their *private* restored cache — resume determinism
        outranks cache sharing — and checkpoint-less or non-resumable
        queries restart from scratch, which is deterministic anyway
        (same spec, same seed).  Returns the revived handles.
        """
        if self.state_dir is None:
            raise ServiceError("recover() needs a state_dir")
        import json

        revived: list[QueryHandle] = []
        for entry in sorted(os.listdir(self.state_dir)):
            if not entry.endswith(".spec.json"):
                continue
            id = entry[: -len(".spec.json")]
            if os.path.exists(self._path(id, "result.json")):
                continue
            with open(self._path(id, "spec.json"), encoding="utf-8") as src:
                document = json.load(src)
            spec = spec_from_document(document)
            with self._lock:
                handle = QueryHandle(self, id, spec)
                self._handles[id] = handle
                numeric = int(id[1:]) if id[1:].isdigit() else 0
                self._next_id = max(self._next_id, numeric + 1)
            checkpoint = self._path(id, "ckpt")
            if spec.resumable and os.path.exists(checkpoint):
                handle.resume_from = checkpoint
            revived.append(handle)
            if self.admission.try_admit(handle.commitment):
                self._run_queue.put(handle)
            else:
                with self._lock:
                    self._admission_parked.append(handle)
        return revived

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def queries_document(self) -> dict:
        """The tenant-aware ``/queries`` payload (rows + service totals)."""
        handles = self.handles()
        statuses = [handle.status() for handle in handles]
        return {
            "queries": [handle.to_document() for handle in handles],
            "service": {
                "active": statuses.count("running"),
                "queued": statuses.count("queued"),
                "finished": sum(
                    status in ("done", "failed", "cancelled")
                    for status in statuses
                ),
                "capacity": self.admission.capacity,
                "committed_budget": self.admission.committed,
                "cache": self.cache.stats(),
                "marketplace": self.marketplace.snapshot(),
            },
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting queries and shut the workers down.

        With ``wait`` (the default) already-admitted queries drain
        first; otherwise they are cancelled.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if not wait:
            for handle in self.handles():
                if not handle.done:
                    handle.cancel()
        for _ in self._workers:
            self._run_queue.put(_STOP)
        for worker in self._workers:
            worker.join(timeout=timeout)

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def _process_registry() -> MetricsRegistry:
    from ..telemetry import get_registry

    return get_registry()
