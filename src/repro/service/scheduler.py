"""Fair microtask arbitration and admission control for the service.

:class:`FairMarketplace` models the one thing concurrent queries contend
for — the crowd's round-by-round microtask throughput — as a small number
of *slots* arbitrated by **deficit round-robin over per-round draw
requests**.  Every query owns a :class:`MarketplaceLane`; the lane's
:meth:`~MarketplaceLane.gate` is installed as its session's spend gate
(:meth:`~repro.crowd.session.CrowdSession.set_spend_gate`), so before a
round's microtasks are charged the query releases its slot and re-queues
for the next one.  Between any two rounds of a saturating tenant, every
other tenant's head request gets a chance to grant — the classic DRR
no-starvation property, measured in microtasks rather than packets: each
visit adds ``quantum`` microtasks to the tenant's deficit and grants its
queued requests while the deficit covers them, so tenants with many
cheap rounds and tenants with few expensive rounds converge to the same
long-run microtask share.

When a single query runs uncontended it takes the fast path — one lock
acquisition, no queueing — which is what keeps per-query service
overhead within a few percent of a standalone session.

:class:`AdmissionController` is the front door's capacity check: the sum
of the cost ceilings of running and queued queries (each query's
committed budget) may not exceed the service capacity.  Over capacity,
the ``"queue"`` policy parks new queries until capacity frees and the
``"reject"`` policy raises :class:`~repro.errors.AdmissionError`.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING

from ..errors import AdmissionError, QueryCancelledError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import MetricsRegistry

__all__ = ["FairMarketplace", "MarketplaceLane", "AdmissionController"]


class _Request:
    """One parked draw request: a lane asking to spend ``amount`` microtasks."""

    __slots__ = ("lane", "amount", "granted", "cancelled")

    def __init__(self, lane: "MarketplaceLane", amount: int) -> None:
        self.lane = lane
        self.amount = amount
        self.granted = False
        self.cancelled = False


class MarketplaceLane:
    """A query's handle on the marketplace: at most one slot at a time.

    Construct through :meth:`FairMarketplace.open_lane`.  The lane's
    :meth:`gate` matches the session spend-gate signature; install it
    with :meth:`CrowdSession.set_spend_gate` and call :meth:`close` when
    the query leaves the marketplace (always — a leaked slot starves the
    fleet).
    """

    def __init__(self, market: "FairMarketplace", tenant: str) -> None:
        self._market = market
        self.tenant = tenant
        self._holds_slot = False
        self._abort_exc: BaseException | None = None
        self._closed = False

    def gate(self, microtasks: int) -> None:
        """Block until the marketplace grants this round's ``microtasks``."""
        self._market._gate(self, int(microtasks))

    def abort(self, exc: BaseException | None = None) -> None:
        """Make every current and future :meth:`gate` call raise ``exc``.

        Used by cancellation: a lane parked in the wait queue wakes up
        and raises instead of spending.  Defaults to
        :class:`~repro.errors.QueryCancelledError`.
        """
        if exc is None:
            exc = QueryCancelledError(f"query lane for {self.tenant!r} aborted")
        self._market._abort(self, exc)

    def close(self) -> None:
        """Release the held slot (idempotent)."""
        self._market._close(self)


class FairMarketplace:
    """Deficit-round-robin arbitration of crowd throughput across tenants.

    Parameters
    ----------
    slots:
        Rounds that may be in flight simultaneously — the crowd
        platform's modeled round throughput.  Must be >= 1; any value
        keeps the marketplace deadlock-free (deficits accumulate until
        the head request grants).
    quantum:
        Microtasks added to a tenant's deficit per DRR visit.  Smaller
        quanta interleave tenants more finely; the default of 500 is a
        few racing rounds' worth.
    registry:
        Metrics registry for the per-tenant grant/wait counters
        (defaults to the process registry at construction).
    """

    def __init__(
        self,
        slots: int = 4,
        quantum: int = 500,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if quantum < 1:
            raise ValueError(f"quantum must be >= 1, got {quantum}")
        if registry is None:
            from ..telemetry import get_registry

            registry = get_registry()
        self.slots = slots
        self.quantum = quantum
        self._registry = registry
        self._cond = threading.Condition()
        self._free = slots
        self._queues: dict[str, deque[_Request]] = {}
        self._deficit: dict[str, float] = {}
        self._order: list[str] = []  # tenants with parked requests, RR order
        self._rr_index = 0
        self._granted_counters: dict[str, object] = {}
        self._wait_counters: dict[str, object] = {}

    # ------------------------------------------------------------------
    def open_lane(self, tenant: str) -> MarketplaceLane:
        """A fresh lane for one query of ``tenant``."""
        if not tenant:
            raise ValueError("tenant name must be non-empty")
        return MarketplaceLane(self, tenant)

    def _granted(self, tenant: str, amount: int) -> None:
        counter = self._granted_counters.get(tenant)
        if counter is None:
            counter = self._granted_counters[tenant] = self._registry.counter(
                "service_granted_microtasks_total", tenant=tenant
            )
        counter.add(amount)

    def _waited(self, tenant: str) -> None:
        counter = self._wait_counters.get(tenant)
        if counter is None:
            counter = self._wait_counters[tenant] = self._registry.counter(
                "service_grant_waits_total", tenant=tenant
            )
        counter.inc()

    # ------------------------------------------------------------------
    def _gate(self, lane: MarketplaceLane, amount: int) -> None:
        with self._cond:
            if lane._abort_exc is not None:
                raise lane._abort_exc
            self._release_locked(lane)
            queue = self._queues.get(lane.tenant)
            if self._free > 0 and not self._order and not queue:
                # Uncontended fast path: grant in place.
                self._free -= 1
                lane._holds_slot = True
                self._granted(lane.tenant, amount)
                return
            request = _Request(lane, amount)
            if queue is None:
                queue = self._queues[lane.tenant] = deque()
            if not queue and lane.tenant not in self._order:
                self._order.append(lane.tenant)
            queue.append(request)
            self._waited(lane.tenant)
            self._pump_locked()
            while not request.granted and lane._abort_exc is None:
                self._cond.wait(timeout=1.0)
            if request.granted:
                return
            # Aborted while parked: withdraw and hand the turn onward.
            request.cancelled = True
            self._pump_locked()
            raise lane._abort_exc

    def _pump_locked(self) -> None:
        """Grant parked requests by DRR while free slots remain."""
        granted_any = False
        while self._free > 0 and self._order:
            pos = self._rr_index % len(self._order)
            tenant = self._order[pos]
            queue = self._queues[tenant]
            while queue and queue[0].cancelled:
                queue.popleft()
            if queue:
                self._deficit[tenant] = self._deficit.get(tenant, 0.0) + self.quantum
            while queue and self._free > 0:
                head = queue[0]
                if head.cancelled:
                    queue.popleft()
                    continue
                if self._deficit[tenant] < head.amount:
                    break
                queue.popleft()
                self._deficit[tenant] -= head.amount
                self._free -= 1
                head.lane._holds_slot = True
                head.granted = True
                self._granted(tenant, head.amount)
                granted_any = True
            if queue:
                self._rr_index = (pos + 1) % len(self._order)
            else:
                # Empty queue: retire the tenant and reset its deficit so
                # idle time never banks future priority.
                self._deficit.pop(tenant, None)
                self._order.pop(pos)
                if self._order:
                    self._rr_index = pos % len(self._order)
                else:
                    self._rr_index = 0
        if granted_any:
            self._cond.notify_all()

    def _release_locked(self, lane: MarketplaceLane) -> None:
        if lane._holds_slot:
            lane._holds_slot = False
            self._free += 1

    def _abort(self, lane: MarketplaceLane, exc: BaseException) -> None:
        with self._cond:
            lane._abort_exc = exc
            self._cond.notify_all()

    def _close(self, lane: MarketplaceLane) -> None:
        with self._cond:
            if lane._closed:
                return
            lane._closed = True
            self._release_locked(lane)
            self._pump_locked()
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-ready view for the observatory's service document."""
        with self._cond:
            return {
                "slots": self.slots,
                "free_slots": self._free,
                "quantum": self.quantum,
                "waiting": {
                    tenant: len(queue)
                    for tenant, queue in sorted(self._queues.items())
                    if queue
                },
            }


class AdmissionController:
    """Committed-budget bookkeeping behind :meth:`QueryService.submit`.

    ``capacity`` bounds the sum of cost ceilings of admitted-but-
    unfinished queries; ``None`` admits everything.  ``policy`` selects
    what happens when a submission would exceed it: ``"queue"`` parks the
    query until capacity frees, ``"reject"`` raises
    :class:`~repro.errors.AdmissionError`.
    """

    def __init__(
        self,
        capacity: int | None = None,
        policy: str = "queue",
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if policy not in ("queue", "reject"):
            raise ValueError(
                f"admission policy must be 'queue' or 'reject', got {policy!r}"
            )
        if registry is None:
            from ..telemetry import get_registry

            registry = get_registry()
        self.capacity = capacity
        self.policy = policy
        self._lock = threading.Lock()
        self._committed = 0
        self._decisions = {
            decision: registry.counter(
                "service_admissions_total", decision=decision
            )
            for decision in ("admitted", "queued", "rejected")
        }

    @property
    def committed(self) -> int:
        """Budget committed to admitted-but-unfinished queries."""
        with self._lock:
            return self._committed

    def try_admit(self, commitment: int) -> bool:
        """Commit ``commitment`` if capacity allows; the admission decision.

        Returns ``True`` (admitted) or ``False`` (over capacity, caller
        queues).  Under the ``"reject"`` policy an over-capacity
        submission raises :class:`~repro.errors.AdmissionError` instead
        of returning ``False``.
        """
        with self._lock:
            if (
                self.capacity is None
                or self._committed + commitment <= self.capacity
            ):
                self._committed += commitment
                self._decisions["admitted"].inc()
                return True
            if self.policy == "reject":
                self._decisions["rejected"].inc()
                raise AdmissionError(
                    f"committed budget {self._committed} + {commitment} "
                    f"exceeds service capacity {self.capacity}"
                )
            self._decisions["queued"].inc()
            return False

    def readmit(self, commitment: int) -> bool:
        """Like :meth:`try_admit` for a previously queued query (never raises)."""
        with self._lock:
            if (
                self.capacity is None
                or self._committed + commitment <= self.capacity
            ):
                self._committed += commitment
                self._decisions["admitted"].inc()
                return True
            return False

    def release(self, commitment: int) -> None:
        """Return a finished query's commitment to the pool."""
        with self._lock:
            self._committed -= commitment
