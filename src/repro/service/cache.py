"""The cross-query judgment cache: tenant namespaces, LRU bounds, counters.

Judgments are *reusable* (§5.3) — and in a multi-tenant service they are
reusable **across queries**: two queries from the same tenant over the
same items share every purchased comparison.  :class:`SharedJudgmentCache`
manages one :class:`TenantCache` per tenant namespace (tenants never see
each other's judgments — they may be paying different crowds different
rates, and cross-tenant reuse would leak information about another
tenant's data), a global byte/entry-bounded LRU over all stored pairs,
and per-tenant hit/miss/eviction counters on the service's
:class:`~repro.telemetry.MetricsRegistry`.

A :class:`TenantCache` *is a* :class:`~repro.core.cache.JudgmentCache`,
so a per-query :class:`~repro.crowd.session.CrowdSession` plugs into it
unchanged via :meth:`CrowdSession.use_cache`.  Differences from the
single-query base class:

* every public entry point takes the shared lock (queries from the same
  tenant run concurrently on different worker threads);
* :meth:`defer_rows` stays deferred — the base class drains the queue
  before any read or direct write returns, and every entry point here
  holds the shared lock, so a concurrent query drains (under the lock)
  before it can observe a bag; LRU/byte accounting piggybacks on the
  drain instead of running per round, keeping the service's per-round
  bookkeeping tax identical to a standalone session's;
* reads and writes refresh the pair's LRU recency, and writes trigger
  eviction when the global bounds are exceeded.

Eviction drops whole bags, never truncates them: any racing pool holding
views into an evicted bag keeps valid arrays (numpy keeps the buffer
alive), and the pair's next read is simply a miss — the evidence is
repurchased, moments are recomputed from the fresh bag, and no running
moment is ever corrupted.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import TYPE_CHECKING

import numpy as np

from ..core.cache import JudgmentCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..telemetry import MetricsRegistry

__all__ = ["SharedJudgmentCache", "TenantCache"]

#: Accounting cost of one cached pair beyond its samples: the dict slots,
#: the key tuple, and the bag header.  Keeps the byte bound meaningful for
#: many tiny bags.
_ENTRY_OVERHEAD_BYTES = 128


class TenantCache(JudgmentCache):
    """One tenant's namespace inside a :class:`SharedJudgmentCache`.

    Construct through :meth:`SharedJudgmentCache.tenant`, never directly.
    Thread-safe; safe to share between every concurrent query of the
    tenant.
    """

    def __init__(self, shared: "SharedJudgmentCache", tenant: str) -> None:
        super().__init__()
        self._shared = shared
        self._tenant = tenant
        self._lock = shared._lock
        registry = shared.registry
        self._hit_counter = registry.counter(
            "service_cache_hits_total", tenant=tenant
        )
        self._miss_counter = registry.counter(
            "service_cache_misses_total", tenant=tenant
        )
        self._eviction_counter = registry.counter(
            "service_cache_evictions_total", tenant=tenant
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Canonical keys touched by deferred batches, accounted (LRU
        #: recency + byte sizes) when the queue next drains.  Ordered —
        #: recency must follow write order, as the eager path's would.
        self._pending_keys: dict[tuple[int, int], None] = {}

    # ------------------------------------------------------------------
    # hit/miss accounting (a hit = a read that found a non-empty bag)
    # ------------------------------------------------------------------
    def _record_reads(self, hits: int, misses: int) -> None:
        if hits:
            self.hits += hits
            self._hit_counter.add(hits)
        if misses:
            self.misses += misses
            self._miss_counter.add(misses)

    # ------------------------------------------------------------------
    # reads
    # ------------------------------------------------------------------
    def count(self, i: int, j: int) -> int:
        with self._lock:
            return super().count(i, j)

    def bag(self, i: int, j: int) -> np.ndarray:
        with self._lock:
            key, _ = self._key(i, j)
            values = super().bag(i, j)
            if values.size:
                self._shared._touch(self._tenant, key)
            self._record_reads(int(values.size > 0), int(values.size == 0))
            return values

    def bags_for(self, lefts: np.ndarray, rights: np.ndarray) -> list[np.ndarray]:
        with self._lock:
            out = super().bags_for(lefts, rights)
            hits = 0
            for (i, j), values in zip(zip(lefts.tolist(), rights.tolist()), out):
                if values.size:
                    hits += 1
                    self._shared._touch(
                        self._tenant, (i, j) if i < j else (j, i)
                    )
            self._record_reads(hits, len(out) - hits)
            return out

    def moments(self, i: int, j: int) -> tuple[int, float, float]:
        with self._lock:
            n, mean, var = super().moments(i, j)
            if n:
                key, _ = self._key(i, j)
                self._shared._touch(self._tenant, key)
            return n, mean, var

    def pairs(self) -> list[tuple[int, int]]:
        with self._lock:
            return super().pairs()

    @property
    def total_samples(self) -> int:
        with self._lock:
            return JudgmentCache.total_samples.fget(self)  # type: ignore[attr-defined]

    @property
    def pair_count(self) -> int:
        with self._lock:
            return JudgmentCache.pair_count.fget(self)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def append(self, i: int, j: int, values: np.ndarray) -> None:
        with self._lock:
            super().append(i, j, values)
            key, _ = self._key(i, j)
            self._shared._account(self, [key])

    def append_rows(self, lefts, rights, values, counts) -> None:
        with self._lock:
            super().append_rows(lefts, rights, values, counts)
            counts_list = (
                counts.tolist() if isinstance(counts, np.ndarray) else list(counts)
            )
            touched = []
            for i, j, width in zip(lefts.tolist(), rights.tolist(), counts_list):
                if width:
                    touched.append((i, j) if i < j else (j, i))
            self._shared._account(self, touched)

    def defer_rows(self, lefts, rights, values, counts) -> None:
        """Queue a round's rows; account them when the queue drains.

        The base class already guarantees no caller can observe an
        un-drained queue (every read and direct-write entry point drains
        first), and every entry point of this class holds the shared
        lock — so deferral is just as safe with concurrent tenants as it
        is single-owner, and the service keeps the deferred path's
        per-round cost.  The touched keys are remembered so
        :meth:`_drain` can refresh LRU recency and byte accounting for
        exactly the pairs the batches wrote.
        """
        with self._lock:
            super().defer_rows(lefts, rights, values, counts)
            pending = self._pending_keys
            counts_list = (
                counts.tolist() if isinstance(counts, np.ndarray) else list(counts)
            )
            for i, j, width in zip(lefts.tolist(), rights.tolist(), counts_list):
                if width:
                    key = (i, j) if i < j else (j, i)
                    pending.pop(key, None)  # re-touch moves to the hot end
                    pending[key] = None

    def _drain(self) -> None:
        super()._drain()
        if self._pending_keys:
            keys = list(self._pending_keys)
            self._pending_keys.clear()
            self._shared._account(self, keys)

    def settle(self) -> None:
        with self._lock:
            super().settle()

    def clear(self) -> None:
        with self._lock:
            self._pending_keys.clear()
            super().clear()
            self._shared._forget_tenant(self._tenant)

    # internal: called by the shared manager under the lock
    def _evict(self, key: tuple[int, int]) -> int:
        """Drop ``key``'s bag; returns the sample count removed."""
        bag = self._bags.pop(key, None)
        if bag is None:
            return 0
        self._total -= bag.size
        self.evictions += 1
        self._eviction_counter.inc()
        return bag.size


class SharedJudgmentCache:
    """Cross-query judgment storage for the service: one namespace per tenant.

    Parameters
    ----------
    max_entries:
        Global bound on cached pairs across all tenants (``None`` =
        unbounded).  The least-recently-*used* pair is evicted first;
        both reads and writes refresh recency.
    max_bytes:
        Global bound on the accounted size of stored judgments
        (8 bytes per sample plus a fixed per-pair overhead).
    registry:
        The metrics registry the per-tenant counters and the global
        entry/byte gauges report into; defaults to the process registry
        at construction time.
    """

    def __init__(
        self,
        max_entries: int | None = None,
        max_bytes: int | None = None,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError(f"max_bytes must be >= 1, got {max_bytes}")
        if registry is None:
            from ..telemetry import get_registry

            registry = get_registry()
        self.registry = registry
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._tenants: dict[str, TenantCache] = {}
        #: (tenant, canonical pair) -> accounted bytes, in recency order
        #: (oldest first).
        self._lru: OrderedDict[tuple[str, tuple[int, int]], int] = OrderedDict()
        self._bytes = 0
        self._entries_gauge = registry.gauge("service_cache_entries")
        self._bytes_gauge = registry.gauge("service_cache_bytes")

    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantCache:
        """The (lazily created) cache namespace for tenant ``name``."""
        if not name:
            raise ValueError("tenant name must be non-empty")
        with self._lock:
            cache = self._tenants.get(name)
            if cache is None:
                cache = self._tenants[name] = TenantCache(self, name)
            return cache

    def tenants(self) -> list[str]:
        """Names of every tenant namespace created so far."""
        with self._lock:
            return sorted(self._tenants)

    @property
    def entries(self) -> int:
        """Cached pairs across all tenants."""
        with self._lock:
            return len(self._lru)

    @property
    def bytes(self) -> int:
        """Accounted bytes across all tenants."""
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        """A JSON-ready snapshot for the observatory's service document."""
        with self._lock:
            return {
                "entries": len(self._lru),
                "bytes": self._bytes,
                "max_entries": self.max_entries,
                "max_bytes": self.max_bytes,
                "tenants": {
                    name: {
                        "pairs": len(cache._bags),
                        "hits": cache.hits,
                        "misses": cache.misses,
                        "evictions": cache.evictions,
                    }
                    for name, cache in sorted(self._tenants.items())
                },
            }

    # ------------------------------------------------------------------
    # internal accounting (callers hold the lock)
    # ------------------------------------------------------------------
    def _touch(self, tenant: str, key: tuple[int, int]) -> None:
        entry = (tenant, key)
        if entry in self._lru:
            self._lru.move_to_end(entry)

    def _account(
        self, cache: TenantCache, keys: list[tuple[int, int]]
    ) -> None:
        """Refresh sizes/recency for freshly written ``keys``, then evict."""
        lru = self._lru
        for key in keys:
            bag = cache._bags.get(key)
            if bag is None:  # zero-width rows never created a bag
                continue
            entry = (cache._tenant, key)
            new_bytes = 8 * bag.size + _ENTRY_OVERHEAD_BYTES
            self._bytes += new_bytes - lru.get(entry, 0)
            lru[entry] = new_bytes
            lru.move_to_end(entry)
        self._evict_over_bounds(protect=len(keys))

    def _over_bounds(self) -> bool:
        if self.max_entries is not None and len(self._lru) > self.max_entries:
            return True
        if self.max_bytes is not None and self._bytes > self.max_bytes:
            return True
        return False

    def _evict_over_bounds(self, protect: int = 0) -> None:
        """Pop least-recently-used pairs until back under both bounds.

        ``protect`` entries at the hot end of the LRU (the ones the
        current write just touched) are never evicted — a single
        over-sized write may transiently exceed the bounds rather than
        evict its own in-flight evidence.
        """
        lru = self._lru
        while self._over_bounds() and len(lru) > protect:
            (tenant, key), accounted = lru.popitem(last=False)
            self._bytes -= accounted
            cache = self._tenants.get(tenant)
            if cache is not None:
                cache._evict(key)
        self._entries_gauge.set(len(lru))
        self._bytes_gauge.set(self._bytes)

    def _forget_tenant(self, tenant: str) -> None:
        """Drop LRU accounting for ``tenant`` (its cache was cleared)."""
        for entry in [e for e in self._lru if e[0] == tenant]:
            self._bytes -= self._lru.pop(entry)
        self._entries_gauge.set(len(self._lru))
        self._bytes_gauge.set(self._bytes)
