"""Multi-tenant query service behind the unified :class:`QuerySpec` front door.

The package splits along the service's moving parts:

``spec``
    :class:`QuerySpec` — the declarative, JSON-round-trippable query
    description every door accepts.
``runner``
    The canonical spec → session → :data:`~repro.algorithms.ALGORITHMS`
    dispatch (:func:`run_query`, :func:`execute_spec`), shared by the
    service workers, the CLI, and direct library calls.
``cache``
    :class:`SharedJudgmentCache` — tenant-namespaced, LRU-bounded
    cross-query judgment storage.
``scheduler``
    :class:`FairMarketplace` (deficit-round-robin microtask arbitration)
    and :class:`AdmissionController` (committed-budget capacity checks).
``service``
    :class:`QueryService` / :class:`QueryHandle` — submission, worker
    pool, SLAs, durability, recovery.

See ``docs/service.md`` for the operator's view.
"""

from .cache import SharedJudgmentCache, TenantCache
from .runner import execute_spec, resume_session, run_query, session_for
from .scheduler import AdmissionController, FairMarketplace, MarketplaceLane
from .service import QueryHandle, QueryService
from .spec import QuerySpec, spec_from_document

__all__ = [
    "AdmissionController",
    "FairMarketplace",
    "MarketplaceLane",
    "QueryHandle",
    "QueryService",
    "QuerySpec",
    "SharedJudgmentCache",
    "TenantCache",
    "execute_spec",
    "resume_session",
    "run_query",
    "session_for",
    "spec_from_document",
]
