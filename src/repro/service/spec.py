"""The declarative query description every front door accepts.

A :class:`QuerySpec` says *what* to answer — method, ``k``, the item
universe, the comparison configuration, the stopping policy riding inside
it, the execution policy, per-query SLAs, and the owning tenant — and
deliberately not *how*: the service (or the one-shot
:func:`~repro.service.runner.run_query`) turns it into a seeded
:class:`~repro.crowd.session.CrowdSession` plus an
:data:`~repro.algorithms.ALGORITHMS` dispatch.  One spec therefore runs
identically through ``crowd-topk query``, ``crowd-topk submit``,
``QueryService.submit``, or a direct library call — same seed, same
draws, same top-k.

Specs are frozen and JSON-round-trippable (:meth:`QuerySpec.to_document`
/ :func:`spec_from_document`); the service persists the document next to
the query's checkpoint so a killed process can rebuild and resume every
in-flight query.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import TYPE_CHECKING, Mapping

from ..algorithms import ALGORITHMS
from ..config import ComparisonConfig, comparison_config_from_dict
from ..errors import ConfigError
from ..execution import DEFAULT_EXECUTION, ExecutionPolicy, execution_policy_from_dict

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..datasets.base import Dataset

__all__ = ["QuerySpec", "spec_from_document"]

#: Methods with a checkpoint-resume entry point; every other method
#: restarts from scratch (deterministically, same seed) after a crash.
RESUMABLE_METHODS = ("spr", "bdp")


@dataclass(frozen=True)
class QuerySpec:
    """One declarative top-k query.

    Attributes
    ----------
    method:
        Algorithm name from :data:`repro.algorithms.ALGORITHMS`
        (``"spr"``, ``"bdp"``, ``"tournament"``, …).
    k:
        Result size.
    dataset:
        Name of a built-in dataset providing items and crowd.  Required
        for durable (service) queries — a checkpoint can only be resumed
        if the oracle is reconstructible by name.
    items:
        Explicit working-set item ids; ``None`` defers to ``n_items``.
    n_items:
        Deterministic first-``n`` subset of the dataset (by id order)
        when ``items`` is ``None``; ``None`` means all items.
    comparison:
        The per-comparison configuration (confidence, budget ``B``,
        batch ``η``, estimator, resilience).  The stopping policy of a
        comparison lives here (``estimator`` + ``pac_epsilon``).
    execution:
        The :class:`~repro.execution.ExecutionPolicy`; its
        ``group_engine`` field overrides the comparison config's.
    seed:
        Session seed — the whole query is a deterministic function of
        ``(spec, oracle)``.
    tenant:
        Owning tenant.  Scopes the shared judgment cache namespace, the
        fair-scheduling lane, and the per-tenant metrics.
    cost_sla:
        Hard microtask ceiling for the query (session
        ``max_total_cost``); crossing it raises
        :class:`~repro.errors.BudgetExhaustedError`.  Also the query's
        committed budget for admission control.
    latency_sla:
        Hard ceiling on latency rounds; crossing it raises
        :class:`~repro.errors.SLAExceededError` at the next spend.
    name:
        Display name for the observatory; defaults to
        ``tenant/method:k=K``.
    method_kwargs:
        Extra keyword arguments forwarded to the algorithm entry point
        (must be JSON-serializable for durable queries).
    """

    method: str = "spr"
    k: int = 10
    dataset: str | None = "jester"
    items: tuple[int, ...] | None = None
    n_items: int | None = None
    comparison: ComparisonConfig = field(default_factory=ComparisonConfig)
    execution: ExecutionPolicy = DEFAULT_EXECUTION
    seed: int = 0
    tenant: str = "default"
    cost_sla: int | None = None
    latency_sla: int | None = None
    name: str | None = None
    method_kwargs: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.method not in ALGORITHMS:
            raise ConfigError(
                f"unknown method {self.method!r}; "
                f"expected one of {sorted(ALGORITHMS)}"
            )
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if not self.tenant:
            raise ConfigError("tenant must be non-empty")
        if self.dataset is None and self.items is None:
            raise ConfigError("a spec needs a dataset name or explicit items")
        if self.items is not None:
            object.__setattr__(self, "items", tuple(int(i) for i in self.items))
        if self.n_items is not None and self.n_items < self.k:
            raise ConfigError(
                f"n_items ({self.n_items}) must be >= k ({self.k})"
            )
        if self.cost_sla is not None and self.cost_sla < 1:
            raise ConfigError(f"cost_sla must be >= 1, got {self.cost_sla}")
        if self.latency_sla is not None and self.latency_sla < 1:
            raise ConfigError(
                f"latency_sla must be >= 1, got {self.latency_sla}"
            )
        if not isinstance(self.comparison, ComparisonConfig):
            raise ConfigError(
                f"comparison must be a ComparisonConfig, "
                f"got {type(self.comparison).__name__}"
            )
        if not isinstance(self.execution, ExecutionPolicy):
            raise ConfigError(
                f"execution must be an ExecutionPolicy, "
                f"got {type(self.execution).__name__}"
            )

    # ------------------------------------------------------------------
    @property
    def display_name(self) -> str:
        """The observatory label for this query."""
        if self.name:
            return self.name
        return f"{self.tenant}/{self.method}:k={self.k}"

    @property
    def resumable(self) -> bool:
        """Whether the method supports checkpoint resume."""
        return self.method in RESUMABLE_METHODS

    def resolved_config(self) -> ComparisonConfig:
        """The comparison config with the execution policy applied."""
        return self.execution.apply_to_config(self.comparison)

    def resolve_items(self, dataset: "Dataset") -> list[int]:
        """The concrete working-set ids for this spec over ``dataset``.

        Explicit ``items`` win; otherwise the deterministic first
        ``n_items`` of the dataset by id order (``rng=None`` subsetting),
        so the same spec always races the same items.
        """
        if self.items is not None:
            return [int(i) for i in self.items]
        working = dataset.sample_items(self.n_items)
        return working.ids.tolist()

    def with_(self, **changes: object) -> "QuerySpec":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def to_document(self) -> dict:
        """A JSON-ready dict (inverse of :func:`spec_from_document`)."""
        return {
            "method": self.method,
            "k": self.k,
            "dataset": self.dataset,
            "items": list(self.items) if self.items is not None else None,
            "n_items": self.n_items,
            "comparison": asdict(self.comparison),
            "execution": self.execution.to_document(),
            "seed": self.seed,
            "tenant": self.tenant,
            "cost_sla": self.cost_sla,
            "latency_sla": self.latency_sla,
            "name": self.name,
            "method_kwargs": dict(self.method_kwargs),
        }


def spec_from_document(data: Mapping[str, object]) -> QuerySpec:
    """Revive a :class:`QuerySpec` from :meth:`QuerySpec.to_document`.

    Tolerates partial documents (HTTP submissions usually carry only a
    few fields); everything absent takes the spec's default.
    """
    payload = dict(data)
    payload.pop("id", None)  # service documents carry the handle id alongside
    unknown = set(payload) - {f.name for f in QuerySpec.__dataclass_fields__.values()}
    if unknown:
        raise ConfigError(f"unknown QuerySpec fields: {sorted(unknown)}")
    comparison = payload.get("comparison")
    if isinstance(comparison, Mapping):
        payload["comparison"] = comparison_config_from_dict(dict(comparison))
    execution = payload.get("execution")
    if isinstance(execution, Mapping):
        payload["execution"] = execution_policy_from_dict(dict(execution))
    items = payload.get("items")
    if items is not None:
        payload["items"] = tuple(int(i) for i in items)  # type: ignore[arg-type]
    return QuerySpec(**payload)  # type: ignore[arg-type]
