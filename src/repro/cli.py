"""Command-line interface.

Three subcommands cover the common workflows without writing Python:

* ``crowd-topk datasets`` — list the built-in synthetic datasets.
* ``crowd-topk query`` — answer one top-k query with any method and print
  the result, its cost, and its quality against the ground truth.
* ``crowd-topk explain`` — answer a traced query and print per-phase and
  per-item cost attribution plus each returned item's comparison trail.
* ``crowd-topk experiment`` — regenerate one of the paper's tables or
  figures at a chosen run count.
* ``crowd-topk validate`` — run the statistical validation suites
  (empirical guarantee checking, runtime invariants, golden traces).
* ``crowd-topk serve`` — run the multi-tenant query service behind a
  live observatory; accepts queries over HTTP.
* ``crowd-topk submit`` — send a :class:`~repro.service.QuerySpec` to a
  running service and (optionally) wait for the answer.

Examples::

    crowd-topk query --dataset jester --method spr -k 10 --seed 7
    crowd-topk query --dataset imdb --method heapsort -k 5 --n-items 200
    crowd-topk query --dataset imdb --method bdp -k 5 --n-items 30
    crowd-topk query --method spr --telemetry /tmp/query.jsonl
    crowd-topk query --method spr --checkpoint /tmp/q.ckpt
    crowd-topk query --method spr --checkpoint /tmp/q.ckpt --resume
    crowd-topk query --method spr --serve 127.0.0.1:9188
    crowd-topk query --method spr --flight-recorder /tmp/flight.json
    crowd-topk serve 127.0.0.1:9188 --workers 4 --capacity 500000
    crowd-topk serve :0 --state-dir /tmp/svc --recover
    crowd-topk submit --server http://127.0.0.1:9188 --method spr -k 5 \
        --dataset synthetic --n-items 20 --tenant acme --wait
    crowd-topk explain --dataset imdb -k 5 --n-items 60 --json
    crowd-topk -v experiment table7 --runs 3
    crowd-topk experiment fig8 --dataset book --runs 2
    crowd-topk experiment fig9 --runs 10 --jobs 4
    crowd-topk experiment fig9 --runs 10 --engine lattice
    crowd-topk validate --suite guarantees --jobs 4 --report report.json
    crowd-topk validate --suite golden --update-golden

``--jobs N`` fans the independent runs of an experiment out over N worker
processes (0 = one per CPU); results are bit-for-bit identical to the
serial run (see docs/performance.md).

``--telemetry PATH`` streams phase spans to a JSONL file, appends the full
metrics snapshot, and prints a summary table; ``--serve HOST:PORT`` keeps
a live HTTP observatory (``/metrics``, ``/healthz``, ``/queries``,
``/events``) up for the duration of the query; ``--flight-recorder PATH``
dumps the bounded event ring to JSON on completion or crash; ``-v`` /
``-vv`` raise the ``repro`` logger to INFO / DEBUG (see
docs/observability.md).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
from collections.abc import Sequence

from . import __version__
from .algorithms import ALGORITHMS, resume_bdp_topk
from .core.spr import resume_spr_topk
from .crowd.session import CrowdSession
from .datasets import DATASET_NAMES, load_dataset
from .experiments import (
    ExperimentParams,
    use_engine,
    use_jobs,
    run_accuracy,
    run_appendix_d,
    run_non_confidence,
    run_peopleage,
    run_robustness,
    run_scalability,
    run_spr_vs_bdp,
    run_stein_vs_student,
    run_summary,
    run_sweet_spot,
    run_table3,
    run_table4,
    run_table7,
)
from .metrics import ndcg_at_k, top_k_precision
from .planner import plan_query
from .reports import explain_query
from .service import QuerySpec, execute_spec, session_for
from .telemetry import (
    FlightRecorder,
    JsonlSink,
    MetricsRegistry,
    ObservatoryServer,
    get_query_board,
    parse_address,
    use_registry,
)
from .tracing import trace_session
from .validation import run_golden_suite, run_guarantee_suite, run_invariant_suite
from .validation.golden import DEFAULT_GOLDEN_DIR
from .validation.guarantees import DEFAULT_ALPHAS, DEFAULT_REPLICATIONS

#: Suites in the order ``--suite all`` runs them.
VALIDATION_SUITES = ("guarantees", "invariants", "golden")

__all__ = ["main", "build_parser"]


def _configure_logging(verbosity: int) -> None:
    """Point the ``repro`` logger at stderr at the requested level."""
    if verbosity <= 0:
        return
    level = logging.INFO if verbosity == 1 else logging.DEBUG
    root = logging.getLogger("repro")
    root.setLevel(level)
    if not root.handlers:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        root.addHandler(handler)


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="crowd-topk",
        description="Crowdsourced top-k queries by confidence-aware "
        "pairwise judgments (SIGMOD'17 reproduction).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="log decision points to stderr (-v: INFO, -vv: DEBUG)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("datasets", help="list the built-in datasets")

    query = commands.add_parser("query", help="answer one top-k query")
    query.add_argument("--dataset", choices=DATASET_NAMES, default="jester")
    query.add_argument(
        "--method", choices=sorted(ALGORITHMS), default="spr"
    )
    query.add_argument("-k", type=int, default=10, help="result size")
    query.add_argument(
        "--n-items", type=int, default=None, help="random item subset (default: all)"
    )
    query.add_argument("--confidence", type=float, default=0.98)
    query.add_argument("--budget", type=int, default=1000)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write phase spans and a metrics snapshot to a JSONL file",
    )
    query.add_argument(
        "--checkpoint", metavar="PATH", default=None,
        help="atomically checkpoint the query to PATH at round boundaries "
        "(spr and bdp); pair with --resume to continue a killed run",
    )
    query.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="ROUNDS",
        help="latency rounds between checkpoints (default 1)",
    )
    query.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint instead of starting fresh; the "
        "resumed query reaches the identical top-k at identical total cost",
    )
    query.add_argument(
        "--serve", metavar="HOST:PORT", default=None,
        help="serve /metrics, /healthz, /queries and /events over HTTP "
        "while the query runs (PORT alone binds 127.0.0.1; port 0 picks "
        "an ephemeral port and prints it)",
    )
    query.add_argument(
        "--flight-recorder", metavar="PATH", default=None,
        help="record structured events in a bounded ring buffer; dump the "
        "tail to PATH as JSON on completion or crash",
    )

    explain = commands.add_parser(
        "explain",
        help="answer one top-k query and explain where every microtask went",
        description="Run a traced query and print per-phase and per-item "
        "cost attribution plus the comparison trail supporting each "
        "returned item.  Per-item costs plus the unattributed bucket "
        "always sum exactly to the session's total monetary cost.",
    )
    explain.add_argument("--dataset", choices=DATASET_NAMES, default="jester")
    explain.add_argument("--method", choices=sorted(ALGORITHMS), default="spr")
    explain.add_argument("-k", type=int, default=10, help="result size")
    explain.add_argument(
        "--n-items", type=int, default=None, help="random item subset (default: all)"
    )
    explain.add_argument("--confidence", type=float, default=0.98)
    explain.add_argument("--budget", type=int, default=1000)
    explain.add_argument("--seed", type=int, default=0)
    explain.add_argument(
        "--json", action="store_true",
        help="print the report as JSON instead of the table",
    )
    explain.add_argument(
        "--output", metavar="PATH", default=None,
        help="also write the JSON report to PATH",
    )

    plan = commands.add_parser(
        "plan", help="recommend a configuration for a deployment"
    )
    plan.add_argument("--n-items", type=int, required=True)
    plan.add_argument("-k", type=int, required=True)
    plan.add_argument("--target-precision", type=float, default=0.6)
    plan.add_argument("--dollars", type=float, default=None,
                      help="spending cap in US$")
    plan.add_argument("--score-spread", type=float, default=1.0)
    plan.add_argument("--noise", type=float, default=1.0)

    experiment = commands.add_parser(
        "experiment", help="regenerate a paper table/figure"
    )
    experiment.add_argument(
        "name",
        choices=sorted(_EXPERIMENTS),
        help="which table/figure to regenerate",
    )
    experiment.add_argument("--dataset", default=None, help="dataset override")
    experiment.add_argument("--runs", type=int, default=3, help="runs to average")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan runs out over N worker processes (0 = one per CPU, "
        "default 1 = serial); results are bit-for-bit identical",
    )
    experiment.add_argument(
        "--engine", choices=("pool", "lattice"), default=None,
        help="execution engine for the independent runs: 'pool' (serial "
        "at --jobs 1, process pool above) or 'lattice' (fused in-process "
        "racing of all runs; bit-identical results, no extra processes); "
        "default: the CROWD_TOPK_ENGINE environment variable, else pool",
    )

    validate = commands.add_parser(
        "validate",
        help="run the statistical validation suites",
        description="Measure the library against the paper's statistical "
        "promises: empirical error rates vs the declared alpha "
        "(guarantees), accounting identities on live sessions "
        "(invariants), and structural snapshots of pinned scenarios "
        "(golden).  Exit code 0 = all requested suites pass.",
    )
    validate.add_argument(
        "--suite", choices=VALIDATION_SUITES + ("all",), default="all",
        help="which suite to run (default: all)",
    )
    validate.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="fan guarantee replications out over N worker processes "
        "(0 = one per CPU); results are bit-for-bit identical",
    )
    validate.add_argument(
        "--replications", type=int, default=DEFAULT_REPLICATIONS,
        help="replications per guarantee check "
        f"(default {DEFAULT_REPLICATIONS})",
    )
    validate.add_argument(
        "--alpha", type=float, action="append", default=None, metavar="A",
        help="error-probability level(s) to check, repeatable "
        f"(default {list(DEFAULT_ALPHAS)})",
    )
    validate.add_argument("--seed", type=int, default=0)
    validate.add_argument(
        "--report", metavar="PATH", default=None,
        help="write the combined report as JSON",
    )
    validate.add_argument(
        "--telemetry", metavar="PATH", default=None,
        help="write validation spans and a metrics snapshot to a JSONL file",
    )
    validate.add_argument(
        "--golden-dir", metavar="DIR", default=str(DEFAULT_GOLDEN_DIR),
        help=f"directory holding golden traces (default {DEFAULT_GOLDEN_DIR})",
    )
    validate.add_argument(
        "--update-golden", action="store_true",
        help="re-pin the golden traces instead of diffing against them",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant query service over HTTP",
        description="Start a long-lived QueryService behind a live "
        "observatory.  GET /metrics, /healthz, /queries, /events plus "
        "POST /submit, POST /cancel?id=..., GET /result?id=... stay up "
        "until interrupted.",
    )
    serve.add_argument(
        "address", nargs="?", default="127.0.0.1:0",
        help="bind address HOST:PORT (default 127.0.0.1:0 — an ephemeral "
        "port, printed on startup)",
    )
    serve.add_argument(
        "--workers", type=int, default=4, metavar="N",
        help="queries running simultaneously (default 4)",
    )
    serve.add_argument(
        "--capacity", type=int, default=None, metavar="MICROTASKS",
        help="admission-control bound on the summed cost SLAs of "
        "unfinished queries (default: unbounded)",
    )
    serve.add_argument(
        "--admission", choices=("queue", "reject"), default="queue",
        help="over-capacity policy: park the query or reject the "
        "submission (default queue)",
    )
    serve.add_argument(
        "--slots", type=int, default=4, metavar="N",
        help="marketplace rounds in flight at once (default 4)",
    )
    serve.add_argument(
        "--quantum", type=int, default=500, metavar="MICROTASKS",
        help="deficit-round-robin quantum per tenant visit (default 500)",
    )
    serve.add_argument(
        "--cache-entries", type=int, default=None, metavar="N",
        help="global bound on cached pairs (default: unbounded)",
    )
    serve.add_argument(
        "--cache-bytes", type=int, default=None, metavar="BYTES",
        help="global bound on cached judgment bytes (default: unbounded)",
    )
    serve.add_argument(
        "--state-dir", metavar="DIR", default=None,
        help="persist specs, checkpoints and results under DIR so killed "
        "queries can be recovered",
    )
    serve.add_argument(
        "--recover", action="store_true",
        help="resume unfinished queries found in --state-dir on startup",
    )

    submit = commands.add_parser(
        "submit",
        help="submit a query to a running service",
        description="POST a QuerySpec document to a crowd-topk serve "
        "instance.  Prints the assigned query id; with --wait, polls "
        "/result and prints the outcome.",
    )
    submit.add_argument(
        "--server", metavar="URL", default="http://127.0.0.1:9188",
        help="service base URL (default http://127.0.0.1:9188)",
    )
    submit.add_argument(
        "--spec", metavar="PATH", default=None,
        help="JSON QuerySpec document; explicit flags below override its "
        "fields",
    )
    submit.add_argument("--method", choices=sorted(ALGORITHMS), default=None)
    submit.add_argument("-k", type=int, default=None, help="result size")
    submit.add_argument("--dataset", choices=DATASET_NAMES, default=None)
    submit.add_argument(
        "--n-items", type=int, default=None,
        help="deterministic first-n item subset (default: all)",
    )
    submit.add_argument("--confidence", type=float, default=None)
    submit.add_argument("--budget", type=int, default=None)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--tenant", default=None, help="owning tenant")
    submit.add_argument(
        "--cost-sla", type=int, default=None, metavar="MICROTASKS",
        help="hard microtask ceiling (also the admission commitment)",
    )
    submit.add_argument(
        "--latency-sla", type=int, default=None, metavar="ROUNDS",
        help="hard latency-round ceiling",
    )
    submit.add_argument("--name", default=None, help="display name")
    submit.add_argument(
        "--wait", action="store_true",
        help="poll /result until the query finishes and print the outcome",
    )
    submit.add_argument(
        "--poll", type=float, default=0.2, metavar="SECONDS",
        help="polling interval for --wait (default 0.2)",
    )
    submit.add_argument(
        "--timeout", type=float, default=600.0, metavar="SECONDS",
        help="give up waiting after SECONDS (default 600)",
    )
    submit.add_argument(
        "--json", action="store_true",
        help="print raw JSON responses instead of the summary lines",
    )
    return parser


def _cmd_datasets(_args: argparse.Namespace) -> int:
    for name in DATASET_NAMES:
        dataset = load_dataset(name)
        print(f"{name:10s} {len(dataset):5d} items  {dataset.description}")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.resume and args.method not in ("spr", "bdp"):
        print("error: --resume only supports --method spr or bdp",
              file=sys.stderr)
        return 2
    serve_address = None
    if args.serve:
        try:
            serve_address = parse_address(args.serve)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    dataset = load_dataset(args.dataset)
    working = dataset.sample_items(args.n_items)
    k = args.k
    sink = JsonlSink(args.telemetry) if args.telemetry else None
    if sink is not None:
        try:
            sink.open()  # fail before the query, not after
        except OSError as exc:
            print(f"error: cannot write telemetry to {sink.path}: {exc}",
                  file=sys.stderr)
            return 1

    # One fresh registry per query: the snapshot then reconciles exactly
    # with this session's cost ledger.
    with use_registry(MetricsRegistry()) as registry:
        if sink is not None:
            registry.add_listener(sink.write_event)
        recorder = None
        if args.flight_recorder or serve_address is not None:
            recorder = FlightRecorder()
            recorder.attach(registry=registry)
        observatory = None
        try:
            if serve_address is not None:
                try:
                    observatory = ObservatoryServer(
                        registry=registry,
                        queries=get_query_board(),
                        recorder=recorder,
                        host=serve_address[0],
                        port=serve_address[1],
                    ).start()
                except OSError as exc:
                    print(f"error: cannot serve on {args.serve}: {exc}",
                          file=sys.stderr)
                    return 1
                print(f"observatory serving at {observatory.url}",
                      file=sys.stderr)
            if args.resume:
                try:
                    session = CrowdSession.restore(args.checkpoint, dataset.oracle)
                except (OSError, ValueError) as exc:
                    print(f"error: cannot resume from {args.checkpoint}: {exc}",
                          file=sys.stderr)
                    return 1
                query_state = (
                    (session.restored_state or {}).get("query", {})
                    .get(args.method)
                )
                if query_state is None:
                    print(
                        f"error: {args.checkpoint} holds no resumable "
                        f"{args.method} query",
                        file=sys.stderr,
                    )
                    return 1
                # The original working set and k come from the checkpoint, so a
                # resumed query answers exactly the question the killed one
                # asked.
                working = dataset.items.restrict(query_state["items"])
                k = int(query_state["k"])
                session.enable_checkpoints(args.checkpoint, args.checkpoint_every)
                resume_query = (
                    resume_spr_topk if args.method == "spr" else resume_bdp_topk
                )

                def run() -> object:
                    return resume_query(session)
            else:
                params = ExperimentParams(
                    dataset=args.dataset,
                    n_items=args.n_items,
                    k=args.k,
                    confidence=args.confidence,
                    budget=args.budget,
                    n_runs=1,
                    seed=args.seed,
                )
                # The one-shot CLI is a thin adapter over the same
                # QuerySpec dispatch the service uses, so the two doors
                # cannot drift apart.
                spec = QuerySpec(
                    method=args.method,
                    k=args.k,
                    dataset=args.dataset,
                    n_items=args.n_items,
                    comparison=params.comparison_config(),
                    seed=args.seed,
                )
                session, _ = session_for(spec, registry)
                if args.checkpoint:
                    session.enable_checkpoints(
                        args.checkpoint, args.checkpoint_every
                    )
                items = working.ids.tolist()

                def run() -> object:
                    return execute_spec(session, spec, items)

            if recorder is not None:
                recorder.attach(session=session)
            if observatory is not None:
                observatory.queries.register(
                    f"{args.dataset}:{args.method}:k={k}", session
                )
            if args.flight_recorder:
                with recorder.guard(args.flight_recorder):
                    outcome = run()
                recorder.dump(args.flight_recorder, reason="completed")
                print(f"flight recorder written to {args.flight_recorder}",
                      file=sys.stderr)
            else:
                outcome = run()
        finally:
            if observatory is not None:
                observatory.stop()
        if sink is not None:
            sink.write_snapshot(registry)
            sink.close()

    print(f"top-{k} by {args.method} on {args.dataset} "
          f"(N={len(working)}, 1-a={session.config.confidence}, "
          f"B={session.config.budget}):")
    for position, item in enumerate(outcome.topk, start=1):
        print(f"  {position:3d}. {working.label_of(item)} "
              f"(true rank {working.rank_of(item)})")
    print(f"TMC: {outcome.cost:,} microtasks | latency: {outcome.rounds:,} rounds")
    print(f"NDCG@{k}: {ndcg_at_k(working, outcome.topk, k):.3f} | "
          f"precision: {top_k_precision(working, outcome.topk, k):.2f}")
    if sink is not None:
        print()
        print(registry.summary_table())
        print(f"telemetry written to {sink.path}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset)
    working = dataset.sample_items(args.n_items)
    params = ExperimentParams(
        dataset=args.dataset,
        n_items=args.n_items,
        k=args.k,
        confidence=args.confidence,
        budget=args.budget,
        n_runs=1,
        seed=args.seed,
    )
    with use_registry(MetricsRegistry()) as registry:
        session = dataset.session(params.comparison_config(), seed=args.seed)
        algorithm = ALGORITHMS[args.method]
        with trace_session(session) as trace:
            outcome = algorithm(session, working.ids.tolist(), args.k)
        report = explain_query(
            session,
            trace,
            outcome.topk,
            method=args.method,
            k=args.k,
            registry=registry,
        )
        microtasks = int(registry.counter_total("crowd_microtasks_total"))
    print(report.to_json() if args.json else report.to_text())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report.to_json())
            handle.write("\n")
        print(f"report written to {args.output}", file=sys.stderr)
    if not report.reconciles(microtasks):
        print("warning: explain report does not reconcile with the ledgers",
              file=sys.stderr)
        return 1
    return 0


# experiment name -> callable(args) -> list of reports
def _exp_table3(args):
    return [run_table3(n_runs=args.runs, seed=args.seed)]


def _exp_table4(args):
    params = ExperimentParams(
        dataset=args.dataset or "imdb", n_runs=args.runs, seed=args.seed
    )
    return [run_table4(params)]


def _exp_table7(args):
    return [run_table7(n_runs=args.runs, seed=args.seed)]


def _sweep(vary):
    def runner(args):
        params = ExperimentParams(
            dataset=args.dataset or "imdb", n_runs=args.runs, seed=args.seed
        )
        return list(run_scalability(vary, params))

    return runner


def _exp_fig12(args):
    return list(run_summary(n_runs=args.runs, seed=args.seed))


def _exp_fig13(args):
    params = ExperimentParams(
        dataset=args.dataset or "imdb", n_runs=args.runs, seed=args.seed
    )
    return [run_accuracy(vary, params) for vary in ("k", "n", "budget", "confidence")]


def _exp_fig14(args):
    return [run_non_confidence(n_runs=args.runs, seed=args.seed)]


def _exp_fig15(_args):
    return [run_appendix_d()]


def _exp_fig16(args):
    return [run_sweet_spot(n_runs=args.runs, seed=args.seed)]


def _exp_fig17(args):
    return [
        run_stein_vs_student(
            dataset=args.dataset or "imdb", n_runs=args.runs, seed=args.seed
        )
    ]


def _exp_peopleage(args):
    return [run_peopleage(n_runs=args.runs, seed=args.seed)]


def _exp_robustness(args):
    return [run_robustness(n_runs=args.runs, seed=args.seed)]


def _exp_spr_vs_bdp(args):
    datasets = (args.dataset,) if args.dataset else ("imdb", "book")
    return [run_spr_vs_bdp(datasets=datasets, n_runs=args.runs, seed=args.seed)]


_EXPERIMENTS = {
    "table3": _exp_table3,
    "table4": _exp_table4,
    "table7": _exp_table7,
    "fig8": _sweep("k"),
    "fig9": _sweep("n"),
    "fig10": _sweep("confidence"),
    "fig11": _sweep("budget"),
    "fig12": _exp_fig12,
    "fig13": _exp_fig13,
    "fig14": _exp_fig14,
    "fig15": _exp_fig15,
    "fig16": _exp_fig16,
    "fig17": _exp_fig17,
    "peopleage": _exp_peopleage,
    "robustness": _exp_robustness,
    "spr_vs_bdp": _exp_spr_vs_bdp,
}


def _cmd_experiment(args: argparse.Namespace) -> int:
    # Install the requested parallelism and engine ambiently: every
    # harness entry point resolves n_jobs=None / engine=None against
    # them, so --jobs and --engine reach all of them without threading
    # flags through each signature.
    with use_jobs(args.jobs), use_engine(args.engine):
        for report in _EXPERIMENTS[args.name](args):
            print(report.to_text())
            print()
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    suites = VALIDATION_SUITES if args.suite == "all" else (args.suite,)
    alphas = tuple(args.alpha) if args.alpha else DEFAULT_ALPHAS
    sink = JsonlSink(args.telemetry) if args.telemetry else None
    if sink is not None:
        try:
            sink.open()  # fail before the suites, not after
        except OSError as exc:
            print(f"error: cannot write telemetry to {sink.path}: {exc}",
                  file=sys.stderr)
            return 1

    reports: dict[str, object] = {}
    with use_registry(MetricsRegistry()) as registry:
        if sink is not None:
            registry.add_listener(sink.write_event)
        with use_jobs(args.jobs):
            for suite in suites:
                if suite == "guarantees":
                    report = run_guarantee_suite(
                        alphas=alphas,
                        replications=args.replications,
                        seed=args.seed,
                    )
                elif suite == "invariants":
                    report = run_invariant_suite(seed=args.seed)
                else:
                    report = run_golden_suite(
                        args.golden_dir, update=args.update_golden
                    )
                reports[suite] = report
                print(report.to_text())
                print()
        if sink is not None:
            sink.write_snapshot(registry)
            sink.close()

    passed = all(report.passed for report in reports.values())
    if args.report:
        payload = {
            "passed": passed,
            "suites": {name: report.to_dict() for name, report in reports.items()},
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written to {args.report}")
    if sink is not None:
        print(f"telemetry written to {sink.path}")
    print(f"validate: {'PASS' if passed else 'FAIL'}")
    return 0 if passed else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import time

    from .service import QueryService

    try:
        address = parse_address(args.address)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.recover and not args.state_dir:
        print("error: --recover requires --state-dir DIR", file=sys.stderr)
        return 2
    registry = MetricsRegistry()
    with use_registry(registry):
        recorder = FlightRecorder()
        recorder.attach(registry=registry)
        service = QueryService(
            max_workers=args.workers,
            capacity=args.capacity,
            admission=args.admission,
            marketplace_slots=args.slots,
            quantum=args.quantum,
            cache_entries=args.cache_entries,
            cache_bytes=args.cache_bytes,
            state_dir=args.state_dir,
            registry=registry,
        )
        observatory = None
        try:
            if args.recover:
                revived = service.recover()
                print(
                    f"recovered {len(revived)} unfinished "
                    f"quer{'y' if len(revived) == 1 else 'ies'} "
                    f"from {args.state_dir}",
                    file=sys.stderr,
                )
            try:
                observatory = ObservatoryServer(
                    registry=registry,
                    recorder=recorder,
                    service=service,
                    host=address[0],
                    port=address[1],
                ).start()
            except OSError as exc:
                print(f"error: cannot serve on {args.address}: {exc}",
                      file=sys.stderr)
                return 1
            print(f"observatory serving at {observatory.url}", file=sys.stderr)
            print(
                f"query service ready: workers={args.workers} "
                f"capacity={args.capacity if args.capacity is not None else 'unbounded'} "
                f"admission={args.admission}",
                file=sys.stderr,
            )
            try:
                while True:
                    time.sleep(0.5)
            except KeyboardInterrupt:
                print("shutting down", file=sys.stderr)
        finally:
            if observatory is not None:
                observatory.stop()
            service.close(wait=False)
    return 0


def _service_request(
    method: str, url: str, payload: dict | None = None
) -> tuple[int, dict]:
    """One JSON request against a running service; (status, document)."""
    import urllib.request

    data = json.dumps(payload).encode("utf-8") if payload is not None else None
    request = urllib.request.Request(
        url, data=data, method=method,
        headers={"Content-Type": "application/json"},
    )
    import urllib.error

    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as exc:
        body = exc.read().decode("utf-8", errors="replace")
        try:
            return exc.code, json.loads(body)
        except ValueError:
            return exc.code, {"error": body.strip() or exc.reason}


def _cmd_submit(args: argparse.Namespace) -> int:
    import time
    import urllib.error

    document: dict = {}
    if args.spec:
        try:
            with open(args.spec, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read spec {args.spec}: {exc}", file=sys.stderr)
            return 2
        if not isinstance(document, dict):
            print(f"error: {args.spec} must hold a JSON object", file=sys.stderr)
            return 2
    overrides = {
        "method": args.method,
        "k": args.k,
        "dataset": args.dataset,
        "n_items": args.n_items,
        "seed": args.seed,
        "tenant": args.tenant,
        "cost_sla": args.cost_sla,
        "latency_sla": args.latency_sla,
        "name": args.name,
    }
    document.update(
        {field: value for field, value in overrides.items() if value is not None}
    )
    comparison = dict(document.get("comparison") or {})
    if args.confidence is not None:
        comparison["confidence"] = args.confidence
    if args.budget is not None:
        comparison["budget"] = args.budget
    if comparison:
        document["comparison"] = comparison

    server = args.server.rstrip("/")
    try:
        status, response = _service_request("POST", f"{server}/submit", document)
    except urllib.error.URLError as exc:
        print(f"error: cannot reach {server}: {exc.reason}", file=sys.stderr)
        return 1
    if status >= 400:
        print(f"error: submit rejected ({status}): "
              f"{response.get('error', response)}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(response, indent=2, sort_keys=True))
    else:
        print(f"submitted {response['id']}: {response['query']} "
              f"(tenant {response['tenant']}, {response['status']})")
    if not args.wait:
        return 0

    id = response["id"]
    deadline = time.monotonic() + args.timeout
    while True:
        try:
            status, result = _service_request("GET", f"{server}/result?id={id}")
        except urllib.error.URLError as exc:
            print(f"error: lost {server}: {exc.reason}", file=sys.stderr)
            return 1
        if status == 200:
            break
        if time.monotonic() > deadline:
            print(f"error: query {id} still {result.get('status')!r} after "
                  f"{args.timeout}s", file=sys.stderr)
            return 1
        time.sleep(args.poll)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0 if result.get("status") == "done" else 1
    if result.get("status") == "done":
        print(f"{id} done: top-{result['k']} = {result['topk']}")
        print(f"TMC: {result['cost']:,} microtasks | "
              f"latency: {result['rounds']:,} rounds")
        return 0
    print(f"{id} {result.get('status')}: {result.get('error', 'no outcome')}",
          file=sys.stderr)
    return 1


def _cmd_plan(args: argparse.Namespace) -> int:
    plan = plan_query(
        args.n_items,
        args.k,
        target_precision=args.target_precision,
        dollar_budget=args.dollars,
        score_spread=args.score_spread,
        noise_sigma=args.noise,
    )
    print(plan.summary())
    print(plan.rationale)
    return 0 if plan.feasible else 1


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose)
    if args.command == "datasets":
        return _cmd_datasets(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "plan":
        return _cmd_plan(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
