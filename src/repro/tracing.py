"""Structured tracing of crowdsourced queries.

A deployment auditing a four-figure crowd bill needs to answer "which
comparisons cost what, and why?".  A :class:`QueryTrace` subscribes to a
session and records every comparison the session runs — pair, verdict,
workload, incremental cost, round count — plus user-defined phase marks.
Traces render as text timelines and export to JSON for external tooling.

Tracing subscribes to the session's compare-listener hook (the same
observation channel the telemetry layer exposes — sessions are plain
objects, no global state is patched), so racing pools that buy microtasks
in bulk appear as their ledger deltas inside the surrounding phase rather
than as individual events; `phase totals` therefore always reconcile with
the ledgers.  Attachment is reversible: traces are context managers, and
:meth:`QueryTrace.detach` unsubscribes explicitly.  Attaching the same
trace twice is a no-op, so events are never double-counted.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .core.comparison import ComparisonRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .crowd.session import CrowdSession

__all__ = ["ComparisonEvent", "PhaseSummary", "QueryTrace", "trace_session"]


@dataclass(frozen=True)
class ComparisonEvent:
    """One comparison the traced session executed."""

    index: int
    phase: str
    left: int
    right: int
    outcome: str
    workload: int
    cost: int
    rounds: int
    cumulative_cost: int

    def line(self) -> str:
        return (
            f"[{self.index:4d}] {self.phase:12s} COMP({self.left}, {self.right}) "
            f"-> {self.outcome:5s} w={self.workload:<5d} +{self.cost:<5d} "
            f"(total {self.cumulative_cost:,})"
        )


@dataclass(frozen=True)
class PhaseSummary:
    """Ledger deltas attributed to one phase."""

    phase: str
    comparisons: int
    cost: int
    rounds: int


@dataclass
class QueryTrace:
    """Recorded history of one traced session.

    Usually created attached via :func:`trace_session`.  Detach with
    :meth:`detach`, or use the trace as a context manager — leaving the
    ``with`` block closes the open phase and unsubscribes from the
    session::

        with trace_session(session) as trace:
            spr_topk(session, ids, k)
        print(trace.to_text())
    """

    events: list[ComparisonEvent] = field(default_factory=list)
    _phase: str = "query"
    _phase_starts: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    _phase_totals: dict[str, tuple[int, int, int]] = field(default_factory=dict)
    _session: "CrowdSession | None" = field(default=None, repr=False)

    # ------------------------------------------------------------------
    # attachment lifecycle
    # ------------------------------------------------------------------
    def attach(self, session: "CrowdSession") -> "QueryTrace":
        """Subscribe to ``session``; re-attaching is a no-op.

        A trace observes exactly one session at a time; attach to a
        different session only after :meth:`detach`.
        """
        if self._session is not None:
            if self._session is session:
                return self  # already attached: never double-subscribe
            raise ValueError(
                "trace is already attached to another session; detach() first"
            )
        self._session = session
        if self._phase not in self._phase_starts:
            cost, rounds = session.spent()
            self._phase_starts[self._phase] = (cost, rounds, len(self.events))
        session.add_compare_listener(self.record)
        return self

    def detach(self) -> None:
        """Unsubscribe from the session (idempotent).

        Recorded events, marks and totals survive; only the live feed
        stops.
        """
        if self._session is not None:
            self._session.remove_compare_listener(self.record)
            self._session = None

    def __enter__(self) -> "QueryTrace":
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._session is not None:
            self.finish(self._session)
        self.detach()

    # ------------------------------------------------------------------
    def mark_phase(self, session: "CrowdSession", name: str) -> None:
        """Close the current phase and open ``name``."""
        self._close_phase(session)
        self._phase = name
        cost, rounds = session.spent()
        self._phase_starts[name] = (cost, rounds, len(self.events))

    def _close_phase(self, session: "CrowdSession") -> None:
        start_cost, start_rounds, start_events = self._phase_starts.get(
            self._phase, (0, 0, 0)
        )
        cost, rounds = session.spent()
        previous = self._phase_totals.get(self._phase, (0, 0, 0))
        self._phase_totals[self._phase] = (
            previous[0] + len(self.events) - start_events,
            previous[1] + cost - start_cost,
            previous[2] + rounds - start_rounds,
        )

    def finish(self, session: "CrowdSession") -> None:
        """Close the open phase (call once, when the query is done)."""
        self._close_phase(session)

    # ------------------------------------------------------------------
    def record(self, session: "CrowdSession", record: ComparisonRecord) -> None:
        self.events.append(
            ComparisonEvent(
                index=len(self.events),
                phase=self._phase,
                left=record.left,
                right=record.right,
                outcome=record.outcome.name,
                workload=record.workload,
                cost=record.cost,
                rounds=record.rounds,
                cumulative_cost=session.cost.microtasks,
            )
        )

    # ------------------------------------------------------------------
    @property
    def total_comparisons(self) -> int:
        return len(self.events)

    @property
    def cached_comparisons(self) -> int:
        """Comparisons served entirely from the judgment cache."""
        return sum(1 for e in self.events if e.cost == 0 and e.workload > 0)

    def phase_summaries(self) -> list[PhaseSummary]:
        """Ledger-reconciled per-phase totals (after :meth:`finish`)."""
        return [
            PhaseSummary(phase=name, comparisons=c, cost=cost, rounds=rounds)
            for name, (c, cost, rounds) in self._phase_totals.items()
        ]

    def most_expensive(self, count: int = 5) -> list[ComparisonEvent]:
        """The comparisons that bought the most microtasks."""
        return sorted(self.events, key=lambda e: -e.cost)[:count]

    def to_text(self, limit: int | None = 50) -> str:
        lines = [e.line() for e in (self.events if limit is None else self.events[:limit])]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... {len(self.events) - limit} more events")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps(
            {
                "events": [vars(e) for e in self.events],
                "phases": [vars(p) for p in self.phase_summaries()],
            }
        )


def trace_session(session: "CrowdSession") -> QueryTrace:
    """Attach a :class:`QueryTrace` to ``session`` (compare-listener based).

    All comparisons from this point on are recorded; bulk racing-pool
    spending shows up in the surrounding phase's ledger totals.  The
    returned trace is a context manager; it can also be torn down
    explicitly with :meth:`QueryTrace.detach`.
    """
    return QueryTrace().attach(session)
