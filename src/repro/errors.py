"""Exception hierarchy for the crowd-topk library.

All library-raised exceptions derive from :class:`CrowdTopkError`, so callers
can catch one base class at an API boundary.  Configuration mistakes raise
:class:`ConfigError` eagerly (at construction time) rather than failing deep
inside an experiment run.
"""

from __future__ import annotations


class CrowdTopkError(Exception):
    """Base class for all errors raised by the crowd-topk library."""


class ConfigError(CrowdTopkError, ValueError):
    """Raised when a configuration object receives an invalid parameter."""


class BudgetExhaustedError(CrowdTopkError):
    """Raised when a hard session-level budget is exceeded.

    Per-pair budgets never raise: a comparison that hits its budget ``B``
    simply resolves to a tie, exactly as in the paper.  This error only
    fires when a caller installs an explicit total-cost ceiling on a
    :class:`~repro.crowd.session.CrowdSession` and an algorithm exceeds it.
    """


class DatasetError(CrowdTopkError):
    """Raised for malformed or inconsistent dataset definitions."""


class OracleError(CrowdTopkError):
    """Raised when a judgment oracle cannot answer a requested microtask."""


class AlgorithmError(CrowdTopkError):
    """Raised when a top-k algorithm is invoked with unusable inputs."""


class ServiceError(CrowdTopkError):
    """Base class for errors raised by the multi-tenant query service."""


class AdmissionError(ServiceError):
    """Raised when admission control rejects a submitted query.

    Only fires under the ``"reject"`` admission policy: the aggregate
    committed budget of running and queued queries plus the new query's
    cost ceiling would exceed the service capacity.  Under ``"queue"``
    the query waits instead.
    """


class QueryCancelledError(ServiceError):
    """Raised inside a query's worker when :meth:`QueryHandle.cancel` fires.

    The cancelled session is abandoned mid-round; its spending up to the
    cancellation point remains on the ledgers and in the tenant cache.
    """


class SLAExceededError(ServiceError):
    """Raised when a query crosses its declared latency SLA.

    Cost SLAs are enforced by the session's hard cost ceiling and raise
    :class:`BudgetExhaustedError`; this error is the latency-side
    counterpart, raised at the next spend after ``latency_sla`` rounds.
    """
