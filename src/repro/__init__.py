"""crowd-topk — crowdsourced top-k queries by confidence-aware pairwise judgments.

A from-scratch reproduction of Kou, Li, Wang, U and Gong,
*Crowdsourced Top-k Queries by Confidence-Aware Pairwise Judgments*
(SIGMOD 2017): the pairwise preference judgment model with Student/Stein
confidence estimation, the Select-Partition-Rank (SPR) framework, every
baseline the paper evaluates, a simulated crowdsourcing platform with
cost/latency accounting, and an experiment harness regenerating every
table and figure.

Quickstart::

    from repro import load_dataset, spr_topk, SPRConfig, ndcg_at_k

    dataset = load_dataset("jester")
    session = dataset.session(seed=0)
    result = spr_topk(session, dataset.items.ids.tolist(), k=10)
    print(result.topk, session.total_cost, session.total_rounds)
    print(ndcg_at_k(dataset.items, result.topk, 10))
"""

from .algorithms import (
    ALGORITHMS,
    BDPRanker,
    TopKOutcome,
    bdp_topk,
    crowdbt_topk,
    heapsort_topk,
    hybrid_spr_topk,
    hybrid_topk,
    infimum_estimate,
    pbr_topk,
    quickselect_topk,
    resume_bdp_topk,
    tournament_topk,
)
from .config import (
    ComparisonConfig,
    FaultPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SPRConfig,
    default_resilience,
)
from .core import Comparator, ComparisonRecord, ItemSet, JudgmentCache, Outcome
from .core.estimators import PACTester
from .core.stopping import ConfidenceStopping, PACStopping, stopping_from_document
from .core.spr import (
    PartitionResult,
    SPRResult,
    SelectionResult,
    partition,
    reference_sort,
    resume_spr_topk,
    select_reference,
    spr_topk,
)
from .crowd import (
    BinaryOracle,
    CrowdSession,
    FaultInjector,
    HistogramOracle,
    JudgmentOracle,
    LatentScoreOracle,
    RacingLattice,
    RacingPool,
    RecordDatabaseOracle,
    UserTableOracle,
    race_group,
    run_lattice,
)
from .datasets import DATASET_NAMES, Dataset, load_dataset
from .errors import (
    AdmissionError,
    AlgorithmError,
    BudgetExhaustedError,
    ConfigError,
    CrowdTopkError,
    DatasetError,
    OracleError,
    QueryCancelledError,
    ServiceError,
    SLAExceededError,
)
from .execution import DEFAULT_EXECUTION, ExecutionPolicy, execution_policy_from_dict
from .metrics import kendall_tau, ndcg_at_k, top_k_precision, top_k_recall
from .persistence import (
    cache_from_json,
    cache_to_json,
    load_cache,
    load_checkpoint,
    save_cache,
    save_checkpoint,
)
from .planner import QueryPlan, plan_query
from .reports import ExplainReport, explain_query
from .service import (
    QueryHandle,
    QueryService,
    QuerySpec,
    SharedJudgmentCache,
    run_query,
    spec_from_document,
)
from .telemetry import (
    FlightRecorder,
    JsonlSink,
    MetricsRegistry,
    ObservatoryServer,
    QueryBoard,
    get_registry,
    parse_address,
    set_registry,
    use_registry,
)
from .tracing import QueryTrace, trace_session
from .validation import run_golden_suite, run_guarantee_suite, run_invariant_suite

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "AdmissionError",
    "AlgorithmError",
    "BDPRanker",
    "BinaryOracle",
    "BudgetExhaustedError",
    "Comparator",
    "ComparisonConfig",
    "ComparisonRecord",
    "ConfidenceStopping",
    "ConfigError",
    "CrowdSession",
    "CrowdTopkError",
    "DATASET_NAMES",
    "DEFAULT_EXECUTION",
    "Dataset",
    "DatasetError",
    "ExecutionPolicy",
    "ExplainReport",
    "FaultInjector",
    "FaultPolicy",
    "FlightRecorder",
    "HistogramOracle",
    "ItemSet",
    "JsonlSink",
    "JudgmentCache",
    "JudgmentOracle",
    "LatentScoreOracle",
    "MetricsRegistry",
    "ObservatoryServer",
    "OracleError",
    "Outcome",
    "PACStopping",
    "PACTester",
    "PartitionResult",
    "QueryBoard",
    "QueryCancelledError",
    "QueryHandle",
    "QueryService",
    "QuerySpec",
    "RacingLattice",
    "RacingPool",
    "RecordDatabaseOracle",
    "ResiliencePolicy",
    "RetryPolicy",
    "SLAExceededError",
    "SPRConfig",
    "SPRResult",
    "SelectionResult",
    "ServiceError",
    "SharedJudgmentCache",
    "TopKOutcome",
    "UserTableOracle",
    "bdp_topk",
    "crowdbt_topk",
    "heapsort_topk",
    "hybrid_spr_topk",
    "hybrid_topk",
    "infimum_estimate",
    "kendall_tau",
    "load_dataset",
    "ndcg_at_k",
    "QueryPlan",
    "QueryTrace",
    "cache_from_json",
    "cache_to_json",
    "default_resilience",
    "execution_policy_from_dict",
    "explain_query",
    "get_registry",
    "load_cache",
    "load_checkpoint",
    "parse_address",
    "partition",
    "plan_query",
    "race_group",
    "run_golden_suite",
    "run_guarantee_suite",
    "run_invariant_suite",
    "run_lattice",
    "save_cache",
    "save_checkpoint",
    "set_registry",
    "trace_session",
    "use_registry",
    "pbr_topk",
    "quickselect_topk",
    "reference_sort",
    "resume_bdp_topk",
    "resume_spr_topk",
    "run_query",
    "select_reference",
    "spec_from_document",
    "spr_topk",
    "stopping_from_document",
    "top_k_precision",
    "top_k_recall",
    "tournament_topk",
    "__version__",
]
