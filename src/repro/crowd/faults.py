"""Failure-injecting crowd platform.

The paper assumes every posted microtask eventually returns an answer;
real platforms drop, delay, and duplicate tasks.  A :class:`FaultInjector`
wraps any :class:`~repro.crowd.oracle.JudgmentOracle` with a *seeded*
failure model (:class:`~repro.config.FaultPolicy`) so the resilience layer
— retries, backoff, deadlines, checkpoint/resume — can be exercised
deterministically.

Design invariants:

* **Separate randomness.**  Failures are drawn from a dedicated fault RNG,
  never from the session's judgment stream.  With every rate at zero a
  session wrapping its oracle consumes its RNG exactly as an unwrapped one,
  so all seed-pinned expectations hold unchanged.
* **The oracle stays the oracle.**  ``draw`` / ``draw_pairs`` pass through
  to the wrapped oracle untouched — they model what workers *answer*.
  Failures happen at the *delivery* layer: resilience-aware consumers (the
  racing pool, the sequential comparator) ask the injector which posted
  tasks actually arrived via :meth:`outage_round`, :meth:`delivery_mask`
  and :meth:`apply_duplicates`.
* **Lost work is never charged.**  Timeouts and losses are answers that
  never reach the requester; the consumers charge (and cache) only
  delivered, consumed judgments.  Duplicates *are* charged — the worker
  submitted, the answer just carries no fresh information.

Per-mode fault counts land in ``crowd_faults_total{mode=...}`` telemetry.
"""

from __future__ import annotations

import numpy as np

from ..config import FaultPolicy
from ..telemetry import get_registry
from .oracle import JudgmentOracle

__all__ = ["FaultInjector"]

#: Telemetry label values of the injected failure modes.
FAULT_MODES = ("timeout", "loss", "duplicate", "outage")


class FaultInjector(JudgmentOracle):
    """Wraps a judgment oracle with a seeded platform failure model.

    Parameters
    ----------
    base:
        The oracle answering microtasks when the platform cooperates.
    policy:
        The failure model.  ``policy.seed`` seeds the dedicated fault RNG;
        two injectors with equal policies produce the identical failure
        sequence.
    force:
        Route consumers through the fault-aware delivery path even when
        every rate is zero (all tasks then arrive).  Used by the
        ``--suite faults`` benchmark to price the resilience machinery
        itself; never needed in normal operation.
    """

    def __init__(
        self,
        base: JudgmentOracle,
        policy: FaultPolicy | None = None,
        *,
        force: bool = False,
    ) -> None:
        if isinstance(base, FaultInjector):
            raise ValueError("refusing to stack one FaultInjector on another")
        self.base = base
        self.policy = policy if policy is not None else FaultPolicy()
        self.force = force
        self.fault_rng = np.random.default_rng(self.policy.seed)
        self.bounds = base.bounds
        self._instrument_cache: tuple | None = None

    # ------------------------------------------------------------------
    # oracle protocol: judgments pass through untouched
    # ------------------------------------------------------------------
    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.base.draw(i, j, size, rng)

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        return self.base.draw_pairs(left, right, size, rng)

    @property
    def supports_rating(self) -> bool:
        return self.base.supports_rating

    def rate(self, item: int, size: int, rng: np.random.Generator) -> np.ndarray:
        return self.base.rate(item, size, rng)

    def __getattr__(self, name: str):
        # Dataset-specific oracle extras (e.g. HistogramOracle.mean_rating)
        # resolve against the wrapped oracle.
        if name == "base":  # guard: not yet set during construction
            raise AttributeError(name)
        return getattr(self.base, name)

    # ------------------------------------------------------------------
    # delivery layer
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        """Whether consumers should take the fault-aware delivery path."""
        return self.force or self.policy.enabled

    def _fault_counters(self) -> dict:
        registry = get_registry()
        cached = self._instrument_cache
        if cached is None or cached[0] is not registry:
            cached = (
                registry,
                {
                    mode: registry.counter("crowd_faults_total", mode=mode)
                    for mode in FAULT_MODES
                },
            )
            self._instrument_cache = cached
        return cached[1]

    def outage_round(self) -> bool:
        """Whether this entire distribution round is lost to an outage.

        Consumes one fault-RNG draw only when ``outage_rate > 0``, so
        enabling other modes does not shift the outage stream.
        """
        if self.policy.outage_rate <= 0:
            return False
        down = bool(self.fault_rng.random() < self.policy.outage_rate)
        if down:
            self._fault_counters()["outage"].inc()
            get_registry().emit("fault", mode="outage", count=1)
        return down

    def delivery_mask(self, rows: int, size: int) -> np.ndarray:
        """Which of ``rows × size`` posted tasks actually deliver an answer.

        Returns a boolean ``(rows, size)`` matrix — ``True`` where the
        answer arrived this round.  Timeouts and losses are counted into
        ``crowd_faults_total`` per mode; the caller must never charge or
        cache a masked-out draw.
        """
        policy = self.policy
        if policy.drop_rate <= 0:
            return np.ones((rows, size), dtype=bool)
        u = self.fault_rng.random((rows, size))
        timed_out = u < policy.timeout_rate
        lost = ~timed_out & (u < policy.drop_rate)
        counters = self._fault_counters()
        n_timeout = int(timed_out.sum())
        n_lost = int(lost.sum())
        if n_timeout:
            counters["timeout"].inc(n_timeout)
            get_registry().emit("fault", mode="timeout", count=n_timeout)
        if n_lost:
            counters["loss"].inc(n_lost)
            get_registry().emit("fault", mode="loss", count=n_lost)
        return ~(timed_out | lost)

    def apply_duplicates(self, values: np.ndarray, valid: np.ndarray) -> int:
        """Replace some delivered answers with duplicate submissions.

        ``values`` is a ``(rows, width)`` matrix of *delivered* judgments
        (compacted left), ``valid`` the matching arrival mask.  Each valid
        slot after the first in its row duplicates its predecessor with
        probability ``duplicate_rate`` — the platform handing back a copy
        of the previous answer for the same pair.  Mutates ``values`` in
        place and returns the number of duplicated slots.
        """
        rate = self.policy.duplicate_rate
        if rate <= 0 or values.shape[1] < 2:
            return 0
        u = self.fault_rng.random((values.shape[0], values.shape[1] - 1))
        dup = (u < rate) & valid[:, 1:]
        count = int(dup.sum())
        if count:
            # Sequential scan: a duplicate of a duplicate copies the copy,
            # like a lazy worker resubmitting whatever is on screen.
            for col in range(1, values.shape[1]):
                picked = dup[:, col - 1]
                if picked.any():
                    values[picked, col] = values[picked, col - 1]
            self._fault_counters()["duplicate"].inc(count)
            get_registry().emit("fault", mode="duplicate", count=count)
        return count

    def deliver(
        self, i: int, j: int, size: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Post ``size`` tasks for one pair; return ``(answers, drawn)``.

        The scalar path used by the sequential comparator: one outage
        check, one base draw (skipped during an outage), one delivery
        mask, duplicates applied.  ``answers`` holds only arrived
        judgments (possibly empty) in submission order; ``drawn`` is how
        many judgments the oracle actually produced (``0`` during an
        outage), for ``oracle_judgments_total`` accounting.
        """
        if self.outage_round():
            return np.empty(0, dtype=np.float64), 0
        values = self.base.draw(i, j, size, rng)
        mask = self.delivery_mask(1, size)[0]
        arrived = np.ascontiguousarray(values[mask])
        if arrived.size:
            row = arrived.reshape(1, -1)
            self.apply_duplicates(row, np.ones_like(row, dtype=bool))
            arrived = row[0]
        return arrived, size
