"""Judgment oracles — the simulated crowd.

An oracle answers pairwise-preference microtasks: ``draw(i, j, size, rng)``
returns ``size`` independent worker preferences ``v(o_i, o_j)`` whose sign
points at the preferred item.  The concrete oracles reproduce exactly the
simulation rules of §6.1:

* :class:`HistogramOracle` — sample each item's rating from its own vote
  histogram and return the difference (IMDb, Book).
* :class:`UserTableOracle` — pick a random user and return her rating
  difference for the pair (Jester).
* :class:`RecordDatabaseOracle` — sample a stored judgment record of the
  pair (Photo).
* :class:`LatentScoreOracle` — Gaussian preferences centred on the true
  score gap with a worker-noise model (PeopleAge, synthetic tests).
* :class:`BinaryOracle` — wrap any oracle into the pairwise *binary*
  judgment model: return only ``sign(v) ∈ {-1, +1}``, re-drawing exact
  zeros (the paper drops unidentifiable judgments).

Oracles additionally expose a batched ``draw_pairs`` used by racing pools
to answer one microtask for thousands of pairs in a single vectorized call,
and — where the underlying data supports it — a ``rate`` method producing
absolute *graded* judgments for the Hybrid baselines.
"""

from __future__ import annotations

import logging
from abc import ABC, abstractmethod
from collections.abc import Mapping

import numpy as np

from ..errors import OracleError
from ..telemetry import get_registry
from .workers import GaussianNoise, WorkerNoise

__all__ = [
    "JudgmentOracle",
    "LatentScoreOracle",
    "HistogramOracle",
    "UserTableOracle",
    "RecordDatabaseOracle",
    "BinaryOracle",
]

logger = logging.getLogger(__name__)


class JudgmentOracle(ABC):
    """Source of pairwise preference judgments for item pairs."""

    #: Support bounds ``(lo, hi)`` of a single preference value, or ``None``
    #: when unbounded.  The Hoeffding tester needs a bounded support.
    bounds: tuple[float, float] | None = None

    @abstractmethod
    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` preferences ``v(o_i, o_j)``; positive favours ``o_i``."""

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Draw a ``(len(left), size)`` matrix of preferences, one row per pair.

        The default implementation loops over :meth:`draw`; subclasses
        override it with fully vectorized sampling.
        """
        left = np.asarray(left)
        right = np.asarray(right)
        out = np.empty((len(left), size), dtype=np.float64)
        for row, (i, j) in enumerate(zip(left, right)):
            out[row] = self.draw(int(i), int(j), size, rng)
        return out

    @property
    def value_range(self) -> float | None:
        """Width of the support, or ``None`` when unbounded."""
        if self.bounds is None:
            return None
        return self.bounds[1] - self.bounds[0]

    # Graded judgments -------------------------------------------------
    @property
    def supports_rating(self) -> bool:
        """Whether this oracle can answer absolute *graded* microtasks."""
        return False

    def rate(self, item: int, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` absolute graded judgments for ``item``."""
        raise OracleError(f"{type(self).__name__} does not support graded judgments")


class LatentScoreOracle(JudgmentOracle):
    """Gaussian preferences centred on the true score gap.

    ``v(o_i, o_j) ~ Δs_{i,j} + noise`` where ``Δs`` is the hidden score
    difference and ``noise`` comes from a :class:`WorkerNoise` model —
    the textbook instantiation of the §3.1 assumption
    ``v(o_i, o_j) ~ N(μ_{i,j}, σ²_{i,j})``.
    """

    def __init__(
        self,
        scores: Mapping[int, float] | np.ndarray,
        noise: WorkerNoise | None = None,
    ) -> None:
        if isinstance(scores, np.ndarray):
            self._scores = {int(i): float(s) for i, s in enumerate(scores)}
        else:
            self._scores = {int(i): float(s) for i, s in scores.items()}
        self._noise = noise if noise is not None else GaussianNoise(1.0)
        self._score_array: np.ndarray | None = None
        max_id = max(self._scores) if self._scores else -1
        if len(self._scores) == max_id + 1:
            # Dense ids: enable vectorized batch drawing.
            arr = np.empty(max_id + 1, dtype=np.float64)
            for item, score in self._scores.items():
                arr[item] = score
            self._score_array = arr

    def _gap(self, i: int, j: int) -> float:
        try:
            return self._scores[int(i)] - self._scores[int(j)]
        except KeyError as exc:
            raise OracleError(f"unknown item {exc.args[0]}") from None

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        return self._gap(i, j) + self._noise.sample(size, rng)

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if self._score_array is None:
            return super().draw_pairs(left, right, size, rng)
        left = np.asarray(left, dtype=np.intp)
        right = np.asarray(right, dtype=np.intp)
        gaps = self._score_array[left] - self._score_array[right]
        noise = self._noise.sample(len(left) * size, rng).reshape(len(left), size)
        return gaps[:, None] + noise

    @property
    def supports_rating(self) -> bool:
        return True

    def rate(self, item: int, size: int, rng: np.random.Generator) -> np.ndarray:
        try:
            score = self._scores[int(item)]
        except KeyError:
            raise OracleError(f"unknown item {item}") from None
        return score + self._noise.sample(size, rng)


class HistogramOracle(JudgmentOracle):
    """Preferences from per-item rating histograms (IMDb / Book rule).

    Each item carries a probability mass function over a shared rating
    ``support``.  A microtask samples one rating per item independently and
    answers their difference, exactly the simulation of §3.2/§6.1.
    """

    def __init__(self, support: np.ndarray, pmf_by_item: Mapping[int, np.ndarray]) -> None:
        support = np.asarray(support, dtype=np.float64)
        if support.ndim != 1 or len(support) < 2:
            raise OracleError("support must be a 1-D grid with >= 2 points")
        if not np.all(np.diff(support) > 0):
            raise OracleError("support must be strictly increasing")
        self._support = support
        ids = sorted(int(i) for i in pmf_by_item)
        self._row_of = {item: row for row, item in enumerate(ids)}
        cdf = np.empty((len(ids), len(support)), dtype=np.float64)
        for item, row in self._row_of.items():
            pmf = np.asarray(pmf_by_item[item], dtype=np.float64)
            if pmf.shape != support.shape:
                raise OracleError(f"pmf of item {item} does not match the support")
            if np.any(pmf < 0) or not np.isclose(pmf.sum(), 1.0, atol=1e-8):
                raise OracleError(f"pmf of item {item} is not a distribution")
            cdf[row] = np.cumsum(pmf)
        cdf[:, -1] = 1.0  # guard against round-off at the top
        self._cdf = cdf
        span = float(support[-1] - support[0])
        self.bounds = (-span, span)

    @property
    def support(self) -> np.ndarray:
        """The shared rating grid."""
        return self._support

    def mean_rating(self, item: int) -> float:
        """Expected rating of ``item`` under its histogram."""
        row = self._row(item)
        pmf = np.diff(np.concatenate(([0.0], self._cdf[row])))
        return float(pmf @ self._support)

    def _row(self, item: int) -> int:
        try:
            return self._row_of[int(item)]
        except KeyError:
            raise OracleError(f"unknown item {item}") from None

    def _sample_ratings(
        self, rows: np.ndarray, size: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Inverse-CDF sample: a ``(len(rows), size)`` matrix of ratings.

        For each row r the sampled index is #{support points with cdf < u},
        found by binary search.  Each row's CDF lives in [0, 1] and uniforms
        in [0, 1), so shifting row r by 2r packs all rows into one globally
        sorted array and a single ``searchsorted`` resolves every draw —
        O(pairs × size × log grid) instead of the former full
        (pairs × size × grid) broadcast compare.
        """
        u = rng.random((len(rows), size))
        n_rows, n_support = len(rows), len(self._support)
        shift = 2.0 * np.arange(n_rows)[:, None]
        flat_cdf = (self._cdf[rows] + shift).ravel()
        idx = np.searchsorted(flat_cdf, (u + shift).ravel(), side="left")
        idx = idx.reshape(n_rows, size) - np.arange(n_rows)[:, None] * n_support
        return self._support[idx]

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        rows = np.asarray([self._row(i), self._row(j)])
        ratings = self._sample_ratings(rows, size, rng)
        return ratings[0] - ratings[1]

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        rows_left = np.asarray([self._row(int(i)) for i in left])
        rows_right = np.asarray([self._row(int(j)) for j in right])
        return self._sample_ratings(rows_left, size, rng) - self._sample_ratings(
            rows_right, size, rng
        )

    @property
    def supports_rating(self) -> bool:
        return True

    def rate(self, item: int, size: int, rng: np.random.Generator) -> np.ndarray:
        rows = np.asarray([self._row(item)])
        return self._sample_ratings(rows, size, rng)[0]


class UserTableOracle(JudgmentOracle):
    """Preferences from a dense user × item rating table (Jester rule).

    A microtask picks a uniformly random user and answers the difference of
    her ratings for the two items, so judgments are *within-user* paired
    differences exactly as in §6.1.
    """

    def __init__(self, ratings: np.ndarray, item_ids: np.ndarray | None = None) -> None:
        ratings = np.asarray(ratings, dtype=np.float64)
        if ratings.ndim != 2 or ratings.shape[0] < 1 or ratings.shape[1] < 2:
            raise OracleError("ratings must be a (users × items) matrix")
        if not np.all(np.isfinite(ratings)):
            raise OracleError("ratings must be finite (the table is dense)")
        self._ratings = ratings
        if item_ids is None:
            item_ids = np.arange(ratings.shape[1])
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if len(item_ids) != ratings.shape[1]:
            raise OracleError("item_ids must align with the rating columns")
        self._col_of = {int(i): c for c, i in enumerate(item_ids)}
        # Dense item -> column map for bulk draws, built only when the ids
        # are a permutation of 0..n-1 (every real dataset).  Lookups go
        # through an unsigned cast, so unknown ids — negative or too
        # large — fault the gather instead of silently wrapping.
        self._col_arr: np.ndarray | None = None
        if item_ids.size and int(item_ids.min()) >= 0 and int(
            item_ids.max()
        ) == item_ids.size - 1:
            col_arr = np.empty(item_ids.size, dtype=np.intp)
            col_arr[item_ids] = np.arange(item_ids.size, dtype=np.intp)
            self._col_arr = col_arr
        lo, hi = float(ratings.min()), float(ratings.max())
        self.bounds = (lo - hi, hi - lo)

    def _col(self, item: int) -> int:
        try:
            return self._col_of[int(item)]
        except KeyError:
            raise OracleError(f"unknown item {item}") from None

    @property
    def n_users(self) -> int:
        """Number of simulated users in the table."""
        return self._ratings.shape[0]

    def mean_rating(self, item: int) -> float:
        """Average rating of ``item`` across all users."""
        return float(self._ratings[:, self._col(item)].mean())

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        users = rng.integers(0, self.n_users, size=size)
        ci, cj = self._col(i), self._col(j)
        return self._ratings[users, ci] - self._ratings[users, cj]

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        col_arr = self._col_arr
        if col_arr is not None:
            try:
                cols_left = col_arr[np.asarray(left).astype(np.uintp)]
                cols_right = col_arr[np.asarray(right).astype(np.uintp)]
            except IndexError:
                # Unknown id: the checked per-item path below raises the
                # proper OracleError (no RNG was consumed yet).
                pass
            else:
                users = rng.integers(0, self.n_users, size=(len(left), size))
                return (
                    self._ratings[users, cols_left[:, None]]
                    - self._ratings[users, cols_right[:, None]]
                )
        cols_left = np.asarray([self._col(int(i)) for i in left])
        cols_right = np.asarray([self._col(int(j)) for j in right])
        users = rng.integers(0, self.n_users, size=(len(cols_left), size))
        return (
            self._ratings[users, cols_left[:, None]]
            - self._ratings[users, cols_right[:, None]]
        )

    @property
    def supports_rating(self) -> bool:
        return True

    def rate(self, item: int, size: int, rng: np.random.Generator) -> np.ndarray:
        users = rng.integers(0, self.n_users, size=size)
        return self._ratings[users, self._col(item)]


class RecordDatabaseOracle(JudgmentOracle):
    """Preferences sampled from a pre-collected judgment database (Photo rule).

    The database holds, for every unordered pair, a pool of recorded worker
    preferences; a microtask samples one record uniformly with replacement.
    Internally records are packed into a flat array with per-pair offsets so
    batched sampling stays vectorized.
    """

    def __init__(self, records: Mapping[tuple[int, int], np.ndarray]) -> None:
        if not records:
            raise OracleError("the record database is empty")
        flat: list[np.ndarray] = []
        offsets: dict[tuple[int, int], tuple[int, int]] = {}
        cursor = 0
        for pair, values in records.items():
            i, j = int(pair[0]), int(pair[1])
            if i == j:
                raise OracleError(f"self-pair ({i}, {i}) in the record database")
            values = np.asarray(values, dtype=np.float64)
            if values.ndim != 1 or values.size == 0:
                raise OracleError(f"pair ({i}, {j}) has no records")
            key = (i, j) if i < j else (j, i)
            canonical = values if i < j else -values
            if key in offsets:
                raise OracleError(f"pair {key} appears twice in the record database")
            flat.append(canonical)
            offsets[key] = (cursor, len(values))
            cursor += len(values)
        self._values = np.concatenate(flat)
        self._offsets = offsets
        lo, hi = float(self._values.min()), float(self._values.max())
        span = max(abs(lo), abs(hi))
        self.bounds = (-span, span)

    def _slot(self, i: int, j: int) -> tuple[int, int, float]:
        i, j = int(i), int(j)
        key, sign = ((i, j), 1.0) if i < j else ((j, i), -1.0)
        try:
            start, count = self._offsets[key]
        except KeyError:
            raise OracleError(f"no records for pair ({i}, {j})") from None
        return start, count, sign

    def record_count(self, i: int, j: int) -> int:
        """Number of stored records for the pair ``{i, j}``."""
        _, count, _ = self._slot(i, j)
        return count

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        start, count, sign = self._slot(i, j)
        idx = start + rng.integers(0, count, size=size)
        return sign * self._values[idx]

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        slots = [self._slot(int(i), int(j)) for i, j in zip(left, right)]
        starts = np.asarray([s[0] for s in slots])
        counts = np.asarray([s[1] for s in slots])
        signs = np.asarray([s[2] for s in slots])
        idx = starts[:, None] + rng.integers(0, counts[:, None], size=(len(slots), size))
        return signs[:, None] * self._values[idx]


class BinaryOracle(JudgmentOracle):
    """Wrap any oracle into the pairwise *binary* judgment model.

    Workers answer only "which is better": ``v_b = sign(v) ∈ {-1, +1}``.
    Exact zeros are unidentifiable and are re-drawn, matching the paper's
    "this judgment is dropped" rule (the dropped task is not charged — the
    platform would not accept a blank answer).
    """

    #: Re-draw attempts before concluding the pair never separates.
    MAX_REDRAWS = 64

    def __init__(self, base: JudgmentOracle) -> None:
        self._base = base
        self.bounds = (-1.0, 1.0)
        #: Judgments that came back exactly tied and were re-asked.  A real
        #: platform pays for those answers too; cost models that account
        #: for the waste (Table 3) read this counter.
        self.wasted = 0
        self._instrument_cache: tuple | None = None

    def _wasted_counter(self):
        """The hot-path counter handle, re-bound when the registry changes."""
        registry = get_registry()
        cached = self._instrument_cache
        if cached is None or cached[0] is not registry:
            cached = (registry, registry.counter("oracle_wasted_judgments_total"))
            self._instrument_cache = cached
        return cached[1]

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        out = np.sign(self._base.draw(i, j, size, rng))
        for _ in range(self.MAX_REDRAWS):
            zeros = np.flatnonzero(out == 0)
            if zeros.size == 0:
                return out
            self.wasted += int(zeros.size)
            self._wasted_counter().inc(int(zeros.size))
            logger.debug(
                "binary oracle re-drew %d tied judgments for pair (%d, %d)",
                int(zeros.size), i, j,
            )
            out[zeros] = np.sign(self._base.draw(i, j, zeros.size, rng))
        raise OracleError(
            f"pair ({i}, {j}) keeps producing exactly-tied judgments; "
            "binary votes cannot separate it"
        )

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        out = np.sign(self._base.draw_pairs(left, right, size, rng))
        for _ in range(self.MAX_REDRAWS):
            rows, cols = np.nonzero(out == 0)
            if rows.size == 0:
                return out
            self.wasted += int(rows.size)
            self._wasted_counter().inc(int(rows.size))
            redraw = np.sign(
                self._base.draw_pairs(
                    np.asarray(left)[rows], np.asarray(right)[rows], 1, rng
                )[:, 0]
            )
            out[rows, cols] = redraw
        raise OracleError("some pairs keep producing exactly-tied judgments")
