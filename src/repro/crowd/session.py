"""Crowd sessions: comparisons + accounting in one handle.

A :class:`CrowdSession` is what every top-k algorithm receives: it bundles
the judgment oracle, the shared judgment cache, the comparison
configuration, a random stream, and the cost/latency ledgers.  Algorithms
never talk to the oracle directly — all spending flows through the session
so that TMC and latency are measured uniformly across methods.
"""

from __future__ import annotations

import os
from collections.abc import Callable, Iterable
from dataclasses import asdict

import numpy as np

from ..config import ComparisonConfig, comparison_config_from_dict
from ..core.cache import JudgmentCache
from ..core.comparison import Comparator, ComparisonRecord
from ..core.outcomes import Outcome
from ..rng import make_rng
from ..telemetry import MetricsRegistry, get_registry
from .faults import FaultInjector
from .ledger import CostLedger, LatencyLedger
from .oracle import JudgmentOracle

__all__ = ["CrowdSession"]

StateProvider = Callable[[], dict]

CompareListener = Callable[["CrowdSession", ComparisonRecord], None]

#: A pre-charge hook: called with the microtask amount about to be charged.
#: Raising aborts the spend (the query service uses this for cancellation,
#: latency SLAs, and fair cross-tenant scheduling).
SpendGate = Callable[[int], None]


class CrowdSession:
    """One query's worth of crowdsourcing state.

    Parameters
    ----------
    oracle:
        The simulated crowd answering microtasks.
    config:
        The comparison process configuration (confidence, budget ``B``,
        cold start ``I``, batch size ``η``, estimator).
    seed:
        Seed / generator for the session's random stream.
    max_total_cost:
        Optional hard ceiling on the session's total monetary cost;
        crossing it raises :class:`~repro.errors.BudgetExhaustedError`.
        Per-pair budgets are handled by the comparison process itself and
        never raise.
    telemetry:
        Optional per-session metrics registry.  When omitted the session
        reports into the process-wide registry *at call time*, so
        :func:`repro.telemetry.use_registry` scopes correctly.
    """

    def __init__(
        self,
        oracle: JudgmentOracle,
        config: ComparisonConfig | None = None,
        seed: int | None | np.random.Generator = None,
        max_total_cost: int | None = None,
        telemetry: MetricsRegistry | None = None,
    ) -> None:
        self.config = config if config is not None else ComparisonConfig()
        self.oracle = self._wrap_oracle(oracle, self.config)
        self.rng = make_rng(seed)
        self.cache = JudgmentCache()
        self.comparator = Comparator(self.oracle, self.config, self.cache)
        self.cost = CostLedger(ceiling=max_total_cost)
        self.latency = LatencyLedger()
        self._telemetry = telemetry
        self._compare_listeners: list[CompareListener] = []
        self._instrument_cache: tuple | None = None
        self._state_providers: dict[str, StateProvider] = {}
        self._progress_providers: dict[str, StateProvider] = {}
        self._checkpoint_path: str | os.PathLike | None = None
        self._checkpoint_every: int = 0
        self._last_checkpoint_rounds: int = 0
        self._spend_gate: SpendGate | None = None
        self.restored_state: dict | None = None

    @staticmethod
    def _wrap_oracle(
        oracle: JudgmentOracle, config: ComparisonConfig
    ) -> JudgmentOracle:
        """Wrap the oracle in a fault injector when the config demands one."""
        fault = config.resilience.fault
        if fault.enabled and not isinstance(oracle, FaultInjector):
            return FaultInjector(oracle, fault)
        return oracle

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    @property
    def telemetry(self) -> MetricsRegistry:
        """The registry this session reports into (never None)."""
        return self._telemetry if self._telemetry is not None else get_registry()

    def _instruments(self) -> tuple:
        """The hot-path metric handles, re-bound when the registry changes."""
        registry = self.telemetry
        cached = self._instrument_cache
        if cached is None or cached[0] is not registry:
            cached = (
                registry,
                registry.counter("crowd_comparisons_total"),
                registry.counter("crowd_microtasks_total"),
                registry.counter("crowd_cache_hits_total"),
                registry.counter("crowd_budget_ties_total"),
                registry.histogram("crowd_comparison_workload"),
                registry.counter("crowd_groups_total", engine="racing"),
                registry.counter("crowd_groups_total", engine="sequential"),
            )
            self._instrument_cache = cached
        return cached

    def add_compare_listener(self, listener: CompareListener) -> None:
        """Subscribe to every :meth:`compare` record (idempotent).

        Listeners fire after both ledgers are charged, in attachment
        order.  Adding an already-subscribed listener is a no-op, so
        double attachment never double-counts.
        """
        if listener not in self._compare_listeners:
            self._compare_listeners.append(listener)

    def remove_compare_listener(self, listener: CompareListener) -> None:
        """Unsubscribe a compare listener (no-op when absent)."""
        if listener in self._compare_listeners:
            self._compare_listeners.remove(listener)

    # ------------------------------------------------------------------
    # live progress (read by the observatory's /queries endpoint)
    # ------------------------------------------------------------------
    def register_progress_provider(self, key: str, provider: StateProvider) -> bool:
        """Install a live-progress provider under ``key``.

        Same first-wins contract as :meth:`register_state_provider`, but a
        *separate* namespace with looser demands: a progress provider is a
        cheap, read-only, zero-argument callable returning a small
        JSON-serializable dict, and it may be invoked from an HTTP scrape
        thread at *any* moment — not only at round boundaries.  Providers
        must therefore tolerate (and never mutate) in-flight state;
        slightly stale numbers are fine, crashes are not
        (:meth:`progress` converts exceptions into error entries).
        """
        if key in self._progress_providers:
            return False
        self._progress_providers[key] = provider
        return True

    def unregister_progress_provider(self, key: str) -> None:
        """Remove the progress provider for ``key`` (no-op when absent)."""
        self._progress_providers.pop(key, None)

    def progress(self) -> dict:
        """A JSON-ready live snapshot of this query's state.

        Always carries the ledger view (cost spent vs. cap, rounds,
        comparisons), the open telemetry span names (the current phase),
        and degraded-tie totals; algorithm loops enrich it through
        :meth:`register_progress_provider` (the SPR partition loop reports
        its round, resolved/deferred counts, and estimated rounds
        remaining).  Read-only and safe to call from another thread.
        """
        telemetry = self.telemetry
        spans = telemetry.active_spans()
        doc: dict = {
            "phase": spans[-1] if spans else None,
            "open_spans": spans,
            "cost": self.cost.microtasks,
            "budget_cap": self.cost.ceiling,
            "budget_remaining": self.cost.remaining,
            "rounds": self.latency.rounds,
            "comparisons": self.cost.comparisons,
            "degraded_ties": telemetry.counter_total("crowd_degraded_ties_total"),
            "checkpoints": telemetry.counter_total("crowd_checkpoints_total"),
        }
        for key, provider in list(self._progress_providers.items()):
            try:
                doc[key] = provider()
            except Exception as exc:  # a torn read mid-round: degrade, don't die
                doc[key] = {"error": f"{type(exc).__name__}: {exc}"}
        return doc

    # ------------------------------------------------------------------
    # comparisons
    # ------------------------------------------------------------------
    def compare(
        self, i: int, j: int, *, charge_latency: bool = True
    ) -> ComparisonRecord:
        """Run ``COMP(o_i, o_j)``, charging both ledgers.

        With ``charge_latency=False`` only cost is charged; callers that
        orchestrate parallel groups account latency themselves.
        """
        _, comparisons, microtasks, cache_hits, ties, workload = self._instruments()[:6]
        self.cost.begin_comparison()
        record = self.comparator.compare(i, j, self.rng)
        if self._spend_gate is not None:
            self._spend_gate(record.cost)
        comparisons.inc()
        microtasks.inc(record.cost)
        if record.from_cache:
            cache_hits.inc()
        if record.outcome is Outcome.TIE:
            ties.inc()
        workload.observe(record.workload)
        self.cost.charge(record.cost)
        if charge_latency:
            self.latency.add(record.rounds)
        for listener in self._compare_listeners:
            listener(self, record)
        return record

    def compare_many(
        self, pairs: Iterable[tuple[int, int]], *, charge_latency: bool = True
    ) -> list[ComparisonRecord]:
        """Run a parallel comparison group through the configured engine.

        With ``config.group_engine == "racing"`` (the default) the whole
        group advances through one vectorized
        :class:`~repro.crowd.pool.RacingPool` — one oracle call and one
        stopping-rule evaluation per lockstep round, no per-pair Python
        loop.  ``"sequential"`` reproduces the historical behavior bit for
        bit by running one comparison process per pair.  Both engines
        charge only consumed microtasks and bill the group ``max`` of its
        members' rounds; see docs/performance.md for when the two round
        schedules differ.
        """
        pairs = [(int(i), int(j)) for i, j in pairs]
        if not pairs:
            return []
        for left, right in pairs:
            if left == right:  # reject before the ledgers see the group
                raise ValueError(f"cannot compare item {left} with itself")
        instruments = self._instruments()
        _, comparisons, _, cache_hits, ties, workload = instruments[:6]
        racing = self.config.group_engine == "racing"
        instruments[6 if racing else 7].inc()
        if not racing:
            records = [self.compare(i, j, charge_latency=False) for i, j in pairs]
            if charge_latency:
                self.latency.add_parallel([r.rounds for r in records])
            return records

        from .group import race_group  # deferred: group imports the pool

        self.cost.begin_comparisons(len(pairs))
        raced = race_group(self, pairs)
        records = [record for record, _ in raced]
        # One batched update per instrument for the whole group.  The
        # pool already counted its own cache replays and raced budget
        # ties; count only what it could not see — repeated pairs inside
        # the group and ties decided from the cache.
        workloads = []
        replay_hits = 0
        cached_ties = 0
        for record, fresh in raced:
            workloads.append(record.workload)
            if not fresh and record.cost == 0 and record.workload > 0:
                replay_hits += 1
            if record.outcome is Outcome.TIE and (not fresh or record.cost == 0):
                cached_ties += 1
        comparisons.add(len(raced))
        workload.observe_many(workloads)
        if replay_hits:
            cache_hits.add(replay_hits)
        if cached_ties:
            ties.add(cached_ties)
        if charge_latency:
            self.latency.add_parallel([r.rounds for r in records])
        for record in records:
            for listener in self._compare_listeners:
                listener(self, record)
        return records

    def moments(self, i: int, j: int) -> tuple[int, float, float]:
        """``(n, mean, variance)`` of the cached bag for ``(i, j)``."""
        return self.cache.moments(i, j)

    def use_cache(self, cache: JudgmentCache) -> None:
        """Swap the session onto ``cache`` (rebuilding the comparator).

        The query service uses this to point a fresh per-query session at
        its tenant's shared cache namespace before the query runs.  Only
        safe before (or between) comparisons — an in-flight racing pool
        keeps views into the old cache's bags.
        """
        self.cache = cache
        self.comparator = Comparator(self.oracle, self.config, cache)

    # ------------------------------------------------------------------
    # low-level accounting for racing pools and custom schedules
    # ------------------------------------------------------------------
    def set_spend_gate(self, gate: SpendGate | None) -> None:
        """Install (or clear) the pre-charge spend gate.

        The gate is called with the microtask amount about to be charged,
        *before* the cost ledger sees it — once per :meth:`compare` and
        once per bulk charge (:meth:`charge_cost` / :meth:`charge_many`),
        i.e. at least once per spending round.  Raising from the gate
        aborts the spend and propagates to the algorithm; the query
        service uses this for cancellation, latency SLA enforcement, and
        deficit-round-robin microtask arbitration across tenants.  A
        ``None`` gate (the default) keeps the hot path a single attribute
        check.
        """
        self._spend_gate = gate

    def charge_cost(self, microtasks: int) -> None:
        """Charge raw microtask cost (racing pools buy in bulk)."""
        if self._spend_gate is not None:
            self._spend_gate(microtasks)
        self._instruments()[2].inc(microtasks)
        self.cost.charge(microtasks)

    def charge_rounds(self, rounds: int) -> None:
        """Charge raw latency rounds."""
        self.latency.add(rounds)

    def charge_many(self, microtasks: int, *, rounds: int = 0) -> None:
        """Charge a whole round's spending in one call.

        Equivalent to :meth:`charge_cost` followed by
        :meth:`charge_rounds` — cost first, so a
        :class:`~repro.errors.BudgetExhaustedError` from the ceiling
        check leaves the latency ledger untouched exactly as the split
        calls would — but racing pools make one accounting call per
        round instead of two.
        """
        if self._spend_gate is not None:
            self._spend_gate(microtasks)
        self._instruments()[2].inc(microtasks)
        self.cost.charge(microtasks)
        if rounds:
            self.latency.add(rounds)

    # ------------------------------------------------------------------
    # checkpoint / resume
    # ------------------------------------------------------------------
    def register_state_provider(self, key: str, provider: StateProvider) -> bool:
        """Install the query-state provider for ``key``.

        A provider is a zero-argument callable returning a
        JSON-serializable dict describing in-flight query state (e.g. the
        SPR partitioning loop).  Returns ``False`` when another provider
        already owns ``key`` — nested invocations (e.g. SPR's recursive
        blow-up queries) must then run *without* checkpointing, since only
        the outermost loop's state makes a resumable document.
        """
        if key in self._state_providers:
            return False
        self._state_providers[key] = provider
        return True

    def unregister_state_provider(self, key: str) -> None:
        """Remove the provider for ``key`` (no-op when absent)."""
        self._state_providers.pop(key, None)

    def enable_checkpoints(
        self, path: str | os.PathLike, every: int | None = None
    ) -> None:
        """Turn on periodic checkpoints to ``path``.

        ``every`` is the cadence in *latency rounds* between automatic
        :meth:`maybe_checkpoint` writes (default: the config's
        ``resilience.checkpoint_every``, or every round when that is 0).
        """
        if every is None:
            every = self.config.resilience.checkpoint_every or 1
        if every < 1:
            raise ValueError(f"checkpoint cadence must be >= 1, got {every}")
        self._checkpoint_path = path
        self._checkpoint_every = every
        self._last_checkpoint_rounds = self.latency.rounds

    def maybe_checkpoint(self) -> bool:
        """Checkpoint if enabled and the cadence has elapsed.

        Called by resumable loops (SPR partitioning) at their safe points;
        cheap when checkpointing is off or the cadence has not elapsed.
        """
        if self._checkpoint_path is None:
            return False
        elapsed = self.latency.rounds - self._last_checkpoint_rounds
        if elapsed < self._checkpoint_every:
            return False
        self.checkpoint(self._checkpoint_path)
        return True

    def checkpoint_state(self) -> dict:
        """The session's full JSON-serializable state document.

        Captures the comparison config, the judgment RNG state, the fault
        RNG state (when a fault injector wraps the oracle), both ledgers,
        and every registered query-state provider's document under
        ``query.<key>``.  The judgment cache is *not* in the document — it
        rides alongside as raw arrays (see
        :func:`repro.persistence.save_checkpoint`).
        """
        injector = self.oracle if isinstance(self.oracle, FaultInjector) else None
        return {
            "config": asdict(self.config),
            "rng_state": self.rng.bit_generator.state,
            "fault_rng_state": (
                injector.fault_rng.bit_generator.state
                if injector is not None
                else None
            ),
            "cost": {
                "microtasks": self.cost.microtasks,
                "comparisons": self.cost.comparisons,
                "ceiling": self.cost.ceiling,
            },
            "latency": {"rounds": self.latency.rounds},
            "query": {
                key: provider() for key, provider in self._state_providers.items()
            },
        }

    def checkpoint(self, path: str | os.PathLike | None = None) -> None:
        """Atomically persist the session to ``path`` (write-temp + rename).

        ``path`` defaults to the one given to :meth:`enable_checkpoints`.
        """
        from ..persistence import save_checkpoint  # deferred: persistence is optional here

        if path is None:
            path = self._checkpoint_path
        if path is None:
            raise ValueError(
                "no checkpoint path: pass one or call enable_checkpoints first"
            )
        save_checkpoint(self.checkpoint_state(), self.cache, path)
        self._last_checkpoint_rounds = self.latency.rounds
        telemetry = self.telemetry
        telemetry.counter("crowd_checkpoints_total").inc()
        telemetry.emit(
            "checkpoint",
            path=str(path),
            cost=self.cost.microtasks,
            rounds=self.latency.rounds,
        )

    @classmethod
    def restore(
        cls,
        path: str | os.PathLike,
        oracle: JudgmentOracle,
        telemetry: MetricsRegistry | None = None,
    ) -> "CrowdSession":
        """Revive a session from a checkpoint written by :meth:`checkpoint`.

        ``oracle`` is the *base* oracle (checkpoints never serialize the
        crowd itself); the fault injector is re-wrapped from the persisted
        config and both RNGs are restored exactly, so the resumed session
        consumes randomness bit for bit where the original left off.  The
        in-flight query state is left in :attr:`restored_state` for the
        resuming algorithm (see ``resume_spr_topk``).
        """
        from ..persistence import load_checkpoint

        state, cache = load_checkpoint(path)
        config = comparison_config_from_dict(state["config"])
        session = cls(
            oracle,
            config,
            seed=None,
            max_total_cost=state["cost"]["ceiling"],
            telemetry=telemetry,
        )
        session.rng.bit_generator.state = state["rng_state"]
        injector = (
            session.oracle if isinstance(session.oracle, FaultInjector) else None
        )
        if injector is not None and state["fault_rng_state"] is not None:
            injector.fault_rng.bit_generator.state = state["fault_rng_state"]
        session.cache = cache
        session.comparator = Comparator(session.oracle, config, cache)
        session.cost.microtasks = state["cost"]["microtasks"]
        session.cost.comparisons = state["cost"]["comparisons"]
        session.latency.rounds = state["latency"]["rounds"]
        session.restored_state = state
        return session

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------
    @property
    def total_cost(self) -> int:
        """Total monetary cost so far (microtasks)."""
        return self.cost.microtasks

    @property
    def total_rounds(self) -> int:
        """Total latency so far (batch rounds)."""
        return self.latency.rounds

    def fork(
        self, oracle: JudgmentOracle | None = None, **config_changes: object
    ) -> "CrowdSession":
        """A session sharing this one's rng and ledgers with a tweaked setup.

        Used by algorithms that mix judgment regimes — e.g. PBR races
        *binary* votes under Hoeffding intervals, Hybrid grades before it
        ranks — while keeping a single bill.  The judgment cache is shared
        unless ``oracle`` is replaced (bags from different judgment models
        must not mix; a fresh cache is installed in that case).
        """
        clone = object.__new__(CrowdSession)
        clone.config = self.config.with_(**config_changes) if config_changes else self.config
        # A replaced oracle gets its own fault wrap (the parent's injector
        # belongs to the parent's judgment model); an inherited oracle
        # keeps the parent's injector and hence its fault stream.
        clone.oracle = (
            self._wrap_oracle(oracle, clone.config)
            if oracle is not None
            else self.oracle
        )
        clone.rng = self.rng
        clone.cache = JudgmentCache() if oracle is not None else self.cache
        clone.comparator = Comparator(clone.oracle, clone.config, clone.cache)
        clone.cost = self.cost
        clone.latency = self.latency
        clone._telemetry = self._telemetry
        clone._compare_listeners = []  # traces attach per-session, not per-bill
        clone._instrument_cache = None
        clone._state_providers = {}  # checkpoints are the root session's job
        clone._progress_providers = {}  # likewise the live-progress roster
        clone._checkpoint_path = None
        clone._checkpoint_every = 0
        clone._last_checkpoint_rounds = 0
        # The fork spends against the shared ledgers, so it answers to the
        # same gate (SPR's selection fork must honour the parent's SLAs).
        clone._spend_gate = self._spend_gate
        clone.restored_state = None
        return clone

    def spent(self) -> tuple[int, int]:
        """``(cost, rounds)`` snapshot, handy for phase-level accounting."""
        return self.cost.microtasks, self.latency.rounds
