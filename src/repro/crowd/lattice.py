"""One racing lattice for everything: fused multi-query racing rounds.

BENCH_group_engine.json showed that batching a *single* query's pairs into
one vectorized round buys 6.5× over sequential comparisons, while
BENCH_parallel_runner.json showed a process pool buys nothing (the
bottleneck is per-round Python overhead, not CPU count).  The remaining
fixed cost is per *query*: every racing pool still pays one oracle call,
one ``decision_codes`` pass and one activity mask per round.  The lattice
removes that by racing R independent runs in bulk-synchronous lockstep —
the paper's "keep the whole crowd busy every round" regime (§5.5) lifted
from one query's pairs to a whole experiment's runs.

How it works
------------
Each *lane* is an unmodified zero-argument callable (an experiment run, a
``spr_topk`` call, anything that races pools) executed on its own thread
under its own thread-local :class:`~repro.telemetry.MetricsRegistry`.
Threads buy no parallelism under the GIL and are not meant to: they exist
solely to suspend a lane mid-``round()``.  When a lane's
:class:`~repro.crowd.pool.RacingPool` reaches a fault-free round it plans
the round itself — consuming *its own* session RNG for the oracle draw,
exactly as serial execution would — then parks on the lattice barrier.
Once every live lane is parked, the submitting thread evaluates all
pending rounds in **one** stacked, padded numpy pass
(:func:`~repro.crowd.pool._evaluate_plans`): one stopping-rule evaluation
across all runs instead of one per run.  Lanes then wake and apply their
own verdicts, caches and charges under their own registries.

Because planning (all RNG consumption) and applying (all state mutation)
stay on the lane, each lane's judgment stream, costs, verdicts and
telemetry are **bit-for-bit identical** to running it alone; the fused
kernel only regroups *which* numpy call computes each row.  Lane
registries are merged into the ambient registry in lane order afterwards,
matching the process-pool merge contract.

Per-lane sessions are registered on the default
:class:`~repro.telemetry.QueryBoard` for the duration of the run, so a
live observatory scrape of ``/queries`` shows every lane's progress.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

from ..telemetry import MetricsRegistry, get_query_board, get_registry
from ..telemetry import use_thread_registry
from .pool import RacingPool, _evaluate_plans

__all__ = ["RacingLattice", "current_lattice", "run_lattice", "LATTICE_MAX_LANES"]

#: Default cap on lanes racing at once; wider batches pad more rows per
#: kernel pass than they fuse, and thread count should stay bounded.
LATTICE_MAX_LANES = 16

_tls = threading.local()


def current_lattice() -> "RacingLattice | None":
    """The lattice the *current thread* races under, if any.

    ``RacingPool.round`` consults this to route fault-free rounds through
    the fused kernel; outside a lane thread it is always ``None``, so
    plain serial execution never pays for the lattice.
    """
    return getattr(_tls, "lattice", None)


class _Lane:
    """One racing thread's slot: task, isolation, rendezvous state."""

    __slots__ = (
        "index", "name", "fn", "registry", "result", "error",
        "session", "plan", "eval", "registered", "gate",
    )

    def __init__(self, index: int, name: str, fn: Callable[[], Any]) -> None:
        self.index = index
        self.name = name
        self.fn = fn
        self.registry = MetricsRegistry()
        self.result: Any = None
        self.error: BaseException | None = None
        self.session = None
        self.plan = None
        self.eval = None
        self.registered = False
        # Binary-semaphore park: held whenever the lane runs, released
        # exactly once per round by whoever evaluates the batch.  A raw
        # lock parks/wakes at C level — no waiter-lock allocation, no
        # notify fan-out — which is what makes the per-round rendezvous
        # cheap enough to win on a small host.
        self.gate = threading.Lock()
        self.gate.acquire()


class RacingLattice:
    """Races independent tasks in bulk-synchronous fused rounds.

    Parameters
    ----------
    tasks:
        Zero-argument callables, one per lane.  Each runs unmodified; any
        fault-free :meth:`RacingPool.round` it performs is transparently
        routed through the fused kernel.
    name:
        Roster prefix for the default query board (lanes appear as
        ``{name}/lane{i}``).

    :meth:`run` blocks until every lane finishes and returns their results
    in task order.  A lane that raises stops only itself; the first error
    (in lane order) is re-raised after all lanes have wound down, matching
    serial semantics for single-task failures.
    """

    def __init__(
        self,
        tasks: Sequence[Callable[[], Any]],
        *,
        name: str = "lattice",
    ) -> None:
        self.name = name
        self._lanes = [
            _Lane(i, f"{name}/lane{i}", fn) for i, fn in enumerate(tasks)
        ]
        # One mutex guards the rendezvous state; the condition on top of
        # it is the coordinator's only — it is notified solely on lane
        # death (rare), so steady-state batches never wake the
        # coordinator thread at all.
        self._mutex = threading.Lock()
        self._coord = threading.Condition(self._mutex)
        self._alive = 0
        self._pending: list[_Lane] = []
        self._batches = 0
        # The ambient registry captured by run(); the fused-rounds counter
        # must land there no matter which lane thread (running under its
        # own thread-local registry) ends up evaluating a batch.
        self._ambient = None
        self._rounds_counter = None

    # ------------------------------------------------------------------
    # lane side (called from lane threads via RacingPool.round)
    # ------------------------------------------------------------------
    def submit_round(
        self, pool: RacingPool, step: int | None
    ) -> list[tuple[int, int]]:
        """One pool round from a lane: plan locally, evaluate fused.

        The lane draws its own samples (its RNG, its round counters) and
        joins the barrier.  The *last* lane to arrive evaluates every
        pending round inline in its own thread — no hand-off to the
        coordinator, no extra context switches on a small host — and one
        ``notify_all`` releases the parked peers.  Each lane then applies
        its own verdicts under its own registry.
        """
        lane: _Lane | None = getattr(_tls, "lane", None)
        if lane is None:  # not a lane thread: fall back to the local path
            resolved, plan = pool._plan_round(step)
            if plan is None:
                return resolved
            return pool._apply_round(plan, _evaluate_plans([plan])[0])
        resolved, plan = pool._plan_round(step)
        if plan is None:
            return resolved
        if not lane.registered:
            lane.session = pool.session
            lane.registered = True
            get_query_board().register(lane.name, pool.session)
        lane.plan = plan
        lane.eval = None
        batch: list[_Lane] | None = None
        with self._mutex:
            self._pending.append(lane)
            if len(self._pending) >= self._alive:
                batch = self._pending
                self._pending = []
        if batch is not None:
            self._evaluate_batch(batch, skip=lane)
        else:
            # Park until an evaluator (the last arriver, or the
            # coordinator after a lane died) delivers the verdict and
            # releases the gate; the acquire leaves it held again.
            lane.gate.acquire()
        ev = lane.eval
        lane.plan = None
        lane.eval = None
        if isinstance(ev, BaseException):  # fused evaluation failure
            raise ev
        return pool._apply_round(plan, ev)

    def _evaluate_batch(
        self, batch: "list[_Lane]", skip: "_Lane | None" = None
    ) -> None:
        """Fuse-evaluate a popped batch and release its lanes.

        Runs outside the mutex (every batch member is parked or is the
        calling thread, so no racing state mutates concurrently); an
        evaluation failure is delivered to every member rather than
        stranding the parked ones.  ``skip`` is the calling lane, whose
        gate is held by itself and must not be released.
        """
        try:
            evals = _evaluate_plans([member.plan for member in batch])
        except BaseException as exc:  # deliver, never strand a lane
            evals = [exc] * len(batch)
        else:
            self._batches += 1
            counter = self._rounds_counter
            if counter is None:
                counter = self._rounds_counter = self._ambient.counter(
                    "crowd_lattice_rounds_total"
                )
            counter.inc()
        for member, ev in zip(batch, evals):
            member.eval = ev
            if member is not skip:
                member.gate.release()

    def _lane_main(self, lane: _Lane) -> None:
        _tls.lattice = self
        _tls.lane = lane
        try:
            with use_thread_registry(lane.registry):
                lane.result = lane.fn()
        except BaseException as exc:  # noqa: BLE001 - re-raised by run()
            lane.error = exc
        finally:
            _tls.lattice = None
            _tls.lane = None
            with self._coord:
                self._alive -= 1
                self._coord.notify_all()

    # ------------------------------------------------------------------
    # kernel side
    # ------------------------------------------------------------------
    def run(self) -> list[Any]:
        """Race all lanes to completion; returns results in task order.

        Steady-state batches are evaluated by the last-arriving lane in
        its own thread; the calling thread only arbitrates rendezvous
        that a lane death would otherwise strand.  Lane registries (all
        per-lane telemetry) are merged into the ambient registry in lane
        order before returning, and lane sessions leave the query board.
        """
        lanes = self._lanes
        if not lanes:
            return []
        ambient = self._ambient = get_registry()
        self._alive = len(lanes)
        threads = [
            threading.Thread(
                target=self._lane_main,
                args=(lane,),
                name=f"{self.name}-lane{lane.index}",
                daemon=True,
            )
            for lane in lanes
        ]
        board = get_query_board()
        try:
            for thread in threads:
                thread.start()
            # Steady-state batches are evaluated inline by the last lane
            # to arrive; this thread is only the fallback arbiter for the
            # rendezvous shrinking underneath parked lanes — when a lane
            # *finishes* while peers are parked, the barrier condition
            # (pending >= alive) can become true with nobody submitting.
            # Lane deaths are the only notifications it receives.
            while True:
                with self._coord:
                    self._coord.wait_for(
                        lambda: self._alive == 0
                        or (self._alive > 0 and len(self._pending) >= self._alive)
                    )
                    if self._alive == 0 and not self._pending:
                        break
                    batch = self._pending
                    self._pending = []
                self._evaluate_batch(batch)
        finally:
            for thread in threads:
                thread.join()
            for lane in lanes:
                if lane.registered:
                    board.unregister(lane.name)
            ambient.gauge("crowd_lattice_lanes").set(len(lanes))
            ambient.merge(*[lane.registry for lane in lanes])
        for lane in lanes:
            if lane.error is not None:
                raise lane.error
        return [lane.result for lane in lanes]

    @property
    def batches(self) -> int:
        """Fused kernel passes executed so far (for tests/telemetry)."""
        return self._batches


def run_lattice(
    tasks: Iterable[Callable[[], Any]],
    *,
    name: str = "lattice",
    max_lanes: int | None = None,
) -> list[Any]:
    """Race ``tasks`` through lattices of at most ``max_lanes`` lanes each.

    Chunks are formed in task order and run one after another, so results
    (and registry merge order) are deterministic regardless of the cap.
    """
    limit = LATTICE_MAX_LANES if max_lanes is None else int(max_lanes)
    if limit < 1:
        raise ValueError(f"max_lanes must be >= 1, got {limit}")
    tasks = list(tasks)
    results: list[Any] = []
    for start in range(0, len(tasks), limit):
        chunk = tasks[start : start + limit]
        results.extend(RacingLattice(chunk, name=name).run())
    return results
