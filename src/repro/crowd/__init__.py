"""Simulated crowdsourcing platform: oracles, workers, ledgers, sessions."""

from .faults import FaultInjector
from .group import race_group
from .lattice import RacingLattice, run_lattice
from .ledger import CostLedger, LatencyLedger
from .oracle import (
    BinaryOracle,
    HistogramOracle,
    JudgmentOracle,
    LatentScoreOracle,
    RecordDatabaseOracle,
    UserTableOracle,
)
from .marketplace import MarketplaceModel, MarketplaceReport, rounds_from_session
from .pool import RacingPool
from .session import CrowdSession
from .timeline import WallClockEstimate, project_wall_clock
from .workers import CarelessWorkerNoise, GaussianNoise, WorkerNoise
from .workforce import (
    AnswerRecord,
    Workforce,
    WorkforceOracle,
    WorkerProfile,
    estimate_worker_accuracy,
)

__all__ = [
    "BinaryOracle",
    "CarelessWorkerNoise",
    "CostLedger",
    "CrowdSession",
    "FaultInjector",
    "race_group",
    "WallClockEstimate",
    "project_wall_clock",
    "GaussianNoise",
    "HistogramOracle",
    "JudgmentOracle",
    "LatencyLedger",
    "LatentScoreOracle",
    "MarketplaceModel",
    "MarketplaceReport",
    "rounds_from_session",
    "RacingLattice",
    "RacingPool",
    "run_lattice",
    "RecordDatabaseOracle",
    "UserTableOracle",
    "WorkerNoise",
    "AnswerRecord",
    "Workforce",
    "WorkforceOracle",
    "WorkerProfile",
    "estimate_worker_accuracy",
]
