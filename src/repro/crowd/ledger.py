"""Cost and latency accounting.

The two performance factors of §6.2 are tracked by separate ledgers:

* :class:`CostLedger` — the total monetary cost (TMC): one unit per
  microtask answered by the crowd.
* :class:`LatencyLedger` — query latency measured in batch-distribution
  *rounds* (§5.5): microtasks are published in batches of η, comparisons
  running in parallel overlap their rounds, sequential phases add.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from ..errors import BudgetExhaustedError

__all__ = ["CostLedger", "LatencyLedger"]

logger = logging.getLogger(__name__)


@dataclass
class CostLedger:
    """Counts microtasks (monetary cost) and comparison processes."""

    microtasks: int = 0
    comparisons: int = 0
    ceiling: int | None = None

    def charge(self, n: int) -> None:
        """Charge ``n`` microtasks; raises if a hard ceiling is installed
        and crossed."""
        if n < 0:
            raise ValueError(f"cannot charge {n} microtasks")
        self.microtasks += n
        if self.ceiling is not None and self.microtasks > self.ceiling:
            logger.warning(
                "budget exhausted: total monetary cost %d crossed the session "
                "ceiling %d", self.microtasks, self.ceiling,
            )
            raise BudgetExhaustedError(
                f"total monetary cost {self.microtasks} exceeded the "
                f"session ceiling {self.ceiling}"
            )

    def begin_comparison(self) -> None:
        """Record that one comparison process started."""
        self.comparisons += 1

    def begin_comparisons(self, n: int) -> None:
        """Record that ``n`` comparison processes started at once.

        The batched twin of :meth:`begin_comparison` — group engines open
        a whole parallel comparison group with one ledger update instead
        of one call per pair.
        """
        if n < 0:
            raise ValueError(f"cannot begin {n} comparisons")
        self.comparisons += n

    @property
    def remaining(self) -> int | None:
        """Microtasks left under the ceiling (None when uncapped)."""
        if self.ceiling is None:
            return None
        return max(self.ceiling - self.microtasks, 0)

    def reset(self) -> None:
        self.microtasks = 0
        self.comparisons = 0


@dataclass
class LatencyLedger:
    """Counts batch-distribution rounds."""

    rounds: int = 0

    def add(self, rounds: int) -> None:
        """Account ``rounds`` sequential rounds."""
        if rounds < 0:
            raise ValueError(f"cannot add {rounds} rounds")
        self.rounds += rounds

    def add_parallel(self, group_rounds: list[int] | tuple[int, ...]) -> None:
        """Account a group of comparisons that ran simultaneously.

        The group costs as many rounds as its slowest member.
        """
        if group_rounds:
            self.add(max(group_rounds))

    def reset(self) -> None:
        self.rounds = 0
