"""Individual workers: reliability, spammers, and answer provenance.

The paper models the crowd as exchangeable — every judgment is an i.i.d.
draw from a pair-specific distribution (§4 explicitly sets aside
per-worker consistency).  Real platforms are not like that, and the
paper's related work (Chen et al.'s worker reliability, Fan et al.'s
iCrowd) centres on exactly this gap.  This module provides the machinery
to study it *within* the confidence-aware framework:

* a :class:`Workforce` of workers with individual reliability, noise and
  spammer flags;
* a :class:`WorkforceOracle` that routes every microtask through a sampled
  worker and (optionally) logs who answered what; and
* :func:`estimate_worker_accuracy` — gold-standard-based quality scoring
  in the iCrowd spirit, usable to ban low-quality workers between queries.

The headline experiment built on top (``benchmarks/
bench_robustness_spammers.py``) shows the confidence machinery absorbing
worker heterogeneity: spammers inflate cost, not error rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import OracleError
from ..rng import make_rng
from .oracle import JudgmentOracle

__all__ = [
    "WorkerProfile",
    "Workforce",
    "WorkforceOracle",
    "AnswerRecord",
    "estimate_worker_accuracy",
]


@dataclass(frozen=True)
class WorkerProfile:
    """One worker's behavioural parameters.

    ``reliability ∈ [0, 1]`` scales how much of the true signal reaches the
    answer; ``noise_scale`` multiplies the worker's personal perception
    noise; a ``spammer`` ignores the question entirely and answers
    uniformly at random.
    """

    worker_id: int
    reliability: float = 1.0
    noise_scale: float = 1.0
    spammer: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.reliability <= 1.0:
            raise OracleError(
                f"reliability must be in [0, 1], got {self.reliability}"
            )
        if self.noise_scale < 0:
            raise OracleError(f"noise_scale must be >= 0, got {self.noise_scale}")


class Workforce:
    """A pool of workers microtasks are assigned from."""

    def __init__(self, profiles: list[WorkerProfile]) -> None:
        if not profiles:
            raise OracleError("a workforce needs at least one worker")
        ids = [p.worker_id for p in profiles]
        if len(set(ids)) != len(ids):
            raise OracleError("worker ids must be unique")
        self.profiles = list(profiles)
        self._by_id = {p.worker_id: p for p in profiles}

    def __len__(self) -> int:
        return len(self.profiles)

    def __getitem__(self, worker_id: int) -> WorkerProfile:
        try:
            return self._by_id[int(worker_id)]
        except KeyError:
            raise OracleError(f"unknown worker {worker_id}") from None

    @property
    def spammer_count(self) -> int:
        return sum(1 for p in self.profiles if p.spammer)

    def without(self, worker_ids: set[int]) -> "Workforce":
        """A workforce with the given workers banned."""
        kept = [p for p in self.profiles if p.worker_id not in worker_ids]
        return Workforce(kept)

    @classmethod
    def generate(
        cls,
        n_workers: int,
        seed: int | np.random.Generator = 0,
        spammer_rate: float = 0.0,
        reliability_range: tuple[float, float] = (0.7, 1.0),
        noise_range: tuple[float, float] = (0.8, 1.5),
    ) -> "Workforce":
        """Sample a heterogeneous workforce."""
        if n_workers < 1:
            raise OracleError(f"n_workers must be >= 1, got {n_workers}")
        if not 0.0 <= spammer_rate < 1.0:
            raise OracleError(f"spammer_rate must be in [0, 1), got {spammer_rate}")
        lo, hi = reliability_range
        if not 0.0 <= lo <= hi <= 1.0:
            raise OracleError("reliability_range must satisfy 0 <= lo <= hi <= 1")
        rng = make_rng(seed)
        profiles = []
        for worker_id in range(n_workers):
            spammer = bool(rng.random() < spammer_rate)
            profiles.append(
                WorkerProfile(
                    worker_id=worker_id,
                    reliability=float(rng.uniform(lo, hi)),
                    noise_scale=float(rng.uniform(*noise_range)),
                    spammer=spammer,
                )
            )
        if all(p.spammer for p in profiles):
            # Guarantee at least one honest worker so queries can converge.
            profiles[0] = WorkerProfile(
                worker_id=0,
                reliability=float(rng.uniform(lo, hi)),
                noise_scale=float(rng.uniform(*noise_range)),
                spammer=False,
            )
        return cls(profiles)


@dataclass(frozen=True)
class AnswerRecord:
    """Provenance of one answered microtask."""

    worker_id: int
    left: int
    right: int
    value: float


class WorkforceOracle(JudgmentOracle):
    """Routes each microtask through a randomly assigned worker.

    A worker with reliability ``r`` answers
    ``v = r·(base draw) + noise_scale·σ_extra·z``; a spammer answers
    uniform noise over the base oracle's scale.  Judgments therefore stay
    zero-mean-correct in aggregate (honest workers' expectations keep the
    true sign) while individual answer quality varies — exactly the regime
    the confidence machinery must absorb.
    """

    def __init__(
        self,
        base: JudgmentOracle,
        workforce: Workforce,
        extra_noise: float = 0.5,
        spam_spread: float = 3.0,
        keep_log: bool = False,
    ) -> None:
        if extra_noise < 0:
            raise OracleError(f"extra_noise must be >= 0, got {extra_noise}")
        if spam_spread <= 0:
            raise OracleError(f"spam_spread must be > 0, got {spam_spread}")
        self._base = base
        self.workforce = workforce
        self._extra = extra_noise
        self._spam = spam_spread
        self.bounds = None  # worker transformations unbound the support
        self.log: list[AnswerRecord] | None = [] if keep_log else None
        self.answers_by_worker: dict[int, int] = {
            p.worker_id: 0 for p in workforce.profiles
        }
        self._reliability = np.asarray(
            [p.reliability for p in workforce.profiles]
        )
        self._noise_scale = np.asarray(
            [p.noise_scale for p in workforce.profiles]
        )
        self._spammer = np.asarray([p.spammer for p in workforce.profiles])
        self._ids = np.asarray([p.worker_id for p in workforce.profiles])

    def _transform(
        self,
        raw: np.ndarray,
        picks: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        reliability = self._reliability[picks]
        noise_scale = self._noise_scale[picks]
        spam = self._spammer[picks]
        out = reliability * raw + self._extra * noise_scale * rng.standard_normal(
            raw.shape
        )
        if spam.any():
            out[spam] = rng.uniform(-self._spam, self._spam, int(spam.sum()))
        return out

    def _account(self, picks: np.ndarray) -> None:
        unique, counts = np.unique(picks, return_counts=True)
        for pos, count in zip(unique, counts):
            self.answers_by_worker[int(self._ids[pos])] += int(count)

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        raw = self._base.draw(i, j, size, rng)
        picks = rng.integers(0, len(self.workforce), size=size)
        values = self._transform(raw, picks, rng)
        self._account(picks)
        if self.log is not None:
            for pos in range(size):
                self.log.append(
                    AnswerRecord(
                        worker_id=int(self._ids[picks[pos]]),
                        left=int(i),
                        right=int(j),
                        value=float(values[pos]),
                    )
                )
        return values

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        raw = self._base.draw_pairs(left, right, size, rng)
        picks = rng.integers(0, len(self.workforce), size=raw.shape)
        values = self._transform(raw, picks, rng)
        self._account(picks.ravel())
        return values


def estimate_worker_accuracy(
    log: list[AnswerRecord],
    gold_order: dict[int, int],
    min_answers: int = 5,
) -> dict[int, float]:
    """Per-worker accuracy against gold-standard pairs (the iCrowd idea).

    ``gold_order`` maps item id → known rank (1 = best) for the pairs one
    is willing to treat as ground truth (e.g. a small verified subset).
    Only answers touching two gold items are scored; workers with fewer
    than ``min_answers`` scored answers are omitted (no evidence).
    """
    if min_answers < 1:
        raise ValueError(f"min_answers must be >= 1, got {min_answers}")
    hits: dict[int, int] = {}
    totals: dict[int, int] = {}
    for record in log:
        if record.left not in gold_order or record.right not in gold_order:
            continue
        if record.value == 0.0:
            continue
        truth = 1.0 if gold_order[record.left] < gold_order[record.right] else -1.0
        totals[record.worker_id] = totals.get(record.worker_id, 0) + 1
        if np.sign(record.value) == truth:
            hits[record.worker_id] = hits.get(record.worker_id, 0) + 1
    return {
        worker: hits.get(worker, 0) / total
        for worker, total in totals.items()
        if total >= min_answers
    }
