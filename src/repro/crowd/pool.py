"""Lockstep racing of many comparison processes.

Incremental algorithms — SPR's partitioning loop (Algorithm 4) and the
preference-based racing baseline — advance *many* pairs by one batch of
microtasks per round, harvesting whichever verdicts become available.  A
:class:`RacingPool` runs that schedule with fully vectorized stopping-rule
evaluation: one oracle call and one ``decision_codes`` call per round,
regardless of how many pairs are racing.

Semantics match running one :class:`~repro.core.comparison.Comparator` per
pair — the stopping rule is checked after every sample, costs are charged
only for consumed samples — but rounds are shared across the pool, which is
precisely the paper's parallel-latency model (§5.5).

When the session's oracle is a :class:`~repro.crowd.faults.FaultInjector`
with faults enabled, each round *harvests partial results*: only delivered
answers are evaluated, consumed, charged, and cached; pairs whose whole
batch was dropped are re-raced under the config's
:class:`~repro.config.RetryPolicy` (exponential backoff in rounds, degrade
to tie after ``max_attempts`` consecutive delivery-free rounds or past the
per-pair ``deadline_rounds``).  With every fault rate at zero the pool
takes the historical code path bit for bit.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..config import ComparisonConfig
from ..core.estimators import HoeffdingTester, PACTester, SteinTester, make_tester
from ..core.estimators.base import sample_variance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import CrowdSession

__all__ = ["RacingPool"]


class _RoundPlan:
    """One pool's pending round: the draw is taken, evaluation is not.

    Produced by :meth:`RacingPool._plan_round` (which consumes the pool's
    RNG and bumps its round counter) and consumed by
    :func:`_evaluate_plans`; the split lets a :class:`RacingLattice` fuse
    the evaluation of many pools' rounds into one stacked numpy pass
    while each lane keeps drawing from its own stream.
    """

    __slots__ = ("pool", "active", "step", "remaining", "draw")

    def __init__(self, pool, active, step, remaining, draw):
        self.pool = pool
        self.active = active
        self.step = step
        self.remaining = remaining
        self.draw = draw


class _RoundEval:
    """The stopping-rule outcome of one planned round, ready to apply."""

    __slots__ = ("first", "consumed", "new_n", "new_s1", "new_s2", "codes_at_first")

    def __init__(self, first, consumed, new_n, new_s1, new_s2, codes_at_first):
        self.first = first
        self.consumed = consumed
        self.new_n = new_n
        self.new_s1 = new_s1
        self.new_s2 = new_s2
        self.codes_at_first = codes_at_first


def _evaluate_plans(plans: "list[_RoundPlan]") -> "list[_RoundEval]":
    """Evaluate many pools' planned rounds in fused stacked passes.

    Plans whose testers are interchangeable (same rule and parameters;
    see ``RacingPool._eval_sig``) are padded to a common width and run
    through **one** ``decision_codes``/``frozen_codes`` call, which is
    where the per-round fixed cost lives.  Per-row masks reproduce each
    plan's own step and budget clamp, so every row's outcome is
    bit-identical to evaluating its plan alone — the single-plan call in
    :meth:`RacingPool.round` is literally this function with one entry.

    Pure numpy over state captured in the plans: safe to call from a
    kernel thread while the submitting lanes are parked.
    """
    evals: list[_RoundEval | None] = [None] * len(plans)
    groups: dict[tuple, list[int]] = {}
    for pos, plan in enumerate(plans):
        groups.setdefault(plan.pool._eval_sig, []).append(pos)
    for sig, members in groups.items():
        group = [plans[pos] for pos in members]
        for pos, ev in zip(members, _evaluate_group(sig, group)):
            evals[pos] = ev
    return evals


def _evaluate_group(sig: tuple, plans: "list[_RoundPlan]") -> "list[_RoundEval]":
    """Fused evaluation of plans sharing one tester signature."""
    sizes = [plan.active.size for plan in plans]
    total = int(sum(sizes))
    width = max(plan.step for plan in plans)
    bounds = np.cumsum([0] + sizes)
    slices = [slice(int(a), int(b)) for a, b in zip(bounds[:-1], bounds[1:])]

    n0 = np.concatenate([plan.pool.n[plan.active] for plan in plans])
    s10 = np.concatenate([plan.pool.s1[plan.active] for plan in plans])
    s20 = np.concatenate([plan.pool.s2[plan.active] for plan in plans])
    # Per-row evaluation horizon: a plan's own step, clamped to the pair's
    # remaining budget — the fused equivalent of the per-plan
    # ``over_budget`` mask plus the plan's matrix width.
    cap = np.concatenate(
        [np.minimum(plan.step, plan.remaining) for plan in plans]
    ).astype(np.int64)
    workload = np.concatenate(
        [
            np.full(plan.active.size, plan.pool.config.min_workload, dtype=np.int64)
            for plan in plans
        ]
    )
    draw_pad = np.zeros((total, width), dtype=np.float64)
    for plan, rows in zip(plans, slices):
        draw_pad[rows, : plan.step] = plan.draw

    counts = np.arange(1, width + 1, dtype=np.int64)
    n_mat = n0[:, None] + counts[None, :]
    s1_mat = s10[:, None] + np.cumsum(draw_pad, axis=1)
    s2_mat = s20[:, None] + np.cumsum(np.square(draw_pad), axis=1)

    if sig[0] == "stein":
        stage = sig[3]
        # Capture first-stage crossing variances per plan before deciding;
        # the crossing column depends only on the row, so the fused
        # matrices hold exactly the per-plan values.
        for plan, rows in zip(plans, slices):
            pool = plan.pool
            active = plan.active
            n_before = pool.n[active]
            reach = np.minimum(plan.step, plan.remaining)
            crossing = np.flatnonzero(
                np.isnan(pool._stage_var[active])
                & (n_before < stage)
                & (n_before + reach >= stage)
            )
            if crossing.size:
                grow = rows.start + crossing
                cols = (stage - n_before[crossing] - 1).astype(np.intp)
                at_n = n_mat[grow, cols]
                at_mean = s1_mat[grow, cols] / at_n
                var = sample_variance(at_n, at_mean, s2_mat[grow, cols])
                pool._stage_var[active[crossing]] = var
        stage_var = np.concatenate(
            [plan.pool._stage_var[plan.active] for plan in plans]
        )
        codes = SteinTester.frozen_codes(
            n_mat, s1_mat / n_mat, stage_var[:, None], stage - 1, sig[1], sig[2]
        )
    else:
        codes = plans[0].pool._tester.decision_codes(n_mat, s1_mat / n_mat, s2_mat)
    codes = np.where(n_mat >= workload[:, None], codes, 0)
    codes = np.where(counts[None, :] > cap[:, None], 0, codes)

    has_decision = codes != 0
    any_decision = has_decision.any(axis=1)
    first = np.where(any_decision, has_decision.argmax(axis=1), width)
    consumed = np.where(any_decision, first + 1, cap).astype(np.int64)
    rows_all = np.arange(total)
    last = consumed - 1
    new_n = n_mat[rows_all, last]
    new_s1 = s1_mat[rows_all, last]
    new_s2 = s2_mat[rows_all, last]
    codes_at_first = codes[rows_all, np.minimum(first, width - 1)]

    return [
        _RoundEval(
            first[rows],
            consumed[rows],
            new_n[rows],
            new_s1[rows],
            new_s2[rows],
            codes_at_first[rows],
        )
        for rows in slices
    ]

ACTIVE = 0
DECIDED_LEFT = 1
DECIDED_RIGHT = -1
TIE = 2
DEACTIVATED = 3

#: ``repro.crowd.lattice.current_lattice``, bound on the first round (the
#: lattice module imports this one, so a top-level import would cycle).
_current_lattice = None


class RacingPool:
    """Races a fixed set of pairs in batched rounds until each resolves.

    Parameters
    ----------
    session:
        The :class:`CrowdSession` paying for microtasks and rounds.
    pairs:
        The ``(left, right)`` item pairs to race.
    use_cache:
        Replay and extend the session's judgment cache (on for SPR, off for
        PBR whose quadratic pair set would swamp the per-pair store).
    charge_latency:
        Whether each :meth:`round` bills one latency round.
    config:
        Optional comparison-config override (defaults to the session's).
    resume_state:
        A state snapshot previously produced by :meth:`snapshot_state`
        (via a session checkpoint).  When given, the per-pair numeric
        state is restored *exactly* instead of being re-derived from the
        judgment cache — cache replay regroups floating-point sums and
        can differ from the incrementally accumulated originals in the
        last ulp, which would break bit-for-bit resume.
    """

    def __init__(
        self,
        session: "CrowdSession",
        pairs: list[tuple[int, int]],
        *,
        use_cache: bool = True,
        charge_latency: bool = True,
        config: ComparisonConfig | None = None,
        resume_state: dict | None = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else session.config
        self.use_cache = use_cache
        self.charge_latency = charge_latency
        self._tester = make_tester(self.config, session.oracle.value_range)
        self._budget = self.config.effective_budget
        self._telemetry = session.telemetry
        # Fused-evaluation grouping key: plans from pools with equal keys
        # may share one stacked decision_codes call (see _evaluate_plans).
        tester = self._tester
        if isinstance(tester, SteinTester):
            self._eval_sig = (
                "stein", tester.alpha, tester.epsilon, self.config.min_workload
            )
        elif isinstance(tester, HoeffdingTester):
            self._eval_sig = ("codes", type(tester), tester.alpha, tester.value_range)
        elif isinstance(tester, PACTester):
            self._eval_sig = ("codes", type(tester), tester.alpha, tester.epsilon)
        else:
            self._eval_sig = ("codes", type(tester), tester.alpha)

        count = len(pairs)
        lefts, rights = zip(*pairs) if pairs else ((), ())
        self.left = np.asarray(lefts, dtype=np.int64)
        self.right = np.asarray(rights, dtype=np.int64)
        self.n = np.zeros(count, dtype=np.int64)
        self.s1 = np.zeros(count, dtype=np.float64)
        self.s2 = np.zeros(count, dtype=np.float64)
        self.status = np.full(count, ACTIVE, dtype=np.int8)
        self.initial_decisions: list[tuple[int, int]] = []
        # Two-stage Stein freezes each pair's variance estimate at the
        # cold-start sample; the pool tracks those per pair.
        self._stein = isinstance(self._tester, SteinTester)
        self._stage_var = np.full(count, np.nan) if self._stein else None

        # Resilience layer: delivery faults and retry/backoff/deadline
        # state.  `_injector` is non-None only when the platform actually
        # injects faults; the fault-free path below stays byte-identical.
        from .faults import FaultInjector  # deferred: faults imports oracle

        oracle = session.oracle
        self._injector = (
            oracle if isinstance(oracle, FaultInjector) and oracle.enabled else None
        )
        self._retry = self.config.resilience.retry
        self._deadline = self._retry.deadline_rounds
        self._failures = np.zeros(count, dtype=np.int64)
        self._eligible_round = np.zeros(count, dtype=np.int64)
        self._rounds_done = 0
        # Lazily created counter handles: creation stays on first
        # increment (an untouched family must not appear in snapshots),
        # but repeat rounds skip the registry's name/label lookup.
        self._counter_cache: dict[object, object] = {}
        self._round_counters: tuple | None = None

        if resume_state is not None:
            self._load_state(resume_state)
        elif use_cache and count:
            self._replay_cache()

    def _counter(self, name: str, **labels: object):
        """A cached counter handle (still created on first use only)."""
        key = (name, tuple(sorted(labels.items()))) if labels else name
        found = self._counter_cache.get(key)
        if found is None:
            found = self._counter_cache[key] = self._telemetry.counter(
                name, **labels
            )
        return found

    def _replay_cache(self) -> None:
        """Seed pair states from previously stored judgments.

        All non-empty bags are replayed through **one padded batched
        scan**: the bags are packed into a ``(pairs × longest bag)``
        matrix and the stopping rule is evaluated once over the cumulative
        moments of every prefix of every bag — the same per-sample
        semantics as a per-pair :meth:`SequentialTester.scan`, without
        building a fresh tester per pair.  Keeps SPR reference changes and
        cache-heavy re-partitions from going quadratic in Python.
        """
        cache = self.session.cache
        if cache.total_samples == 0:  # cold cache: nothing to scan
            return
        budget = self._budget
        bags = [bag[:budget] for bag in cache.bags_for(self.left, self.right)]
        lengths = np.asarray([bag.size for bag in bags], dtype=np.int64)
        rows = np.flatnonzero(lengths > 0)
        if rows.size == 0:
            return
        row_len = lengths[rows]
        width = int(row_len.max())
        values = np.zeros((rows.size, width), dtype=np.float64)
        for slot, row in enumerate(rows):
            values[slot, : lengths[row]] = bags[row]

        counts = np.arange(1, width + 1, dtype=np.int64)
        n_mat = np.broadcast_to(counts, values.shape)
        s1_mat = np.cumsum(values, axis=1)
        s2_mat = np.cumsum(np.square(values), axis=1)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean_mat = s1_mat / n_mat
        stage = self.config.min_workload
        if self._stein:
            # The first stage completes inside the replay for every bag at
            # least `I` deep; freeze those rows' variances at sample I.
            staged = np.flatnonzero(row_len >= stage)
            if staged.size:
                col = stage - 1
                var = sample_variance(
                    n_mat[staged, col], mean_mat[staged, col], s2_mat[staged, col]
                )
                self._stage_var[rows[staged]] = var
            codes = SteinTester.frozen_codes(
                n_mat,
                mean_mat,
                self._stage_var[rows][:, None],
                stage - 1,
                self._tester.alpha,
                self._tester.epsilon,
            )
        else:
            codes = self._tester.decision_codes(n_mat, mean_mat, s2_mat)
        codes = np.where(n_mat >= stage, codes, 0)
        codes = np.where(counts[None, :] <= row_len[:, None], codes, 0)

        has_decision = codes != 0
        decided = has_decision.any(axis=1)
        first = np.where(decided, has_decision.argmax(axis=1), row_len - 1)
        slots = np.arange(rows.size)
        self.n[rows] = n_mat[slots, first]
        self.s1[rows] = s1_mat[slots, first]
        self.s2[rows] = s2_mat[slots, first]
        # Resolve in pair order, as a per-pair replay would: decided bags
        # carry their crossing code, undecided-but-exhausted bags tie.
        # Undecided rows hold all-zero code rows, so one gather serves both.
        resolve = np.flatnonzero(decided | (row_len >= self._budget))
        if resolve.size:
            out_codes = codes[resolve, first[resolve]]
            out_rows = rows[resolve]
            self.status[out_rows] = np.where(
                out_codes > 0,
                DECIDED_LEFT,
                np.where(out_codes < 0, DECIDED_RIGHT, TIE),
            )
            self.initial_decisions.extend(
                zip(out_rows.tolist(), out_codes.tolist())
            )
        if self.initial_decisions:
            self._counter("crowd_cache_hits_total").inc(
                len(self.initial_decisions)
            )

    # ------------------------------------------------------------------
    # checkpoint/resume: in-flight racing state
    # ------------------------------------------------------------------
    def snapshot_state(self, indices: np.ndarray | None = None) -> dict:
        """JSON-serializable per-pair numeric state for a checkpoint.

        ``indices`` selects the pairs to snapshot (default: the still
        active ones).  The snapshot pairs with :meth:`__init__`'s
        ``resume_state`` to reconstruct the pool bit for bit.
        """
        idx = self.active_indices if indices is None else np.asarray(indices)
        state = {
            "n": self.n[idx].tolist(),
            "s1": self.s1[idx].tolist(),
            "s2": self.s2[idx].tolist(),
            "stage_var": (
                self._stage_var[idx].tolist() if self._stage_var is not None else None
            ),
            "failures": self._failures[idx].tolist(),
            "eligible_round": self._eligible_round[idx].tolist(),
            "rounds_done": int(self._rounds_done),
        }
        return state

    def _load_state(self, state: dict) -> None:
        """Restore per-pair numeric state saved by :meth:`snapshot_state`."""
        count = self.size
        for key in ("n", "s1", "s2", "failures", "eligible_round"):
            if len(state[key]) != count:
                raise ValueError(
                    f"resume state carries {len(state[key])} values for "
                    f"{key!r} but the pool holds {count} pairs"
                )
        self.n = np.asarray(state["n"], dtype=np.int64)
        self.s1 = np.asarray(state["s1"], dtype=np.float64)
        self.s2 = np.asarray(state["s2"], dtype=np.float64)
        if self._stein:
            saved = state.get("stage_var")
            if saved is not None:
                self._stage_var = np.asarray(saved, dtype=np.float64)
        self._failures = np.asarray(state["failures"], dtype=np.int64)
        self._eligible_round = np.asarray(state["eligible_round"], dtype=np.int64)
        self._rounds_done = int(state["rounds_done"])

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of pairs in the pool."""
        return len(self.left)

    @property
    def active_indices(self) -> np.ndarray:
        """Indices of pairs still racing."""
        return (self.status == ACTIVE).nonzero()[0]

    @property
    def is_done(self) -> bool:
        """Whether no pair is racing any more."""
        return not (self.status == ACTIVE).any()

    def deactivate(self, idx: int) -> None:
        """Stop racing pair ``idx`` without a verdict (it stopped mattering)."""
        if self.status[idx] == ACTIVE:
            self.status[idx] = DEACTIVATED

    def moments(self, idx: int) -> tuple[int, float, float]:
        """``(n, mean, variance)`` of pair ``idx``'s consumed samples."""
        n = int(self.n[idx])
        if n == 0:
            return 0, math.nan, math.nan
        mean = float(self.s1[idx] / n)
        if n < 2:
            return n, mean, math.nan
        var = max((float(self.s2[idx]) - n * mean * mean) / (n - 1), 0.0)
        return n, mean, var

    def mean(self, idx: int) -> float:
        """Sample mean of pair ``idx`` (NaN when empty)."""
        n = int(self.n[idx])
        return float(self.s1[idx] / n) if n else math.nan

    def progress(self, step: int | None = None) -> dict:
        """A cheap, read-only live snapshot for the observatory.

        ``est_rounds_remaining`` is the worst-case schedule left: the
        widest remaining per-pair budget divided by the round step.  An
        upper bound — pairs usually resolve before exhausting B — but a
        bound an operator can watch shrink.  Safe to call from another
        thread mid-round: it only reads fixed-size arrays, so the worst
        outcome is a one-round-stale number.
        """
        step = self.config.batch_size if step is None else int(step)
        # One tally pass over the SoA status array (codes are -1..3, so a
        # shifted bincount covers the whole byte range) instead of one
        # boolean scan per status — a scrape costs O(pairs) once, with no
        # per-pair Python objects.
        tally = np.bincount(
            self.status.astype(np.intp) + 1, minlength=DEACTIVATED + 2
        )
        active = int(tally[ACTIVE + 1])
        decided = int(tally[DECIDED_LEFT + 1] + tally[DECIDED_RIGHT + 1])
        ties = int(tally[TIE + 1])
        if active:
            widest = int(
                self._budget
                - np.min(
                    self.n, initial=self._budget, where=self.status == ACTIVE
                )
            )
            est_remaining = max(-(-widest // max(step, 1)), 1)
        else:
            est_remaining = 0
        return {
            "pairs": self.size,
            "active": active,
            "decided": decided,
            "ties": ties,
            "rounds_done": int(self._rounds_done),
            "est_rounds_remaining": est_remaining,
            "consumed_microtasks": int(self.n.sum()),
        }

    # ------------------------------------------------------------------
    def round(self, step: int | None = None) -> list[tuple[int, int]]:
        """Advance every active pair by up to one batch of microtasks.

        Returns the newly resolved pairs as ``(pair_index, code)`` with
        code ``+1`` (left wins), ``-1`` (right wins) or ``0`` (tie — the
        per-pair budget ran out undecided, or the pair degraded under the
        retry policy).  Charges the session for the consumed microtasks
        and, if configured, one latency round.
        """
        if self._injector is not None:
            return self._faulty_round(step)
        global _current_lattice
        if _current_lattice is None:  # deferred: lattice imports pool
            from .lattice import current_lattice as _current_lattice
        lattice = _current_lattice()
        if lattice is not None:
            return lattice.submit_round(self, step)
        resolved, plan = self._plan_round(step)
        if plan is None:
            return resolved
        return self._apply_round(plan, _evaluate_plans([plan])[0])

    def _plan_round(self, step: int | None = None):
        """Draw one fault-free round's samples without evaluating them.

        Returns ``(resolved, None)`` when the round terminates without an
        evaluation (pool done, or the latency deadline expired every
        pair), else ``(None, plan)`` with the oracle draw taken and the
        round counter advanced — all of the pool's RNG consumption.
        """
        active = self.active_indices
        if active.size == 0:
            return [], None
        if self._deadline is not None and self._rounds_done >= self._deadline:
            return self._expire_deadline(active), None
        step = self.config.batch_size if step is None else int(step)
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        self._rounds_done += 1

        remaining = (self._budget - self.n[active]).astype(np.int64)
        # Never draw wider than any pair can still consume: active pairs
        # have n < budget, so the clamp keeps step >= 1.
        step = int(min(step, int(remaining.max())))
        draw = self.session.oracle.draw_pairs(
            self.left[active], self.right[active], step, self.session.rng
        )
        return None, _RoundPlan(self, active, step, remaining, draw)

    def _apply_round(
        self, plan: _RoundPlan, ev: _RoundEval
    ) -> list[tuple[int, int]]:
        """Commit an evaluated round: state, statuses, cache, charges."""
        resolved: list[tuple[int, int]] = []
        budget_ties = self._commit_round(
            plan.active,
            plan.draw,
            plan.step,
            ev.first,
            ev.consumed,
            ev.codes_at_first,
            ev.new_n,
            ev.new_s1,
            ev.new_s2,
            resolved,
        )
        consumed_total = int(ev.consumed.sum())
        self.session.charge_many(
            consumed_total, rounds=1 if self.charge_latency else 0
        )
        handles = self._round_counters
        if handles is None:
            handles = self._round_counters = (
                self._counter("crowd_pool_rounds_total"),
                self._counter("oracle_judgments_total"),
            )
        handles[0].inc()
        handles[1].add(int(plan.draw.size))
        if budget_ties:
            self._counter("crowd_budget_ties_total").add(budget_ties)
        self._emit_round(plan.active.size, consumed_total, resolved, budget_ties)
        return resolved

    def _commit_round(
        self,
        sub: np.ndarray,
        values: np.ndarray,
        width: int,
        first: np.ndarray,
        consumed: np.ndarray,
        codes_at_first: np.ndarray,
        new_n: np.ndarray,
        new_s1: np.ndarray,
        new_s2: np.ndarray,
        resolved: list[tuple[int, int]],
    ) -> int:
        """The shared array-native commit: moments, statuses, cache.

        One code path serves both the fault-free and the faulty round
        (the fault path compacts its delivered answers into the same
        ``(rows × width)`` shape first), so the two can never drift
        again.  ``resolved`` is extended in place — decided rows first,
        budget-exhausted ties after, both in row order, exactly the
        historical per-row emission order.  Returns the number of
        budget-exhausted ties for the caller's counter.
        """
        self.n[sub] = new_n
        self.s1[sub] = new_s1
        self.s2[sub] = new_s2

        decided = first < width
        decided_idx = sub[decided]
        if decided_idx.size:
            codes = codes_at_first[decided]
            self.status[decided_idx] = np.where(
                codes > 0, DECIDED_LEFT, DECIDED_RIGHT
            )
            resolved.extend(zip(decided_idx.tolist(), codes.tolist()))
        exhausted_idx = sub[~decided & (new_n >= self._budget)]
        if exhausted_idx.size:
            self.status[exhausted_idx] = TIE
            resolved.extend((idx, 0) for idx in exhausted_idx.tolist())
        if self.use_cache:
            # The round's only cache cost is queueing the batch; the bags
            # absorb all queued rounds in one width-grouped pass the next
            # time anything reads the cache (JudgmentCache.defer_rows).
            self.session.cache.defer_rows(
                self.left[sub], self.right[sub], values, consumed
            )
        return int(exhausted_idx.size)

    def _emit_round(
        self,
        pairs: int,
        consumed_total: int,
        resolved: list[tuple[int, int]],
        budget_ties: int,
    ) -> None:
        """One coalesced ``pool_round`` event per round (when anyone listens).

        Replaces any per-record emission granularity: a flight recorder
        or JSONL sink sees a single aggregate event per lockstep round.
        Gated on ``has_listeners`` so the payload dict is never built for
        nobody.
        """
        telemetry = self._telemetry
        if telemetry.has_listeners:
            telemetry.emit(
                "pool_round",
                pairs=int(pairs),
                consumed=consumed_total,
                resolved=len(resolved),
                budget_ties=budget_ties,
                round=int(self._rounds_done),
            )

    def _stein_codes(
        self,
        active: np.ndarray,
        n_mat: np.ndarray,
        s1_mat: np.ndarray,
        s2_mat: np.ndarray,
        reach: np.ndarray,
    ) -> np.ndarray:
        """Two-stage Stein decisions: capture stage variances, then decide.

        ``reach`` is the per-row number of samples this round can actually
        consume — ``min(step, remaining)`` on the fault-free path, further
        limited by delivered answers under fault injection.
        """
        stage = self.config.min_workload
        n_before = self.n[active]
        crossing = np.flatnonzero(
            np.isnan(self._stage_var[active])
            & (n_before < stage)
            & (n_before + reach >= stage)
        )
        if crossing.size:
            cols = (stage - n_before[crossing] - 1).astype(np.intp)
            at_n = n_mat[crossing, cols]
            at_mean = s1_mat[crossing, cols] / at_n
            var = sample_variance(at_n, at_mean, s2_mat[crossing, cols])
            self._stage_var[active[crossing]] = var
        return SteinTester.frozen_codes(
            n_mat,
            s1_mat / n_mat,
            self._stage_var[active][:, None],
            stage - 1,
            self._tester.alpha,
            self._tester.epsilon,
        )

    # ------------------------------------------------------------------
    # fault-aware execution
    # ------------------------------------------------------------------
    def _expire_deadline(self, active: np.ndarray) -> list[tuple[int, int]]:
        """Degrade every still-active pair to a tie: the deadline passed."""
        self.status[active] = TIE
        resolved = [(idx, 0) for idx in active.tolist()]
        self._counter("crowd_degraded_ties_total", reason="deadline").add(
            int(active.size)
        )
        if self._telemetry.has_listeners:  # the pair list is listener-only
            self._telemetry.emit(
                "degraded_tie",
                reason="deadline",
                pairs=[
                    [int(self.left[i]), int(self.right[i])] for i, _ in resolved
                ],
                round=int(self._rounds_done),
            )
        return resolved

    def _register_failures(
        self, failed: np.ndarray, round_no: int
    ) -> list[tuple[int, int]]:
        """Account pairs whose whole batch was dropped this round.

        Pairs that exhausted ``max_attempts`` consecutive delivery-free
        rounds degrade to ties; the rest are re-posted after their
        exponential-backoff wait.
        """
        self._failures[failed] += 1
        exhausted = failed[self._failures[failed] >= self._retry.max_attempts]
        retrying = failed[self._failures[failed] < self._retry.max_attempts]
        resolved: list[tuple[int, int]] = []
        if exhausted.size:
            self.status[exhausted] = TIE
            resolved.extend((idx, 0) for idx in exhausted.tolist())
            self._counter("crowd_degraded_ties_total", reason="retries").add(
                int(exhausted.size)
            )
            if self._telemetry.has_listeners:
                self._telemetry.emit(
                    "degraded_tie",
                    reason="retries",
                    pairs=[
                        [int(self.left[int(i)]), int(self.right[int(i)])]
                        for i in exhausted
                    ],
                    round=int(round_no),
                )
        if retrying.size:
            waits = np.asarray(
                [
                    self._retry.backoff_rounds(int(f))
                    for f in self._failures[retrying]
                ],
                dtype=np.int64,
            )
            self._eligible_round[retrying] = round_no + 1 + waits
            self._counter("crowd_retries_total").add(int(retrying.size))
            if self._telemetry.has_listeners:
                self._telemetry.emit(
                    "retry",
                    pairs=int(retrying.size),
                    round=int(round_no),
                    max_backoff_rounds=int(waits.max()),
                )
        return resolved

    def _faulty_round(self, step: int | None = None) -> list[tuple[int, int]]:
        """One round against a faulty platform: harvest what arrived.

        Differences from the fault-free path: a whole-platform outage
        draws nothing; dropped tasks (timeout/loss) are masked out of the
        evaluation, never consumed, charged, or cached; pairs with zero
        arrivals go through the retry policy; a latency round is billed
        even when nothing arrives (the crowd clock still ticks).
        """
        active = self.active_indices
        if active.size == 0:
            return []
        if self._deadline is not None and self._rounds_done >= self._deadline:
            return self._expire_deadline(active)
        step = self.config.batch_size if step is None else int(step)
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")
        round_no = self._rounds_done
        self._rounds_done += 1
        if self.charge_latency:
            self.session.charge_rounds(1)
        self._counter("crowd_pool_rounds_total").inc()

        eligible = active[self._eligible_round[active] <= round_no]
        if eligible.size == 0:
            return []  # every active pair is waiting out its backoff

        remaining = (self._budget - self.n[eligible]).astype(np.int64)
        step = int(min(step, int(remaining.max())))
        if self._injector.outage_round():
            return self._register_failures(eligible, round_no)

        draw = self._injector.draw_pairs(
            self.left[eligible], self.right[eligible], step, self.session.rng
        )
        self._counter("oracle_judgments_total").add(int(draw.size))
        # delivery_mask consumes no fault randomness at zero drop rate, so
        # skipping it entirely is RNG-neutral and saves the allocation.
        mask = (
            self._injector.delivery_mask(eligible.size, step)
            if self._injector.policy.drop_rate > 0
            else None
        )

        resolved: list[tuple[int, int]] = []
        if mask is None or mask.all():
            # Full delivery (always at zero rates, most rounds at small
            # ones): the draw is already compact and every slot is valid,
            # so skip the compaction and zero-fill entirely — this keeps
            # the forced zero-fault path within a few percent of the
            # historical one.
            sub = eligible
            self._failures[sub] = 0
            counts_got = np.full(sub.size, step, dtype=np.int64)
            width = step
            values = draw
            col = np.arange(1, width + 1, dtype=np.int64)
            if self._injector.policy.duplicate_rate > 0:
                valid = np.ones((sub.size, width), dtype=bool)
                self._injector.apply_duplicates(values, valid)
            sub_remaining = remaining
        else:
            arrivals = mask.sum(axis=1).astype(np.int64)
            failed = eligible[arrivals == 0]
            if failed.size:
                resolved.extend(self._register_failures(failed, round_no))
            got = np.flatnonzero(arrivals > 0)
            if got.size == 0:
                return resolved
            sub = eligible[got]
            self._failures[sub] = 0  # a delivery resets the retry count

            # Compact each row's delivered answers to the left;
            # beyond-arrival columns are zeroed so the cumulative sums
            # stay clean.
            counts_got = arrivals[got]
            width = int(counts_got.max())
            order = np.argsort(~mask[got], axis=1, kind="stable")
            values = np.take_along_axis(draw[got], order, axis=1)[:, :width]
            col = np.arange(1, width + 1, dtype=np.int64)
            valid = col[None, :] <= counts_got[:, None]
            self._injector.apply_duplicates(values, valid)
            values = np.where(valid, values, 0.0)
            sub_remaining = remaining[got]

        reach = np.minimum(counts_got, sub_remaining)
        n_mat = self.n[sub, None] + col[None, :]
        s1_mat = self.s1[sub, None] + np.cumsum(values, axis=1)
        s2_mat = self.s2[sub, None] + np.cumsum(np.square(values), axis=1)
        if self._stein:
            codes = self._stein_codes(sub, n_mat, s1_mat, s2_mat, reach)
        else:
            codes = self._tester.decision_codes(n_mat, s1_mat / n_mat, s2_mat)
        codes = np.where(n_mat >= self.config.min_workload, codes, 0)
        codes = np.where(col[None, :] > reach[:, None], 0, codes)

        has_decision = codes != 0
        first = np.where(has_decision.any(axis=1), has_decision.argmax(axis=1), width)
        consumed = np.where(first < width, first + 1, reach).astype(np.int64)

        rows = np.arange(sub.size)
        last = consumed - 1  # reach >= 1 on every row with arrivals
        budget_ties = self._commit_round(
            sub,
            values,
            width,
            first,
            consumed,
            codes[rows, np.minimum(first, width - 1)],
            n_mat[rows, last],
            s1_mat[rows, last],
            s2_mat[rows, last],
            resolved,
        )
        consumed_total = int(consumed.sum())
        self.session.charge_many(consumed_total)
        if budget_ties:
            self._counter("crowd_budget_ties_total").add(budget_ties)
        self._emit_round(sub.size, consumed_total, resolved, budget_ties)
        return resolved

    def run_to_completion(self, step: int | None = None) -> list[tuple[int, int]]:
        """Race until every pair resolves; returns all resolutions in order."""
        resolved = list(self.initial_decisions)
        while not self.is_done:
            resolved.extend(self.round(step))
        return resolved
