"""Lockstep racing of many comparison processes.

Incremental algorithms — SPR's partitioning loop (Algorithm 4) and the
preference-based racing baseline — advance *many* pairs by one batch of
microtasks per round, harvesting whichever verdicts become available.  A
:class:`RacingPool` runs that schedule with fully vectorized stopping-rule
evaluation: one oracle call and one ``decision_codes`` call per round,
regardless of how many pairs are racing.

Semantics match running one :class:`~repro.core.comparison.Comparator` per
pair — the stopping rule is checked after every sample, costs are charged
only for consumed samples — but rounds are shared across the pool, which is
precisely the paper's parallel-latency model (§5.5).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

import numpy as np

from ..config import ComparisonConfig
from ..core.estimators import SteinTester, make_tester
from ..core.estimators.base import sample_variance

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import CrowdSession

__all__ = ["RacingPool"]

ACTIVE = 0
DECIDED_LEFT = 1
DECIDED_RIGHT = -1
TIE = 2
DEACTIVATED = 3


class RacingPool:
    """Races a fixed set of pairs in batched rounds until each resolves.

    Parameters
    ----------
    session:
        The :class:`CrowdSession` paying for microtasks and rounds.
    pairs:
        The ``(left, right)`` item pairs to race.
    use_cache:
        Replay and extend the session's judgment cache (on for SPR, off for
        PBR whose quadratic pair set would swamp the per-pair store).
    charge_latency:
        Whether each :meth:`round` bills one latency round.
    config:
        Optional comparison-config override (defaults to the session's).
    """

    def __init__(
        self,
        session: "CrowdSession",
        pairs: list[tuple[int, int]],
        *,
        use_cache: bool = True,
        charge_latency: bool = True,
        config: ComparisonConfig | None = None,
    ) -> None:
        self.session = session
        self.config = config if config is not None else session.config
        self.use_cache = use_cache
        self.charge_latency = charge_latency
        self._tester = make_tester(self.config, session.oracle.value_range)
        self._budget = self.config.effective_budget
        self._telemetry = session.telemetry

        count = len(pairs)
        self.left = np.asarray([p[0] for p in pairs], dtype=np.int64)
        self.right = np.asarray([p[1] for p in pairs], dtype=np.int64)
        self.n = np.zeros(count, dtype=np.int64)
        self.s1 = np.zeros(count, dtype=np.float64)
        self.s2 = np.zeros(count, dtype=np.float64)
        self.status = np.full(count, ACTIVE, dtype=np.int8)
        self.initial_decisions: list[tuple[int, int]] = []
        # Two-stage Stein freezes each pair's variance estimate at the
        # cold-start sample; the pool tracks those per pair.
        self._stein = isinstance(self._tester, SteinTester)
        self._stage_var = np.full(count, np.nan) if self._stein else None

        if use_cache and count:
            self._replay_cache()

    def _replay_cache(self) -> None:
        """Seed pair states from previously stored judgments."""
        cache = self.session.cache
        for idx in range(len(self.left)):
            bag = cache.bag(int(self.left[idx]), int(self.right[idx]))
            if bag.size == 0:
                continue
            tester = make_tester(self.config, self.session.oracle.value_range)
            _, code = tester.scan(bag[: self._budget])
            self.n[idx] = tester.state.n
            self.s1[idx] = tester.state.s1
            self.s2[idx] = tester.state.s2
            if self._stein:
                self._stage_var[idx] = tester.stage_variance
            if code is not None:
                self.status[idx] = DECIDED_LEFT if code > 0 else DECIDED_RIGHT
                self.initial_decisions.append((idx, code))
            elif self.n[idx] >= self._budget:
                self.status[idx] = TIE
                self.initial_decisions.append((idx, 0))
        if self.initial_decisions:
            self._telemetry.counter("crowd_cache_hits_total").inc(
                len(self.initial_decisions)
            )

    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Total number of pairs in the pool."""
        return len(self.left)

    @property
    def active_indices(self) -> np.ndarray:
        """Indices of pairs still racing."""
        return np.flatnonzero(self.status == ACTIVE)

    @property
    def is_done(self) -> bool:
        """Whether no pair is racing any more."""
        return not np.any(self.status == ACTIVE)

    def deactivate(self, idx: int) -> None:
        """Stop racing pair ``idx`` without a verdict (it stopped mattering)."""
        if self.status[idx] == ACTIVE:
            self.status[idx] = DEACTIVATED

    def moments(self, idx: int) -> tuple[int, float, float]:
        """``(n, mean, variance)`` of pair ``idx``'s consumed samples."""
        n = int(self.n[idx])
        if n == 0:
            return 0, math.nan, math.nan
        mean = float(self.s1[idx] / n)
        if n < 2:
            return n, mean, math.nan
        var = max((float(self.s2[idx]) - n * mean * mean) / (n - 1), 0.0)
        return n, mean, var

    def mean(self, idx: int) -> float:
        """Sample mean of pair ``idx`` (NaN when empty)."""
        n = int(self.n[idx])
        return float(self.s1[idx] / n) if n else math.nan

    # ------------------------------------------------------------------
    def round(self, step: int | None = None) -> list[tuple[int, int]]:
        """Advance every active pair by up to one batch of microtasks.

        Returns the newly resolved pairs as ``(pair_index, code)`` with
        code ``+1`` (left wins), ``-1`` (right wins) or ``0`` (tie — the
        per-pair budget ran out undecided).  Charges the session for the
        consumed microtasks and, if configured, one latency round.
        """
        active = self.active_indices
        if active.size == 0:
            return []
        step = self.config.batch_size if step is None else int(step)
        if step < 1:
            raise ValueError(f"step must be >= 1, got {step}")

        remaining = (self._budget - self.n[active]).astype(np.int64)
        draw = self.session.oracle.draw_pairs(
            self.left[active], self.right[active], step, self.session.rng
        )
        counts = np.arange(1, step + 1, dtype=np.int64)
        n_mat = self.n[active, None] + counts[None, :]
        s1_mat = self.s1[active, None] + np.cumsum(draw, axis=1)
        s2_mat = self.s2[active, None] + np.cumsum(np.square(draw), axis=1)
        if self._stein:
            codes = self._stein_codes(active, n_mat, s1_mat, s2_mat, remaining)
        else:
            codes = self._tester.decision_codes(n_mat, s1_mat / n_mat, s2_mat)
        codes = np.where(n_mat >= self.config.min_workload, codes, 0)
        over_budget = counts[None, :] > remaining[:, None]
        codes = np.where(over_budget, 0, codes)

        has_decision = codes != 0
        first = np.where(has_decision.any(axis=1), has_decision.argmax(axis=1), step)
        consumed = np.where(
            first < step, first + 1, np.minimum(step, remaining)
        ).astype(np.int64)

        rows = np.arange(active.size)
        last = consumed - 1
        self.n[active] = n_mat[rows, last]
        self.s1[active] = s1_mat[rows, last]
        self.s2[active] = s2_mat[rows, last]

        cache = self.session.cache if self.use_cache else None
        resolved: list[tuple[int, int]] = []
        decided_rows = np.flatnonzero(first < step)
        exhausted_rows = np.flatnonzero(
            (first >= step) & (self.n[active] >= self._budget)
        )
        for row in decided_rows:
            idx = int(active[row])
            code = int(codes[row, first[row]])
            self.status[idx] = DECIDED_LEFT if code > 0 else DECIDED_RIGHT
            resolved.append((idx, code))
        for row in exhausted_rows:
            idx = int(active[row])
            self.status[idx] = TIE
            resolved.append((idx, 0))
        if cache is not None:
            for row in range(active.size):
                idx = int(active[row])
                cache.append(
                    int(self.left[idx]),
                    int(self.right[idx]),
                    draw[row, : consumed[row]],
                )

        self.session.charge_cost(int(consumed.sum()))
        if self.charge_latency:
            self.session.charge_rounds(1)
        self._telemetry.counter("crowd_pool_rounds_total").inc()
        self._telemetry.counter("oracle_judgments_total").inc(active.size * step)
        if exhausted_rows.size:
            self._telemetry.counter("crowd_budget_ties_total").inc(
                int(exhausted_rows.size)
            )
        return resolved

    def _stein_codes(
        self,
        active: np.ndarray,
        n_mat: np.ndarray,
        s1_mat: np.ndarray,
        s2_mat: np.ndarray,
        remaining: np.ndarray,
    ) -> np.ndarray:
        """Two-stage Stein decisions: capture stage variances, then decide."""
        stage = self.config.min_workload
        n_before = self.n[active]
        crossing = np.flatnonzero(
            np.isnan(self._stage_var[active])
            & (n_before < stage)
            & (n_before + np.minimum(n_mat.shape[1], remaining) >= stage)
        )
        if crossing.size:
            cols = (stage - n_before[crossing] - 1).astype(np.intp)
            at_n = n_mat[crossing, cols]
            at_mean = s1_mat[crossing, cols] / at_n
            var = sample_variance(at_n, at_mean, s2_mat[crossing, cols])
            self._stage_var[active[crossing]] = var
        return SteinTester.frozen_codes(
            n_mat,
            s1_mat / n_mat,
            self._stage_var[active][:, None],
            stage - 1,
            self._tester.alpha,
            self._tester.epsilon,
        )

    def run_to_completion(self, step: int | None = None) -> list[tuple[int, int]]:
        """Race until every pair resolves; returns all resolutions in order."""
        resolved = list(self.initial_decisions)
        while not self.is_done:
            resolved.extend(self.round(step))
        return resolved
