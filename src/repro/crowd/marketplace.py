"""A small discrete-event model of a crowdsourcing marketplace.

The timeline module converts rounds to hours with a closed form; this
module *simulates* the platform clearing each batch: a finite worker pool,
per-task pickup delays, skewed answer times (lognormal — a few workers
always take much longer), and task abandonment with reposting.  A round
completes when its last answer lands; rounds are sequential (§5.5).

The scheduler is an exact makespan simulation: each task occupies one
worker for ``pickup + answer`` seconds, abandoned tasks go back into the
queue, and a round's duration is the time its final task completes.  With
``n_workers`` machines and per-round task counts from a real session, the
result is a defensible wall-clock estimate with queueing effects the
closed form cannot capture.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..rng import make_rng
from .timeline import PREFERENCE_TASK_SECONDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import CrowdSession

__all__ = ["MarketplaceModel", "MarketplaceReport", "rounds_from_session"]


@dataclass(frozen=True)
class MarketplaceReport:
    """Outcome of simulating a query's rounds through the marketplace."""

    total_seconds: float
    round_seconds: tuple[float, ...]
    tasks_posted: int
    tasks_reposted: int
    worker_busy_seconds: float
    n_workers: int

    @property
    def hours(self) -> float:
        return self.total_seconds / 3600.0

    @property
    def utilization(self) -> float:
        """Fraction of total worker-time spent answering (vs idle)."""
        if self.total_seconds == 0:
            return 0.0
        return self.worker_busy_seconds / (self.total_seconds * self.n_workers)

    def summary(self) -> str:
        return (
            f"~{self.hours:.1f} h over {len(self.round_seconds)} rounds; "
            f"{self.tasks_posted:,} tasks posted "
            f"({self.tasks_reposted:,} reposts)"
        )


@dataclass(frozen=True)
class MarketplaceModel:
    """Behavioural parameters of the simulated platform.

    Attributes
    ----------
    n_workers:
        Concurrent workers answering this job.
    answer_seconds:
        Median answer time of one microtask (Appendix B: ~10.3 s for
        preference questions).
    answer_cv:
        Coefficient of variation of the lognormal answer time; 0 makes
        answers deterministic.
    pickup_seconds:
        Mean exponential delay before an idle worker picks up a queued
        task (platform discovery latency).
    abandonment_rate:
        Probability a picked-up task is abandoned (worker leaves, answer
        rejected) and must be reposted.
    """

    n_workers: int = 30
    answer_seconds: float = PREFERENCE_TASK_SECONDS
    answer_cv: float = 0.6
    pickup_seconds: float = 5.0
    abandonment_rate: float = 0.03

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.answer_seconds <= 0:
            raise ValueError("answer_seconds must be > 0")
        if self.answer_cv < 0:
            raise ValueError("answer_cv must be >= 0")
        if self.pickup_seconds < 0:
            raise ValueError("pickup_seconds must be >= 0")
        if not 0.0 <= self.abandonment_rate < 1.0:
            raise ValueError("abandonment_rate must be in [0, 1)")

    # ------------------------------------------------------------------
    def _answer_times(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if self.answer_cv == 0:
            return np.full(count, self.answer_seconds)
        # Lognormal with the requested median and coefficient of variation.
        sigma2 = np.log1p(self.answer_cv**2)
        mu = np.log(self.answer_seconds)
        return rng.lognormal(mean=mu, sigma=np.sqrt(sigma2), size=count)

    def simulate(
        self,
        rounds: list[int],
        seed: int | np.random.Generator = 0,
    ) -> MarketplaceReport:
        """Clear each round's task batch through the worker pool."""
        if any(count < 0 for count in rounds):
            raise ValueError("round task counts must be non-negative")
        rng = make_rng(seed)
        round_seconds: list[float] = []
        posted = reposted = 0
        busy = 0.0

        for count in rounds:
            if count == 0:
                round_seconds.append(0.0)
                continue
            # Min-heap of worker-free times within this round.
            workers = [0.0] * self.n_workers
            heapq.heapify(workers)
            queue = int(count)
            finish = 0.0
            while queue > 0:
                posted += 1
                queue -= 1
                free_at = heapq.heappop(workers)
                pickup = (
                    rng.exponential(self.pickup_seconds)
                    if self.pickup_seconds > 0
                    else 0.0
                )
                answer = float(self._answer_times(1, rng)[0])
                done = free_at + pickup + answer
                busy += answer
                if rng.random() < self.abandonment_rate:
                    reposted += 1
                    queue += 1  # the task returns to the queue
                else:
                    finish = max(finish, done)
                heapq.heappush(workers, done)
            round_seconds.append(finish)

        return MarketplaceReport(
            total_seconds=float(sum(round_seconds)),
            round_seconds=tuple(round_seconds),
            tasks_posted=posted,
            tasks_reposted=reposted,
            worker_busy_seconds=busy,
            n_workers=self.n_workers,
        )


def rounds_from_session(session: "CrowdSession") -> list[int]:
    """Approximate a session's per-round task counts.

    The ledgers record totals, not the per-round schedule; absent a trace,
    the spend is spread uniformly over the rounds — adequate for wall-clock
    projection, where the sum (not the split) dominates.
    """
    rounds = session.latency.rounds
    tasks = session.cost.microtasks
    if rounds == 0 or tasks == 0:
        return []
    base = tasks // rounds
    remainder = tasks - base * rounds
    return [base + (1 if i < remainder else 0) for i in range(rounds)]
