"""The batched group-comparison engine.

A *parallel comparison group* (§5.5) is a set of comparisons outsourced to
the crowd simultaneously: cost is the sum over the group, latency is the
max.  The sequential engine realises that model by running one Python
comparison process per pair; this module realises it the way the
sequential-elimination literature schedules it — every pair of the group
races through one :class:`~repro.crowd.pool.RacingPool` in lockstep
rounds, so each round is **one** ``draw_pairs`` call and **one**
vectorized stopping-rule evaluation for the whole group, regardless of
group size.

The engine synthesizes the same :class:`ComparisonRecord` list the
sequential path returns and preserves its accounting semantics exactly:

* the stopping rule is checked after every sample;
* cost is charged only for consumed microtasks;
* the group occupies the crowd for ``max`` rounds over its members;
* the judgment cache receives exactly the consumed draws;
* a pair whose cached bag already decides it costs nothing, and repeated
  occurrences of one pair inside a group are served from the first
  occurrence's samples — exactly as a sequential cache replay would.

Only the *order* in which the session RNG is consumed differs from the
sequential engine (lockstep rounds interleave the pairs' draws), so
individual judgments — and therefore seed-pinned workloads — differ while
remaining statistically indistinguishable (`tests/test_group_engine.py`
pins both the invariants and the statistical parity).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..core.comparison import ComparisonRecord
from .pool import RacingPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import CrowdSession

__all__ = ["race_group"]


def race_group(
    session: "CrowdSession", pairs: list[tuple[int, int]]
) -> list[tuple[ComparisonRecord, bool]]:
    """Run one parallel comparison group through a racing pool.

    Returns ``(record, fresh)`` tuples in input order, where ``fresh``
    marks the first occurrence of each distinct pair (repeats are cache
    replays: zero cost, zero rounds, possibly flipped orientation).
    Charges the session for consumed microtasks only; latency is *not*
    charged here — the caller bills the group max of the records' rounds.
    """
    first_of: dict[tuple[int, int], int] = {}
    unique: list[tuple[int, int]] = []
    slot_of: list[int] = []
    for left, right in pairs:
        left, right = int(left), int(right)
        if left == right:
            raise ValueError(f"cannot compare item {left} with itself")
        key = (left, right) if left < right else (right, left)
        slot = first_of.get(key)
        if slot is None:
            slot = len(unique)
            first_of[key] = slot
            unique.append((left, right))
        slot_of.append(slot)

    pool = RacingPool(session, unique, charge_latency=False)
    replayed = pool.n.copy()  # workload already paid for by the cache
    code_of = dict(pool.initial_decisions)
    rounds_of = [0] * len(unique)
    round_no = 0
    while not pool.is_done:
        round_no += 1
        for idx, code in pool.round():
            code_of[idx] = code
            rounds_of[idx] = round_no

    records: list[tuple[ComparisonRecord, bool]] = []
    seen: set[int] = set()
    for (left, right), slot in zip(pairs, slot_of):
        left, right = int(left), int(right)
        fresh = slot not in seen
        seen.add(slot)
        workload, mean, var = pool.moments(slot)
        code = code_of.get(slot, 0)
        if (left, right) != unique[slot]:  # opposite orientation of the race
            code = -code
            mean = -mean
        records.append(
            (
                ComparisonRecord.from_race(
                    left,
                    right,
                    code,
                    workload=workload,
                    cost=int(pool.n[slot] - replayed[slot]) if fresh else 0,
                    rounds=rounds_of[slot] if fresh else 0,
                    mean=mean,
                    std=math.sqrt(var) if not math.isnan(var) else math.nan,
                ),
                fresh,
            )
        )
    return records
