"""The batched group-comparison engine.

A *parallel comparison group* (§5.5) is a set of comparisons outsourced to
the crowd simultaneously: cost is the sum over the group, latency is the
max.  The sequential engine realises that model by running one Python
comparison process per pair; this module realises it the way the
sequential-elimination literature schedules it — every pair of the group
races through one :class:`~repro.crowd.pool.RacingPool` in lockstep
rounds, so each round is **one** ``draw_pairs`` call and **one**
vectorized stopping-rule evaluation for the whole group, regardless of
group size.

The engine synthesizes the same :class:`ComparisonRecord` list the
sequential path returns and preserves its accounting semantics exactly:

* the stopping rule is checked after every sample;
* cost is charged only for consumed microtasks;
* the group occupies the crowd for ``max`` rounds over its members;
* the judgment cache receives exactly the consumed draws;
* a pair whose cached bag already decides it costs nothing, and repeated
  occurrences of one pair inside a group are served from the first
  occurrence's samples — exactly as a sequential cache replay would.

Only the *order* in which the session RNG is consumed differs from the
sequential engine (lockstep rounds interleave the pairs' draws), so
individual judgments — and therefore seed-pinned workloads — differ while
remaining statistically indistinguishable (`tests/test_group_engine.py`
pins both the invariants and the statistical parity).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..core.comparison import ComparisonRecord
from .pool import RacingPool

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import CrowdSession

__all__ = ["race_group"]


def race_group(
    session: "CrowdSession", pairs: list[tuple[int, int]]
) -> list[tuple[ComparisonRecord, bool]]:
    """Run one parallel comparison group through a racing pool.

    Returns ``(record, fresh)`` tuples in input order, where ``fresh``
    marks the first occurrence of each distinct pair (repeats are cache
    replays: zero cost, zero rounds, possibly flipped orientation).
    Charges the session for consumed microtasks only; latency is *not*
    charged here — the caller bills the group max of the records' rounds.
    """
    left_list: list[int] = []
    right_list: list[int] = []
    slot_list: list[int] = []
    fresh_list: list[bool] = []
    flip_list: list[bool] = []
    first_of: dict[tuple[int, int], int] = {}
    unique: list[tuple[int, int]] = []
    for left, right in pairs:
        left, right = int(left), int(right)
        if left == right:
            raise ValueError(f"cannot compare item {left} with itself")
        key = (left, right) if left < right else (right, left)
        slot = first_of.get(key)
        if slot is None:
            slot = len(unique)
            first_of[key] = slot
            unique.append((left, right))
            fresh_list.append(True)
        else:
            fresh_list.append(False)
        left_list.append(left)
        right_list.append(right)
        slot_list.append(slot)
        flip_list.append(left != unique[slot][0])
    lefts = np.asarray(left_list, dtype=np.int64)
    rights = np.asarray(right_list, dtype=np.int64)
    slots = np.asarray(slot_list, dtype=np.intp)

    pool = RacingPool(session, unique, charge_latency=False)
    replayed = pool.n.copy()  # workload already paid for by the cache
    code_of = dict(pool.initial_decisions)
    rounds_of = np.zeros(len(unique), dtype=np.int64)
    round_no = 0
    while not pool.is_done:
        round_no += 1
        for idx, code in pool.round():
            code_of[idx] = code
            rounds_of[idx] = round_no

    # Record synthesis is array-native end to end: per-slot moments, the
    # per-occurrence orientation flips and fresh/replay masks are all
    # computed in whole-group passes, and one
    # :meth:`ComparisonRecord.from_arrays` call builds the records — the
    # per-pair math is bit-identical to the historical per-row
    # ``pool.moments``/``from_race`` loop (pinned by
    # tests/test_record_synthesis.py and the apply-parity golden).
    codes_u = np.zeros(len(unique), dtype=np.int64)
    if code_of:
        codes_u[np.fromiter(code_of.keys(), np.intp, len(code_of))] = np.fromiter(
            code_of.values(), np.int64, len(code_of)
        )
    # No errstate guard needed: denominators are clamped >= 1 and every
    # NaN below is propagation of an existing NaN, which never warns.
    n_u = pool.n
    mean_u = np.where(n_u > 0, pool.s1 / np.where(n_u > 0, n_u, 1), np.nan)
    var_u = np.where(
        n_u >= 2,
        np.maximum(
            (pool.s2 - n_u * mean_u * mean_u) / np.maximum(n_u - 1, 1), 0.0
        ),
        np.nan,
    )
    std_u = np.sqrt(var_u)  # NaN (workload < 2) passes through

    # ``fresh`` (first occurrence of each slot) and ``flip`` (opposite
    # orientation of the raced key) were tallied in the dedupe pass.
    fresh = np.asarray(fresh_list, dtype=bool)
    flip = np.asarray(flip_list, dtype=bool)
    slot_codes = codes_u[slots]
    slot_n = n_u[slots]
    slot_mean = mean_u[slots]
    records = ComparisonRecord.from_arrays(
        lefts,
        rights,
        np.where(flip, -slot_codes, slot_codes),
        workloads=slot_n,
        costs=np.where(fresh, slot_n - replayed[slots], 0),
        rounds=np.where(fresh, rounds_of[slots], 0),
        means=np.where(flip, -slot_mean, slot_mean),
        stds=std_u[slots],
    )
    return list(zip(records, fresh_list))
