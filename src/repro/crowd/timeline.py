"""Wall-clock projection of the round-based latency model.

The paper measures latency in batch rounds (§5.5); operators budget in
hours.  Appendix B supplies the bridge: a binary microtask takes ~7.8 s of
worker time and a preference microtask ~10.3 s, and a platform runs many
workers in parallel.  :func:`project_wall_clock` converts a session's
ledgers into an estimated wall-clock duration under a simple M/D/c-style
model:

* within one round, the round's microtasks spread over the worker pool;
* a round cannot finish faster than one task's answer time plus the
  platform's per-batch posting overhead;
* rounds are sequential (that is what a round *is*).

The paper's own live run sanity-checks the scale: the PeopleAge experiment
(≈10.5k microtasks) took 6 h 55 min on CrowdFlower; the default parameters
reproduce that order of magnitude.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import CrowdSession

__all__ = ["WallClockEstimate", "project_wall_clock", "PREFERENCE_TASK_SECONDS",
           "BINARY_TASK_SECONDS"]

#: Average answer times observed in the paper's CrowdFlower study (Table 9).
PREFERENCE_TASK_SECONDS = 10.3
BINARY_TASK_SECONDS = 7.8


@dataclass(frozen=True)
class WallClockEstimate:
    """Projected duration of a crowdsourced query."""

    seconds: float
    rounds: int
    microtasks: int
    workers: int

    @property
    def hours(self) -> float:
        return self.seconds / 3600.0

    def summary(self) -> str:
        return (
            f"~{self.hours:.1f} h for {self.microtasks:,} microtasks over "
            f"{self.rounds:,} rounds with {self.workers} concurrent workers"
        )


def project_wall_clock(
    session: "CrowdSession",
    workers: int = 30,
    task_seconds: float = PREFERENCE_TASK_SECONDS,
    posting_overhead_seconds: float = 30.0,
) -> WallClockEstimate:
    """Estimate the wall-clock duration of everything a session has spent.

    ``workers`` is the number of crowd workers answering concurrently;
    ``posting_overhead_seconds`` is the fixed per-round cost of publishing
    a batch and collecting its answers (task review, platform latency).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if task_seconds <= 0:
        raise ValueError(f"task_seconds must be > 0, got {task_seconds}")
    if posting_overhead_seconds < 0:
        raise ValueError("posting_overhead_seconds must be >= 0")

    rounds = session.latency.rounds
    microtasks = session.cost.microtasks
    if rounds == 0 or microtasks == 0:
        return WallClockEstimate(
            seconds=0.0, rounds=rounds, microtasks=microtasks, workers=workers
        )
    # Average work per round, spread across the pool; each round pays the
    # posting overhead and at least one answer time.
    tasks_per_round = microtasks / rounds
    working = max(task_seconds, tasks_per_round * task_seconds / workers)
    seconds = rounds * (working + posting_overhead_seconds)
    return WallClockEstimate(
        seconds=seconds, rounds=rounds, microtasks=microtasks, workers=workers
    )
