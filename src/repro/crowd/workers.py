"""Worker behaviour models.

The paper trusts workers in aggregate: preference values for a pair are
i.i.d. draws from a pair-specific distribution whose mean tracks the true
score gap and whose variance encodes the difficulty of the pair.  These
classes let :class:`~repro.crowd.oracle.LatentScoreOracle` compose that
distribution from interpretable pieces — honest Gaussian perception noise,
plus optional "careless worker" contamination for robustness experiments
and failure-injection tests.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..telemetry import get_registry

__all__ = ["WorkerNoise", "GaussianNoise", "CarelessWorkerNoise"]


class WorkerNoise(ABC):
    """Additive noise a worker applies on top of the true score gap."""

    @abstractmethod
    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``size`` noise values."""


@dataclass(frozen=True)
class GaussianNoise(WorkerNoise):
    """Plain Gaussian perception noise with standard deviation ``sigma``."""

    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        if self.sigma == 0:
            return np.zeros(size)
        return rng.normal(0.0, self.sigma, size=size)


@dataclass(frozen=True)
class CarelessWorkerNoise(WorkerNoise):
    """A mixture: honest Gaussian workers plus a careless fraction.

    With probability ``careless_rate`` a judgment is replaced by pure
    uniform noise over ``[-spread, spread]`` *added to nothing*, modelling a
    worker who answers without looking.  The comparison process must still
    converge (more slowly) — this is the contamination model used by the
    robustness tests.
    """

    sigma: float = 1.0
    careless_rate: float = 0.1
    spread: float = 5.0

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ValueError(f"sigma must be >= 0, got {self.sigma}")
        if not 0.0 <= self.careless_rate <= 1.0:
            raise ValueError(
                f"careless_rate must be in [0, 1], got {self.careless_rate}"
            )
        if self.spread <= 0:
            raise ValueError(f"spread must be > 0, got {self.spread}")

    def sample(self, size: int, rng: np.random.Generator) -> np.ndarray:
        noise = rng.normal(0.0, self.sigma, size=size) if self.sigma else np.zeros(size)
        if self.careless_rate > 0:
            careless = rng.random(size) < self.careless_rate
            if careless.any():
                get_registry().counter("worker_careless_judgments_total").inc(
                    int(careless.sum())
                )
            # Careless answers ignore the true gap; encode that as a noise
            # value so large it dominates.  The oracle recognizes the mask
            # via sentinel handling below being unnecessary: uniform noise
            # centred at 0 simply has no information about the pair.
            noise[careless] = rng.uniform(-self.spread, self.spread, careless.sum())
        return noise
