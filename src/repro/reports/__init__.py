"""Human- and machine-readable reports derived from query telemetry."""

from .explain import ExplainReport, ItemCost, TrailEntry, explain_query

__all__ = ["ExplainReport", "ItemCost", "TrailEntry", "explain_query"]
