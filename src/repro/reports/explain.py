"""Per-query explain reports: where every microtask of the bill went.

A deployment that just paid for a four-figure crowd query wants the
answer *explained*: which phase spent what, which items absorbed the
budget, and which comparisons support each member of the returned top-k.
:func:`explain_query` folds a :class:`~repro.tracing.QueryTrace` and the
session's ledgers into one :class:`ExplainReport` that renders both as a
human-readable table (``crowd-topk explain``) and as JSON for tooling.

Attribution rules — chosen so the report always reconciles exactly:

* Each traced comparison's incremental cost is charged to its **left**
  item (the candidate under test; references and pivots sit on the
  right).  Summing per-item costs therefore never double-counts.
* Spending the trace never saw — notably SPR's selection phase, which
  runs on a forked session whose compare listeners are deliberately
  cleared — lands in an explicit ``unattributed`` bucket rather than
  being silently smeared over items.

The reconciliation identity (pinned by an integration test)::

    sum(item costs) + unattributed == session.total_cost
                                   == crowd_microtasks_total
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..crowd.session import CrowdSession
    from ..telemetry import MetricsRegistry
    from ..tracing import QueryTrace

__all__ = ["ExplainReport", "ItemCost", "TrailEntry", "explain_query"]


@dataclass(frozen=True)
class ItemCost:
    """Microtask spending attributed to one item (as the left operand)."""

    item: int
    cost: int
    comparisons: int
    workload: int


@dataclass(frozen=True)
class TrailEntry:
    """One comparison supporting (or challenging) a top-k member.

    ``outcome`` is rewritten from the member's own perspective: ``WIN``
    means the member beat ``opponent`` regardless of which side of the
    original comparison it sat on.
    """

    index: int
    phase: str
    opponent: int
    outcome: str
    workload: int
    cost: int
    rounds: int

    def line(self) -> str:
        return (
            f"    [{self.index:4d}] {self.phase:12s} vs {self.opponent:<6d} "
            f"{self.outcome:5s} w={self.workload:<5d} +{self.cost}"
        )


#: Outcome names from the member's own perspective.  Trace events carry
#: the session's ``LEFT``/``RIGHT``/``TIE`` verdicts; a trail entry says
#: ``WIN`` when the member won regardless of which side it sat on.
_AS_MEMBER = {"left": {"LEFT": "WIN", "RIGHT": "LOSS", "TIE": "TIE"},
              "right": {"LEFT": "LOSS", "RIGHT": "WIN", "TIE": "TIE"}}


@dataclass(frozen=True)
class ExplainReport:
    """Provenance of one answered top-k query.

    Build with :func:`explain_query`; render with :meth:`to_text` or
    :meth:`to_json`.
    """

    method: str
    k: int
    topk: tuple[int, ...]
    total_cost: int
    total_rounds: int
    total_comparisons: int
    cached_comparisons: int
    budget_cap: int | None
    phases: tuple[dict, ...]
    item_costs: tuple[ItemCost, ...]
    unattributed: int
    trails: dict[int, tuple[TrailEntry, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def attributed(self) -> int:
        """Microtasks the trace could pin to a specific item."""
        return sum(entry.cost for entry in self.item_costs)

    def reconciles(self, microtasks_total: int | None = None) -> bool:
        """Whether per-item costs + unattributed == the ledger total.

        Pass the ``crowd_microtasks_total`` counter value to also check
        the telemetry side of the identity.
        """
        if self.attributed + self.unattributed != self.total_cost:
            return False
        if microtasks_total is not None and microtasks_total != self.total_cost:
            return False
        return True

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "k": self.k,
            "topk": list(self.topk),
            "total_cost": self.total_cost,
            "total_rounds": self.total_rounds,
            "total_comparisons": self.total_comparisons,
            "cached_comparisons": self.cached_comparisons,
            "budget_cap": self.budget_cap,
            "phases": [dict(p) for p in self.phases],
            "items": [vars(c) for c in self.item_costs],
            "unattributed": self.unattributed,
            "trails": {
                str(item): [vars(e) for e in trail]
                for item, trail in self.trails.items()
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_text(self, trail_limit: int = 8, item_limit: int = 15) -> str:
        lines = [
            f"explain: top-{self.k} by {self.method}",
            f"  total cost   {self.total_cost:,} microtasks"
            + (f" (cap {self.budget_cap:,})" if self.budget_cap else ""),
            f"  latency      {self.total_rounds:,} rounds",
            f"  comparisons  {self.total_comparisons:,} traced "
            f"({self.cached_comparisons:,} cache hits)",
            "",
            "  phase (exclusive)        count       cost     rounds",
        ]
        for p in self.phases:
            lines.append(
                f"  {p['phase']:<18s} {p['comparisons']:>11,} {p['cost']:>10,} "
                f"{p['rounds']:>10,}"
            )
        lines.append("")
        lines.append("  cost by item (left operand of each comparison):")
        lines.append("  item         cost  comparisons   workload")
        for entry in self.item_costs[:item_limit]:
            lines.append(
                f"  {entry.item:<8d} {entry.cost:>8,} {entry.comparisons:>12,} "
                f"{entry.workload:>10,}"
            )
        hidden = len(self.item_costs) - item_limit
        if hidden > 0:
            tail = sum(e.cost for e in self.item_costs[item_limit:])
            lines.append(f"  ... {hidden} more items ({tail:,} microtasks)")
        if self.unattributed:
            lines.append(
                f"  (unattributed) {self.unattributed:>6,}  "
                "— spending outside the trace (e.g. selection fork)"
            )
        lines.append("")
        lines.append("  confidence trail per returned item:")
        for position, item in enumerate(self.topk, start=1):
            trail = self.trails.get(item, ())
            wins = sum(1 for e in trail if e.outcome == "WIN")
            losses = sum(1 for e in trail if e.outcome == "LOSS")
            ties = len(trail) - wins - losses
            spent = sum(e.cost for e in trail)
            lines.append(
                f"  {position:3d}. item {item}: {len(trail)} comparisons "
                f"({wins}W/{losses}L/{ties}T), {spent:,} microtasks touched"
            )
            for e in trail[:trail_limit]:
                lines.append(e.line())
            if len(trail) > trail_limit:
                lines.append(f"    ... {len(trail) - trail_limit} more")
        identity = "OK" if self.reconciles() else "MISMATCH"
        lines.append("")
        lines.append(
            f"  reconciliation: {self.attributed:,} attributed + "
            f"{self.unattributed:,} unattributed = {self.total_cost:,} "
            f"total [{identity}]"
        )
        return "\n".join(lines)


def _span_phases(registry: "MetricsRegistry") -> tuple[dict, ...]:
    """Per-phase exclusive totals from the registry's completed spans.

    Exclusive figures never double-count a microtask across a span tree,
    so these rows sum to (at most) the session total just like the
    trace-based fallback.
    """
    totals: dict[str, list[int]] = {}
    for span in registry.spans:
        if span.cost is None:
            continue
        bucket = totals.setdefault(span.name, [0, 0, 0])
        bucket[0] += 1
        bucket[1] += span.exclusive_cost or 0
        bucket[2] += span.exclusive_rounds or 0
    return tuple(
        {"phase": name, "comparisons": count, "cost": cost, "rounds": rounds}
        for name, (count, cost, rounds) in sorted(totals.items())
    )


def explain_query(
    session: "CrowdSession",
    trace: "QueryTrace",
    topk: tuple[int, ...] | list[int],
    *,
    method: str = "spr",
    k: int | None = None,
    registry: "MetricsRegistry | None" = None,
) -> ExplainReport:
    """Fold a finished query's trace and ledgers into an ExplainReport.

    ``trace`` must have been attached to ``session`` for the whole query
    (and :meth:`~repro.tracing.QueryTrace.finish` called, directly or by
    leaving its ``with`` block) so the phase totals are closed.  The
    report reconciles against the *session* ledgers, not the trace: any
    spending the trace missed is surfaced as ``unattributed``.

    With ``registry``, phase rows come from the registry's completed
    spans (exclusive cost per ``spr.select``/``spr.partition``/
    ``spr.rank`` region); otherwise from the trace's coarser phase marks.
    """
    topk = tuple(int(i) for i in topk)
    k = len(topk) if k is None else k

    costs: dict[int, list[int]] = {}
    for event in trace.events:
        bucket = costs.setdefault(event.left, [0, 0, 0])
        bucket[0] += event.cost
        bucket[1] += 1
        bucket[2] += event.workload
    item_costs = tuple(
        ItemCost(item=item, cost=c, comparisons=n, workload=w)
        for item, (c, n, w) in sorted(
            costs.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
    )

    total_cost = session.total_cost
    unattributed = total_cost - sum(e.cost for e in item_costs)

    trails: dict[int, tuple[TrailEntry, ...]] = {}
    members = set(topk)
    collected: dict[int, list[TrailEntry]] = {item: [] for item in topk}
    for event in trace.events:
        for item in (event.left, event.right):
            if item not in members or event.left == event.right:
                continue
            side = "right" if item == event.right else "left"
            collected[item].append(
                TrailEntry(
                    index=event.index,
                    phase=event.phase,
                    opponent=event.left if side == "right" else event.right,
                    outcome=_AS_MEMBER[side].get(event.outcome, event.outcome),
                    workload=event.workload,
                    cost=event.cost,
                    rounds=event.rounds,
                )
            )
    trails = {item: tuple(entries) for item, entries in collected.items()}

    if registry is not None and any(s.cost is not None for s in registry.spans):
        phases = _span_phases(registry)
    else:
        phases = tuple(vars(p) for p in trace.phase_summaries())

    _, total_rounds = session.spent()
    return ExplainReport(
        method=method,
        k=k,
        topk=topk,
        total_cost=total_cost,
        total_rounds=total_rounds,
        total_comparisons=trace.total_comparisons,
        cached_comparisons=trace.cached_comparisons,
        budget_cap=session.cost.ceiling,
        phases=phases,
        item_costs=item_costs,
        unattributed=unattributed,
        trails=trails,
    )
