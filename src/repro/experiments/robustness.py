"""Robustness study (beyond the paper): heterogeneous, adversarial crowds.

The paper's crowd is exchangeable (§4); real platforms have unreliable
workers and spammers.  This experiment sweeps the spammer rate of a
simulated workforce over the synthetic latent-score dataset and tracks
SPR's TMC and NDCG.  The confidence-aware design should convert worker
degradation into *monetary* cost — quality should fall far slower than
cost rises.
"""

from __future__ import annotations

import numpy as np

from ..core.spr import spr_topk
from ..crowd.session import CrowdSession
from ..crowd.workforce import Workforce, WorkforceOracle
from ..datasets.synthetic import make_synthetic
from ..metrics import ndcg_at_k
from ..rng import make_rng, spawn_many
from .params import ExperimentParams
from .reporting import Report

__all__ = ["run_robustness"]


def run_robustness(
    spammer_rates: tuple[float, ...] = (0.0, 0.1, 0.2, 0.3, 0.4),
    n_items: int = 100,
    k: int = 10,
    n_workers: int = 60,
    n_runs: int = 3,
    seed: int = 0,
) -> Report:
    """SPR cost and quality vs the workforce's spammer rate."""
    params = ExperimentParams(
        dataset="synthetic", n_items=None, k=k, n_runs=n_runs, seed=seed
    )
    dataset = make_synthetic(seed=0, n_items=n_items, score_spread=3.0, noise=1.0)
    report = Report(
        title=f"Robustness: SPR vs spammer rate (synthetic, N={n_items}, k={k})",
        columns=[f"spam={rate:.0%}" for rate in spammer_rates],
    )
    config = params.comparison_config()
    costs, ndcgs = [], []
    for rate in spammer_rates:
        root = make_rng(seed)
        session_rngs = spawn_many(root, n_runs)
        run_costs, run_ndcgs = [], []
        for run in range(n_runs):
            force = Workforce.generate(
                n_workers, seed=seed + run, spammer_rate=rate
            )
            oracle = WorkforceOracle(dataset.oracle, force)
            session = CrowdSession(oracle, config, seed=session_rngs[run])
            result = spr_topk(session, dataset.items.ids.tolist(), k)
            run_costs.append(session.total_cost)
            run_ndcgs.append(ndcg_at_k(dataset.items, result.topk, k))
        costs.append(float(np.mean(run_costs)))
        ndcgs.append(float(np.mean(run_ndcgs)))
    report.add_row("TMC", costs)
    report.add_row("NDCG", ndcgs)
    report.add_note(
        f"{n_workers} workers, averaged over {n_runs} runs, seed={seed}; "
        "not a paper experiment — a robustness extension"
    )
    return report
