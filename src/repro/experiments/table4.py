"""Table 4 — effect of the reference-change optimization on SPR workload.

SPR runs on IMDb defaults with the maximum number of reference changes
swept over {0, 1, 2, 4, 8, 16}.  The paper finds a shallow optimum around
2-4 changes: each change defers difficult comparisons to a better
reference, but also discards the evidence already bought against the old
one.
"""

from __future__ import annotations

from .params import REFERENCE_CHANGES, ExperimentParams
from .reporting import Report
from .runner import run_method

__all__ = ["run_table4"]


def run_table4(
    params: ExperimentParams | None = None,
    changes: tuple[int, ...] = REFERENCE_CHANGES,
    n_jobs: int | None = None,
) -> Report:
    """Regenerate Table 4 (SPR workload vs max reference changes)."""
    params = params if params is not None else ExperimentParams()
    report = Report(
        title=f"Table 4: reference changes on {params.dataset} "
        f"(N={params.n_items or 'All'}, k={params.k})",
        columns=[f"times={c}" for c in changes],
    )
    workloads = []
    realized = []
    for max_changes in changes:
        stats = run_method(
            "spr", params.with_(max_reference_changes=max_changes), n_jobs=n_jobs
        )
        workloads.append(stats.mean_cost)
        realized.append(
            sum(r.extras.get("reference_changes", 0) for r in stats.runs)
            / stats.n_runs
        )
    report.add_row("Work.", workloads)
    report.add_row("realized changes", realized)
    report.add_note(f"averaged over {params.n_runs} runs, seed={params.seed}")
    return report
