"""Figure 15 (Appendix D) — closed-form analysis of ``n_b − n``.

The paper's Mathematica simulation showing that for every preference mean
``μ`` and spread ``σ``, the expected workload of the binary judgment model
(``n_b``, from Hoeffding / Equation (3)) exceeds the workload of the
preference model (``n``, from Student's t).  This module evaluates the
same closed forms with scipy:

* ``n`` solves the fixed point ``n = (t_{α/2, n-1} · σ / μ)²`` —
  the sample size at which the t interval first excludes 0;
* ``n_b = (2 / μ̃²) · ln(2/α)`` with the shifted binary mean
  ``μ̃ = 2Φ(μ/σ) − 1``.
"""

from __future__ import annotations

import math

import numpy as np

from ..stats.workload import binary_workload, student_workload
from .reporting import Report

__all__ = ["run_appendix_d", "student_workload", "binary_workload"]


def run_appendix_d(
    alpha: float = 0.05,
    mus: tuple[float, ...] = (0.1, 0.25, 0.5, 1.0, 1.5, 2.0),
    sigmas: tuple[float, ...] = (0.25, 0.5, 1.0, 1.5, 2.0),
) -> Report:
    """Regenerate the Figure-15 surface as a (μ × σ) table of ``n_b − n``."""
    report = Report(
        title=f"Figure 15: n_b - n over (mu, sigma), alpha={alpha}",
        columns=[f"sigma={s}" for s in sigmas],
    )
    minimum = math.inf
    for mu in mus:
        row = []
        for sigma in sigmas:
            gap = binary_workload(mu, sigma, alpha) - student_workload(
                mu, sigma, alpha
            )
            minimum = min(minimum, gap)
            row.append(gap)
        report.add_row(f"mu={mu}", row)
    dense_min = minimum
    for mu in np.linspace(0.05, 2.0, 40):
        for sigma in np.linspace(0.05, 2.0, 40):
            gap = binary_workload(float(mu), float(sigma), alpha) - (
                student_workload(float(mu), float(sigma), alpha)
            )
            dense_min = min(dense_min, gap)
    report.add_note(
        f"minimum n_b - n over a dense 40x40 grid: {dense_min:.2f} "
        f"({'positive everywhere — binary always needs more' if dense_min > 0 else 'NEGATIVE: check'})"
    )
    return report
