"""SPR vs the Bayesian Decision Process ranker, head to head.

The ROADMAP's "second algorithm family" comparison: the paper's
select/partition/rank framework against the active-learning BDP ranker
(:mod:`repro.algorithms.bdp`) on identical cells — same datasets, same
comparison configuration, independent seeded run streams.  Cost (TMC),
latency and quality land in one table so the paradigms can be compared
directly rather than across papers.
"""

from __future__ import annotations

from .params import ExperimentParams
from .reporting import Report
from .runner import run_methods

__all__ = ["run_spr_vs_bdp"]


def run_spr_vs_bdp(
    datasets: tuple[str, ...] = ("imdb", "book"),
    n_runs: int = 5,
    seed: int = 0,
    n_items: int | None = 30,
    k: int = 5,
    n_jobs: int | None = None,
) -> Report:
    """Run SPR and BDP on the same cells and tabulate cost vs quality.

    ``n_items`` defaults to a laptop-scale 30-item subset: BDP's
    one-step lookahead scores all O(N²) pairs per round, so its sweet
    spot is moderate N where comparison cost, not scoring, dominates —
    the same regime the paper's accuracy experiments use.
    """
    methods = ["spr", "bdp"]
    report = Report(
        title="SPR vs BDP: cost and quality, same cells",
        columns=["spr TMC", "bdp TMC", "spr nDCG", "bdp nDCG"],
    )
    for dataset in datasets:
        params = ExperimentParams(
            dataset=dataset, n_items=n_items, k=k, n_runs=n_runs, seed=seed
        )
        stats = run_methods(methods, params, n_jobs=n_jobs)
        spr, bdp = stats["spr"], stats["bdp"]
        report.add_row(
            dataset,
            [spr.mean_cost, bdp.mean_cost, spr.mean_ndcg, bdp.mean_ndcg],
        )
        report.add_note(
            f"{dataset}: latency {spr.mean_rounds:,.0f} vs "
            f"{bdp.mean_rounds:,.0f} rounds; BDP TMC "
            f"{bdp.mean_cost / spr.mean_cost:.2f}x SPR"
        )
    report.add_note(
        f"averaged over {n_runs} runs, seed={seed}, "
        f"n_items={n_items}, k={k}; BDP uses its default confidence "
        "stopping at the cell's alpha"
    )
    return report
