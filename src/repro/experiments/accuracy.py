"""Figure 13 — result accuracy (NDCG) on IMDb.

Four panels sweep k, item cardinality, the per-pair budget B and the
confidence level; all confidence-aware methods are compared.  The paper's
takeaways: accuracy collapses when B ≤ 100 (the budget must allow real
verdicts), and SPR matches its competitors' NDCG at lower TMC.
"""

from __future__ import annotations

from ..errors import ConfigError
from .params import ExperimentParams
from .reporting import Report
from .runner import run_method
from .scalability import SWEEPS

__all__ = ["run_accuracy", "ACCURACY_SWEEPS"]

ACCURACY_SWEEPS = ("k", "n", "budget", "confidence")


def run_accuracy(
    vary: str,
    params: ExperimentParams | None = None,
    values: tuple | None = None,
    methods: tuple[str, ...] = ("spr", "tournament", "heapsort", "quickselect"),
    n_jobs: int | None = None,
) -> Report:
    """Run one NDCG panel of Figure 13; returns the accuracy series."""
    fieldname, default_values, fmt = SWEEPS[vary]
    params = params if params is not None else ExperimentParams()
    values = default_values if values is None else values

    cells = []
    for value in values:
        try:
            cell = params.with_(**{fieldname: value})
        except ConfigError:
            continue
        cells.append((value, cell))

    report = Report(
        title=f"Figure 13: NDCG vs {vary} on {params.dataset}",
        columns=[fmt(value) for value, _ in cells],
    )
    for method in methods:
        stats = [run_method(method, cell, n_jobs=n_jobs) for _, cell in cells]
        report.add_row(method, [s.mean_ndcg for s in stats])
        report.add_row(f"{method} (precision)", [s.mean_precision for s in stats])
    report.add_note(f"averaged over {params.n_runs} runs, seed={params.seed}")
    return report
