"""Figure 14 — comparison against non-confidence-aware heuristics.

CrowdBT and HYBRID get exactly SPR's measured TMC as their budget (the
paper's fairness protocol); HYBRIDSPR runs unconstrained and demonstrates
that a confidence-aware ranking phase both beats HYBRID's quality and
undercuts SPR's cost.
"""

from __future__ import annotations

import math

from ..algorithms import crowdbt_topk, hybrid_spr_topk, hybrid_topk
from ..datasets import load_dataset
from ..errors import AlgorithmError
from ..metrics import ndcg_at_k
from ..rng import make_rng, spawn_many
from .params import ExperimentParams
from .reporting import Report
from .runner import run_method

__all__ = ["run_non_confidence"]


def _run_budgeted(
    algorithm,
    name: str,
    params: ExperimentParams,
    **kwargs: object,
) -> tuple[float, float]:
    """Average (cost, ndcg) of a non-registry algorithm over fresh runs."""
    dataset = load_dataset(params.dataset, seed=params.dataset_seed)
    root = make_rng(params.seed)
    subset_rngs = spawn_many(root, params.n_runs)
    session_rngs = spawn_many(root, params.n_runs)
    config = params.comparison_config()
    costs, ndcgs = [], []
    for run in range(params.n_runs):
        working = dataset.sample_items(params.n_items, subset_rngs[run])
        session = dataset.session(config, seed=session_rngs[run])
        outcome = algorithm(session, working.ids.tolist(), params.k, **kwargs)
        costs.append(outcome.cost)
        ndcgs.append(ndcg_at_k(working, outcome.topk, params.k))
    return sum(costs) / len(costs), sum(ndcgs) / len(ndcgs)


def run_non_confidence(
    datasets: tuple[str, ...] = ("imdb", "book"),
    n_runs: int = 5,
    seed: int = 0,
    n_jobs: int | None = None,
) -> Report:
    """Regenerate Figure 14 (NDCG, with the budgets used as footnotes)."""
    methods = ["spr", "crowdbt", "hybrid", "hybrid_spr"]
    report = Report(
        title="Figure 14: non-confidence-aware methods (NDCG)",
        columns=methods,
    )
    for dataset in datasets:
        params = ExperimentParams(dataset=dataset, n_runs=n_runs, seed=seed)
        spr_stats = run_method("spr", params, n_jobs=n_jobs)
        budget = int(math.ceil(spr_stats.mean_cost))
        if budget < 1:
            raise AlgorithmError("SPR reported a zero budget; cannot match it")
        crowdbt_cost, crowdbt_ndcg = _run_budgeted(
            crowdbt_topk, "crowdbt", params, budget=budget
        )
        hybrid_cost, hybrid_ndcg = _run_budgeted(
            hybrid_topk, "hybrid", params, budget=budget
        )
        # Match HybridSPR's filter strength to HYBRID's phase-1 spend so
        # the two differ only in their ranking phase (the comparison the
        # paper is actually making).
        n_items = params.n_items or len(load_dataset(params.dataset).items)
        filter_votes = max(30, int(budget * 0.5) // n_items)
        hspr_cost, hspr_ndcg = _run_budgeted(
            hybrid_spr_topk, "hybrid_spr", params, votes_per_item=filter_votes
        )
        report.add_row(
            dataset,
            [spr_stats.mean_ndcg, crowdbt_ndcg, hybrid_ndcg, hspr_ndcg],
        )
        report.add_note(
            f"{dataset}: SPR TMC {spr_stats.mean_cost:,.0f} (= budget for "
            f"crowdbt/hybrid); hybrid_spr TMC {hspr_cost:,.0f} "
            f"({hspr_cost / spr_stats.mean_cost:.0%} of SPR)"
        )
    report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    return report
