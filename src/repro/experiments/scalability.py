"""Scalability sweeps — Figures 8-11 (IMDb, Book) and 18-21 (Jester, Photo).

One generic sweep drives all eight figures: vary exactly one of
``k`` / ``n`` (item cardinality) / ``confidence`` / ``budget`` while the
rest stay at the paper defaults, and report the TMC series and the latency
series for SPR, tournament tree, heap sort, quick selection, plus the
Lemma-1 infimum.
"""

from __future__ import annotations

from ..datasets import load_dataset
from ..errors import ConfigError
from .parallel import RunSpec, resolve_jobs, run_specs
from .params import BUDGETS, CONFIDENCES, ITEM_COUNTS, K_VALUES, ExperimentParams
from .reporting import Report
from .runner import _validated_kwargs, run_infimum, run_method

__all__ = ["run_scalability", "SCALABILITY_METHODS", "SWEEPS"]

SCALABILITY_METHODS = ("spr", "tournament", "heapsort", "quickselect")

#: Swept parameter name → (params field, Table-6 values, column formatter).
SWEEPS = {
    "k": ("k", K_VALUES, lambda v: f"k={v}"),
    "n": ("n_items", ITEM_COUNTS, lambda v: f"N={'All' if v is None else v}"),
    "confidence": ("confidence", CONFIDENCES, lambda v: f"1-a={v}"),
    "budget": ("budget", BUDGETS, lambda v: f"B={v}"),
}


def run_scalability(
    vary: str,
    params: ExperimentParams | None = None,
    values: tuple | None = None,
    methods: tuple[str, ...] = SCALABILITY_METHODS,
    include_infimum: bool = True,
    n_jobs: int | None = None,
) -> tuple[Report, Report]:
    """Run one scalability sweep; returns ``(tmc_report, latency_report)``.

    With ``n_jobs != 1`` every (method × cell × run) work unit of the
    whole sweep goes through one shared process pool; results are
    bit-for-bit identical to the serial sweep.
    """
    if vary not in SWEEPS:
        known = ", ".join(SWEEPS)
        raise ConfigError(f"unknown sweep {vary!r}; known: {known}")
    params = params if params is not None else ExperimentParams()
    fieldname, default_values, fmt = SWEEPS[vary]
    values = default_values if values is None else values
    if vary == "n":
        # A subset size at or above the dataset is just "All"; keep one
        # such column instead of duplicating it per oversized value.
        size = len(load_dataset(params.dataset, seed=params.dataset_seed))
        values = tuple(
            None if (v is None or v >= size) else v for v in values
        )
        values = tuple(dict.fromkeys(values))

    # Keep every cell valid: a subset sweep must leave room for k items.
    cells = []
    for value in values:
        try:
            cell = params.with_(**{fieldname: value})
        except ConfigError:
            continue
        cells.append((value, cell))

    columns = [fmt(value) for value, _ in cells]
    tmc = Report(
        title=f"TMC vs {vary} on {params.dataset}",
        columns=columns,
    )
    latency = Report(
        title=f"Latency (rounds) vs {vary} on {params.dataset}",
        columns=columns,
    )
    if resolve_jobs(n_jobs) == 1:
        rows = {
            method: [run_method(method, cell) for _, cell in cells]
            for method in methods
        }
        if include_infimum:
            rows["infimum"] = [run_infimum(cell) for _, cell in cells]
    else:
        # One shared pool for the whole (method × cell × run) grid, in the
        # serial loop's order so merged telemetry matches a serial sweep.
        specs = [
            RunSpec(
                kind="algorithm", method=method, params=cell,
                method_kwargs=_validated_kwargs(method, cell, {}),
            )
            for method in methods
            for _, cell in cells
        ]
        if include_infimum:
            specs.extend(
                RunSpec(kind="infimum", method="infimum", params=cell)
                for _, cell in cells
            )
        stats = run_specs(specs, n_jobs=n_jobs)
        series = [stats[i : i + len(cells)] for i in range(0, len(stats), len(cells))]
        names = list(methods) + (["infimum"] if include_infimum else [])
        rows = dict(zip(names, series))
    for name, stats in rows.items():
        tmc.add_row(name, [s.mean_cost for s in stats])
        latency.add_row(name, [s.mean_rounds for s in stats])
    for report in (tmc, latency):
        report.add_note(
            f"averaged over {params.n_runs} runs, seed={params.seed}, "
            f"defaults: N={params.n_items or 'All'}, k={params.k}, "
            f"1-a={params.confidence}, B={params.budget}"
        )
    return tmc, latency
