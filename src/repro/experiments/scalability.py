"""Scalability sweeps — Figures 8-11 (IMDb, Book) and 18-21 (Jester, Photo).

One generic sweep drives all eight figures: vary exactly one of
``k`` / ``n`` (item cardinality) / ``confidence`` / ``budget`` while the
rest stay at the paper defaults, and report the TMC series and the latency
series for SPR, tournament tree, heap sort, quick selection, plus the
Lemma-1 infimum.
"""

from __future__ import annotations

from ..datasets import load_dataset
from ..errors import ConfigError
from .params import BUDGETS, CONFIDENCES, ITEM_COUNTS, K_VALUES, ExperimentParams
from .reporting import Report
from .runner import run_infimum, run_method

__all__ = ["run_scalability", "SCALABILITY_METHODS", "SWEEPS"]

SCALABILITY_METHODS = ("spr", "tournament", "heapsort", "quickselect")

#: Swept parameter name → (params field, Table-6 values, column formatter).
SWEEPS = {
    "k": ("k", K_VALUES, lambda v: f"k={v}"),
    "n": ("n_items", ITEM_COUNTS, lambda v: f"N={'All' if v is None else v}"),
    "confidence": ("confidence", CONFIDENCES, lambda v: f"1-a={v}"),
    "budget": ("budget", BUDGETS, lambda v: f"B={v}"),
}


def run_scalability(
    vary: str,
    params: ExperimentParams | None = None,
    values: tuple | None = None,
    methods: tuple[str, ...] = SCALABILITY_METHODS,
    include_infimum: bool = True,
) -> tuple[Report, Report]:
    """Run one scalability sweep; returns ``(tmc_report, latency_report)``."""
    if vary not in SWEEPS:
        known = ", ".join(SWEEPS)
        raise ConfigError(f"unknown sweep {vary!r}; known: {known}")
    params = params if params is not None else ExperimentParams()
    fieldname, default_values, fmt = SWEEPS[vary]
    values = default_values if values is None else values
    if vary == "n":
        # A subset size at or above the dataset is just "All"; keep one
        # such column instead of duplicating it per oversized value.
        size = len(load_dataset(params.dataset, seed=params.dataset_seed))
        values = tuple(
            None if (v is None or v >= size) else v for v in values
        )
        values = tuple(dict.fromkeys(values))

    # Keep every cell valid: a subset sweep must leave room for k items.
    cells = []
    for value in values:
        try:
            cell = params.with_(**{fieldname: value})
        except ConfigError:
            continue
        cells.append((value, cell))

    columns = [fmt(value) for value, _ in cells]
    tmc = Report(
        title=f"TMC vs {vary} on {params.dataset}",
        columns=columns,
    )
    latency = Report(
        title=f"Latency (rounds) vs {vary} on {params.dataset}",
        columns=columns,
    )
    for method in methods:
        stats = [run_method(method, cell) for _, cell in cells]
        tmc.add_row(method, [s.mean_cost for s in stats])
        latency.add_row(method, [s.mean_rounds for s in stats])
    if include_infimum:
        stats = [run_infimum(cell) for _, cell in cells]
        tmc.add_row("infimum", [s.mean_cost for s in stats])
        latency.add_row("infimum", [s.mean_rounds for s in stats])
    for report in (tmc, latency):
        report.add_note(
            f"averaged over {params.n_runs} runs, seed={params.seed}, "
            f"defaults: N={params.n_items or 'All'}, k={params.k}, "
            f"1-a={params.confidence}, B={params.budget}"
        )
    return tmc, latency
