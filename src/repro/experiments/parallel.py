"""Process-pool run scheduler for the experiment harness.

Every figure and table of the paper averages *independent* repeated runs
(100 per cell in §6): all randomness is pre-spawned per run from the
cell's seed, so the runs form an embarrassingly parallel workload.  This
module fans (method × parameter-cell × run) work units out over a
:class:`~concurrent.futures.ProcessPoolExecutor` while keeping results
**bit-for-bit identical** to the serial loop in
:mod:`repro.experiments.runner`:

* each work unit ships the *exact* pre-spawned ``subset``/``session``
  generators the serial loop would have used (NumPy generators pickle
  their full bit-generator state), so every draw sequence is unchanged;
* each worker executes its run under a private fresh
  :class:`~repro.telemetry.MetricsRegistry`; the parent merges the worker
  registries into the ambient registry **in task order** (the serial
  execution order), so counters, histograms and span lists reconcile with
  the summed cost ledgers exactly as in a serial run;
* aggregation (:class:`~repro.experiments.runner.MethodStats`) happens in
  the parent from the returned records, in run order.

``n_jobs`` semantics everywhere in the harness: ``1`` = today's serial
path (the default), ``0`` = one worker per CPU, ``None`` = the ambient
default installed by :func:`use_jobs` / :func:`set_default_jobs` (how the
benchmark suite routes every figure through the pool without touching
each benchmark).  Only wall-clock fields (``wall_seconds``, span
``seconds``) differ between serial and parallel runs.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from ..datasets import load_dataset
from ..errors import ConfigError
from ..rng import make_rng, spawn_many
from ..telemetry import MetricsRegistry, get_registry, use_registry
from .params import ExperimentParams
from .runner import MethodStats, RunRecord, _make_execute, _single_run

__all__ = [
    "RunSpec",
    "RunTask",
    "run_specs",
    "resolve_jobs",
    "get_default_jobs",
    "set_default_jobs",
    "use_jobs",
    "resolve_engine",
    "get_default_engine",
    "set_default_engine",
    "use_engine",
    "ENGINE_ENV",
]

logger = logging.getLogger(__name__)

#: Ambient job count used when an entry point is called with
#: ``n_jobs=None``.  ``1`` keeps every path serial unless opted in.
_default_jobs: int = 1

#: Environment knob for the ambient execution engine (CI uses it to run
#: whole suites under the lattice without touching call sites).
ENGINE_ENV = "CROWD_TOPK_ENGINE"

#: Execution engines for an experiment's independent runs. ``pool``
#: is the historical pair: serial at ``n_jobs=1``, process pool above.
#: ``lattice`` replaces the *serial* slot with fused in-process racing
#: (see :mod:`repro.crowd.lattice`).
ENGINES = ("pool", "lattice")

#: Ambient engine installed by :func:`use_engine`; ``None`` defers to the
#: :data:`ENGINE_ENV` environment variable, then to ``"pool"``.
_default_engine: str | None = None


def get_default_jobs() -> int:
    """The ambient ``n_jobs`` used when callers pass ``None``."""
    return _default_jobs


def set_default_jobs(n_jobs: int) -> int:
    """Install a new ambient ``n_jobs``; returns the previous one."""
    global _default_jobs
    previous = _default_jobs
    _default_jobs = _validate_jobs(n_jobs)
    return previous


@contextmanager
def use_jobs(n_jobs: int) -> Iterator[int]:
    """Scope an ambient ``n_jobs`` to a ``with`` block (restored after)."""
    previous = set_default_jobs(n_jobs)
    try:
        yield _default_jobs
    finally:
        set_default_jobs(previous)


def _validate_jobs(n_jobs: int) -> int:
    if not isinstance(n_jobs, int) or isinstance(n_jobs, bool) or n_jobs < 0:
        raise ConfigError(f"n_jobs must be a non-negative int, got {n_jobs!r}")
    return n_jobs


def _validate_engine(engine: str) -> str:
    if engine not in ENGINES:
        raise ConfigError(
            f"engine must be one of {ENGINES}, got {engine!r}"
        )
    return engine


def get_default_engine() -> str:
    """The ambient engine used when callers pass ``engine=None``.

    Resolution order: :func:`set_default_engine` / :func:`use_engine`
    installs, then the :data:`ENGINE_ENV` environment variable, then
    ``"pool"``.
    """
    if _default_engine is not None:
        return _default_engine
    env = os.environ.get(ENGINE_ENV, "").strip()
    if env:
        return _validate_engine(env)
    return "pool"


def set_default_engine(engine: str | None) -> str | None:
    """Install a new ambient engine; returns the previous installation.

    ``None`` uninstalls, deferring to the environment again.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = None if engine is None else _validate_engine(engine)
    return previous


@contextmanager
def use_engine(engine: str | None) -> Iterator[str]:
    """Scope an ambient engine to a ``with`` block (restored after)."""
    previous = set_default_engine(engine)
    try:
        yield get_default_engine()
    finally:
        set_default_engine(previous)


def resolve_engine(engine: str | None = None) -> str:
    """Resolve an ``engine`` argument to a concrete engine name."""
    if engine is None:
        return get_default_engine()
    return _validate_engine(engine)


def resolve_jobs(n_jobs: int | None = None) -> int:
    """Resolve an ``n_jobs`` argument to a concrete worker count.

    ``None`` reads the ambient default (see :func:`use_jobs`); ``0`` means
    one worker per available CPU; any other value passes through.
    """
    if n_jobs is None:
        n_jobs = _default_jobs
    n_jobs = _validate_jobs(n_jobs)
    if n_jobs == 0:
        return os.cpu_count() or 1
    return n_jobs


@dataclass(frozen=True)
class RunSpec:
    """Declarative description of one (method × parameter-cell) execution.

    Everything a worker needs to rebuild the serial loop's ``execute``
    closure on its side of the process boundary: ``kind`` selects the
    algorithm table or the Lemma-1 infimum, ``method_kwargs`` carry
    algorithm overrides (already validated/augmented by the caller).
    """

    kind: str  # "algorithm" | "infimum"
    method: str
    params: ExperimentParams
    method_kwargs: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RunTask:
    """One work unit: a spec, a run index, and that run's RNG streams."""

    spec_index: int
    run: int
    spec: RunSpec
    subset_rng: np.random.Generator
    session_rng: np.random.Generator


def _build_tasks(specs: list[RunSpec]) -> list[RunTask]:
    """Expand specs into tasks with exactly the serial loop's seed streams."""
    tasks: list[RunTask] = []
    for spec_index, spec in enumerate(specs):
        root = make_rng(spec.params.seed)
        subset_rngs = spawn_many(root, spec.params.n_runs)
        session_rngs = spawn_many(root, spec.params.n_runs)
        for run in range(spec.params.n_runs):
            tasks.append(
                RunTask(
                    spec_index=spec_index,
                    run=run,
                    spec=spec,
                    subset_rng=subset_rngs[run],
                    session_rng=session_rngs[run],
                )
            )
    return tasks


def _run_task(task: RunTask) -> tuple[RunRecord, MetricsRegistry]:
    """Execute one run under a private registry (pool worker entry point)."""
    spec = task.spec
    dataset = load_dataset(spec.params.dataset, seed=spec.params.dataset_seed)
    execute = _make_execute(spec.kind, spec.method, spec.params, spec.method_kwargs)
    with use_registry(MetricsRegistry()) as registry:
        record = _single_run(
            dataset, spec.params, execute, spec.method,
            task.run, task.subset_rng, task.session_rng,
        )
    return record, registry


def _pool_context():
    """Prefer fork where available: workers inherit the dataset cache."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


def run_specs(
    specs: list[RunSpec],
    n_jobs: int | None = None,
    engine: str | None = None,
) -> list[MethodStats]:
    """Execute every spec's runs, fanned out over the selected engine.

    Returns one :class:`MethodStats` per spec, in order.  Worker telemetry
    is merged into the ambient registry in task order *before* returning,
    so a snapshot taken afterwards reconciles with the summed cost ledgers
    exactly like a serial run's would.

    ``engine="lattice"`` races the runs through one in-process
    :class:`~repro.crowd.lattice.RacingLattice` — per-run results and
    telemetry totals stay bit-for-bit identical to the serial loop, only
    faster.  An *ambient* lattice (installed via :func:`use_engine` or the
    :data:`ENGINE_ENV` variable) replaces only the serial ``n_jobs == 1``
    slot: callers that explicitly fan out over worker processes keep their
    process pool.
    """
    if not specs:
        return []
    jobs = resolve_jobs(n_jobs)
    tasks = _build_tasks(specs)
    resolved_engine = resolve_engine(engine)
    use_lattice = resolved_engine == "lattice" and (engine is not None or jobs == 1)

    if use_lattice:
        from functools import partial

        from ..crowd.lattice import LATTICE_MAX_LANES, run_lattice

        # Warm the dataset cache from this thread: lanes then share the
        # immutable datasets read-only instead of racing the loader.
        for spec in specs:
            load_dataset(spec.params.dataset, seed=spec.params.dataset_seed)
        telemetry = get_registry()
        telemetry.counter("experiment_lattice_batches_total").inc()
        logger.info(
            "lattice engine: %d tasks (%d specs), <=%d lanes per batch",
            len(tasks), len(specs), LATTICE_MAX_LANES,
        )
        results = run_lattice(
            [partial(_run_task_serial, task) for task in tasks],
            name="experiment",
        )
    elif jobs == 1:
        # Serial fallback: same work units, ambient registry, no merge.
        results = [_run_task_serial(task) for task in tasks]
    else:
        # Warm the parent's dataset cache so forked workers inherit the
        # (immutable) datasets instead of regenerating them per process.
        for spec in specs:
            load_dataset(spec.params.dataset, seed=spec.params.dataset_seed)
        workers = min(jobs, len(tasks))
        telemetry = get_registry()
        telemetry.counter("experiment_parallel_batches_total").inc()
        telemetry.gauge("experiment_parallel_workers").set(workers)
        logger.info(
            "parallel engine: %d tasks (%d specs) on %d workers",
            len(tasks), len(specs), workers,
        )
        chunksize = max(1, len(tasks) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            outcomes = list(pool.map(_run_task, tasks, chunksize=chunksize))
        results = []
        for task, (record, registry) in zip(tasks, outcomes):
            telemetry.merge(registry)
            telemetry.counter("experiment_parallel_tasks_total").inc()
            results.append(record)

    grouped: dict[int, list[RunRecord]] = {}
    for task, record in zip(tasks, results):
        grouped.setdefault(task.spec_index, []).append(record)
    return [
        MethodStats.from_runs(spec.method, grouped[spec_index])
        for spec_index, spec in enumerate(specs)
    ]


def _run_task_serial(task: RunTask) -> RunRecord:
    """Run one task in-process under the ambient registry (serial path)."""
    spec = task.spec
    dataset = load_dataset(spec.params.dataset, seed=spec.params.dataset_seed)
    execute = _make_execute(spec.kind, spec.method, spec.params, spec.method_kwargs)
    return _single_run(
        dataset, spec.params, execute, spec.method,
        task.run, task.subset_rng, task.session_rng,
    )
