"""Experiment parameters — Table 6 of the paper.

Defaults are the paper's bold values; the module-level tuples are the
swept ranges.  ``n_items=None`` means "All" (the full dataset).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..config import ComparisonConfig, SPRConfig
from ..errors import ConfigError

__all__ = [
    "ExperimentParams",
    "K_VALUES",
    "ITEM_COUNTS",
    "CONFIDENCES",
    "BUDGETS",
    "SWEET_SPOTS",
    "REFERENCE_CHANGES",
]

#: Table 6 sweep ranges (paper defaults in bold → dataclass defaults below).
K_VALUES = (1, 5, 10, 15, 20)
ITEM_COUNTS = (25, 50, 100, 200, 400, 800, None)
CONFIDENCES = (0.80, 0.85, 0.90, 0.95, 0.98)
BUDGETS = (30, 100, 200, 500, 1000, 2000, 4000)
SWEET_SPOTS = (1.25, 1.50, 1.75, 2.00)
REFERENCE_CHANGES = (0, 1, 2, 4, 8, 16)


@dataclass(frozen=True)
class ExperimentParams:
    """One experiment cell: dataset, query, comparison and run settings.

    ``seed`` controls both the per-run random streams and (separately) the
    synthetic dataset generation through ``dataset_seed`` — keeping the
    item universe fixed while runs vary is what the paper's 100-run
    averages do.
    """

    dataset: str = "imdb"
    n_items: int | None = None
    k: int = 10
    confidence: float = 0.98
    budget: int | None = 1000
    min_workload: int = 30
    batch_size: int = 30
    estimator: str = "student"
    pac_epsilon: float = 0.0
    group_engine: str = "racing"
    sweet_spot: float = 1.5
    max_reference_changes: int = 2
    n_runs: int = 10
    seed: int = 0
    dataset_seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.n_items is not None and self.n_items <= self.k:
            raise ConfigError(
                f"n_items ({self.n_items}) must exceed k ({self.k})"
            )
        if self.n_runs < 1:
            raise ConfigError(f"n_runs must be >= 1, got {self.n_runs}")

    def comparison_config(self) -> ComparisonConfig:
        """The comparison process configuration this cell implies."""
        return ComparisonConfig(
            confidence=self.confidence,
            budget=self.budget,
            min_workload=self.min_workload,
            batch_size=self.batch_size,
            estimator=self.estimator,  # type: ignore[arg-type]
            pac_epsilon=self.pac_epsilon,
            group_engine=self.group_engine,  # type: ignore[arg-type]
        )

    def spr_config(self) -> SPRConfig:
        """The SPR configuration this cell implies."""
        return SPRConfig(
            comparison=self.comparison_config(),
            sweet_spot=self.sweet_spot,
            max_reference_changes=self.max_reference_changes,
        )

    def with_(self, **changes: object) -> "ExperimentParams":
        """Return a copy with ``changes`` applied (validated)."""
        return replace(self, **changes)  # type: ignore[arg-type]
