"""Plain-text reports mirroring the paper's tables and figure series.

Reports render as aligned text (the benchmark artifacts under
``benchmarks/results/``) and export to dict / JSON / CSV for downstream
tooling.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field

__all__ = ["Report"]


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,d}"
    return str(value)


@dataclass
class Report:
    """A labelled table of results (one per paper table / figure panel).

    ``rows`` maps a row label (usually a method name) to a list of cell
    values aligned with ``columns`` (usually the swept parameter values).
    """

    title: str
    columns: list[str]
    rows: dict[str, list[object]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_row(self, label: str, values: list[object]) -> None:
        """Append one row, validating its width."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row {label!r} has {len(values)} cells, expected {len(self.columns)}"
            )
        self.rows[label] = list(values)

    def add_note(self, note: str) -> None:
        """Attach a footnote (run counts, deviations, …)."""
        self.notes.append(note)

    def to_text(self) -> str:
        """Render as an aligned plain-text table."""
        label_width = max([len(r) for r in self.rows] + [8])
        cells = {
            label: [_format_cell(v) for v in values]
            for label, values in self.rows.items()
        }
        widths = [
            max([len(col)] + [cells[label][pos] and len(cells[label][pos]) or 1
                              for label in cells])
            for pos, col in enumerate(self.columns)
        ]
        lines = [self.title]
        header = " " * label_width + " | " + " | ".join(
            col.rjust(width) for col, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("-" * len(header))
        for label, row in cells.items():
            lines.append(
                label.ljust(label_width)
                + " | "
                + " | ".join(cell.rjust(width) for cell, width in zip(row, widths))
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """Structured form: title, columns, rows, notes."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": {label: list(values) for label, values in self.rows.items()},
            "notes": list(self.notes),
        }

    def to_json(self, indent: int | None = 2) -> str:
        """JSON rendering (NaNs serialized as nulls)."""

        def clean(value: object) -> object:
            if isinstance(value, float) and value != value:
                return None
            return value

        payload = self.to_dict()
        payload["rows"] = {
            label: [clean(v) for v in values]
            for label, values in payload["rows"].items()
        }
        return json.dumps(payload, indent=indent)

    def to_csv(self) -> str:
        """CSV rendering with a leading label column."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["label", *self.columns])
        for label, values in self.rows.items():
            writer.writerow([label, *values])
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.to_text()
