"""Figure 17 (Appendix F) — SteinComp vs StudentComp inside SPR.

Reruns the Figure-8 k-sweep with Stein's estimation replacing Student's t
and reports both series plus their relative difference; the paper finds
them analogous and standardizes on Student.
"""

from __future__ import annotations

from .params import K_VALUES, ExperimentParams
from .reporting import Report
from .runner import run_method

__all__ = ["run_stein_vs_student"]


def run_stein_vs_student(
    dataset: str = "imdb",
    k_values: tuple[int, ...] = K_VALUES,
    n_runs: int = 5,
    seed: int = 0,
    n_items: int | None = None,
    n_jobs: int | None = None,
) -> Report:
    """Regenerate Figure 17 (SPR TMC vs k, Student vs Stein)."""
    report = Report(
        title=f"Figure 17: Student vs Stein (SPR TMC vs k on {dataset})",
        columns=[f"k={k}" for k in k_values],
    )
    series = {}
    for estimator in ("student", "stein"):
        costs = []
        for k in k_values:
            params = ExperimentParams(
                dataset=dataset,
                k=k,
                estimator=estimator,
                n_runs=n_runs,
                seed=seed,
                n_items=n_items,
            )
            costs.append(run_method("spr", params, n_jobs=n_jobs).mean_cost)
        series[estimator] = costs
        report.add_row(estimator, costs)
    report.add_row(
        "stein/student",
        [s / t if t else float("nan") for s, t in zip(series["stein"], series["student"])],
    )
    report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    return report
