"""Figure 16 (Appendix F) — SPR's TMC as a function of the sweet-spot c.

The paper finds SPR stable across c ∈ {1.25, 1.5, 1.75, 2.0} and fixes
c = 1.5; this sweep regenerates that robustness check.
"""

from __future__ import annotations

from .params import SWEET_SPOTS, ExperimentParams
from .reporting import Report
from .runner import run_method

__all__ = ["run_sweet_spot"]


def run_sweet_spot(
    datasets: tuple[str, ...] = ("imdb", "book"),
    values: tuple[float, ...] = SWEET_SPOTS,
    n_runs: int = 5,
    seed: int = 0,
    n_jobs: int | None = None,
) -> Report:
    """Regenerate Figure 16 (SPR TMC vs sweet-spot range c)."""
    report = Report(
        title="Figure 16: SPR TMC vs sweet-spot range c",
        columns=[f"c={c}" for c in values],
    )
    for dataset in datasets:
        row = []
        for c in values:
            params = ExperimentParams(
                dataset=dataset, sweet_spot=c, n_runs=n_runs, seed=seed
            )
            row.append(run_method("spr", params, n_jobs=n_jobs).mean_cost)
        report.add_row(dataset, row)
    report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    return report
