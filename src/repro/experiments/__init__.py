"""Experiment harness regenerating every table and figure of the paper.

Each module maps to one experiment of §6 / Appendix F (see DESIGN.md §4 for
the full index).  All entry points accept ``n_runs`` and ``seed`` so the
benchmarks can run them at laptop scale while the full paper-scale runs
remain one parameter away.
"""

from .accuracy import run_accuracy
from .appendix_d import run_appendix_d
from .interactive import run_interactive
from .non_confidence import run_non_confidence
from .params import (
    BUDGETS,
    CONFIDENCES,
    ITEM_COUNTS,
    K_VALUES,
    REFERENCE_CHANGES,
    SWEET_SPOTS,
    ExperimentParams,
)
from .parallel import (
    RunSpec,
    resolve_engine,
    resolve_jobs,
    run_specs,
    set_default_engine,
    set_default_jobs,
    use_engine,
    use_jobs,
)
from .peopleage import run_peopleage
from .phase_breakdown import run_phase_breakdown
from .reporting import Report
from .robustness import run_robustness
from .runner import MethodStats, RunRecord, run_infimum, run_method, run_methods
from .scalability import run_scalability
from .spr_vs_bdp import run_spr_vs_bdp
from .stein_vs_student import run_stein_vs_student
from .summary import run_summary
from .sweet_spot import run_sweet_spot
from .table3 import run_table3
from .table4 import run_table4
from .table7 import run_table7
from .workload_distance import run_workload_distance

__all__ = [
    "BUDGETS",
    "CONFIDENCES",
    "ExperimentParams",
    "ITEM_COUNTS",
    "K_VALUES",
    "MethodStats",
    "REFERENCE_CHANGES",
    "Report",
    "RunRecord",
    "RunSpec",
    "SWEET_SPOTS",
    "resolve_engine",
    "resolve_jobs",
    "run_specs",
    "set_default_engine",
    "set_default_jobs",
    "use_engine",
    "use_jobs",
    "run_accuracy",
    "run_appendix_d",
    "run_infimum",
    "run_interactive",
    "run_method",
    "run_methods",
    "run_non_confidence",
    "run_peopleage",
    "run_phase_breakdown",
    "run_robustness",
    "run_scalability",
    "run_spr_vs_bdp",
    "run_stein_vs_student",
    "run_summary",
    "run_sweet_spot",
    "run_table3",
    "run_table4",
    "run_table7",
    "run_workload_distance",
]
