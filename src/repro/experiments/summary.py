"""Figure 12 — performance summary at the default settings.

One bar group per dataset: TMC and latency of every confidence-aware
method next to the Lemma-1 infimum, showing SPR as the only method that
approaches the bound.
"""

from __future__ import annotations

from .params import ExperimentParams
from .reporting import Report
from .runner import run_infimum, run_method

__all__ = ["run_summary"]


def run_summary(
    datasets: tuple[str, ...] = ("imdb", "book"),
    methods: tuple[str, ...] = ("spr", "tournament", "heapsort", "quickselect"),
    n_runs: int = 5,
    seed: int = 0,
    n_jobs: int | None = None,
) -> tuple[Report, Report]:
    """Regenerate Figure 12; returns ``(tmc_report, latency_report)``."""
    columns = list(methods) + ["infimum"]
    tmc = Report(title="Figure 12: TMC summary (defaults)", columns=columns)
    latency = Report(
        title="Figure 12: latency summary (defaults)", columns=columns
    )
    for dataset in datasets:
        params = ExperimentParams(dataset=dataset, n_runs=n_runs, seed=seed)
        stats = [run_method(method, params, n_jobs=n_jobs) for method in methods]
        stats.append(run_infimum(params, n_jobs=n_jobs))
        tmc.add_row(dataset, [s.mean_cost for s in stats])
        latency.add_row(dataset, [s.mean_rounds for s in stats])
    for report in (tmc, latency):
        report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    return tmc, latency
