"""Table 3 — accuracy and workload of the three judgment models.

30 popular movies (435 pairs); each pair is compared to conclusion with
``B = ∞`` under three regimes:

* pairwise **binary** judgments bracketed by Hoeffding intervals,
* pairwise **preference** judgments under Student's t estimation,
* pairwise **preference** judgments under Stein's estimation,

at confidence levels 0.95 / 0.98 / 0.99, reporting the mean workload and
the mean accuracy (fraction of verdicts agreeing with Ω).  The graded
judgment model is evaluated separately at fixed per-item workloads, since
it has no stopping rule of its own.

Two calibration notes (documented in EXPERIMENTS.md):

* The paper's 30 random popular movies must have had well-separated
  ground-truth means — its reported average workloads are impossible if
  any pair were near-tied under ``B = ∞``.  We enforce that separation
  explicitly via ``min_gap`` when sampling the movie panel.
* Binary judgments that come back exactly tied are "dropped since not
  identifiable" (§3.2) — but a platform pays for the dropped answer, so
  the binary workload here includes those wasted microtasks.
"""

from __future__ import annotations

import numpy as np

from ..config import ComparisonConfig
from ..core.estimators import make_tester
from ..crowd.oracle import BinaryOracle, JudgmentOracle
from ..datasets import load_dataset
from ..rng import make_rng
from .reporting import Report

__all__ = ["run_table3"]

#: Hard cap standing in for ``B = ∞``; a pair hitting it counts as a tie
#: and is excluded from the accuracy average (ties carry no verdict).
UNBOUNDED_CAP = 200_000


def _compare_unbounded(
    oracle: JudgmentOracle,
    i: int,
    j: int,
    config: ComparisonConfig,
    rng: np.random.Generator,
    cap: int,
) -> tuple[int, int | None]:
    """Run one comparison to conclusion with geometrically growing draws."""
    tester = make_tester(config, oracle.value_range)
    chunk = config.min_workload
    while tester.n < cap:
        values = oracle.draw(i, j, min(chunk, cap - tester.n), rng)
        _, decision = tester.scan(values)
        if decision is not None:
            return tester.n, decision
        chunk = min(chunk * 2, 16_384)
    return tester.n, None


def _pick_separated_movies(
    dataset, n_movies: int, min_gap: float, rng: np.random.Generator
) -> list[int]:
    """Random movies whose ground-truth scores are pairwise >= min_gap apart."""
    order = rng.permutation(dataset.items.ids)
    picked: list[int] = []
    scores: list[float] = []
    for item in order:
        score = dataset.items.score_of(int(item))
        if all(abs(score - s) >= min_gap for s in scores):
            picked.append(int(item))
            scores.append(score)
            if len(picked) == n_movies:
                return picked
    raise ValueError(
        f"could not find {n_movies} movies separated by {min_gap}; "
        "lower min_gap or n_movies"
    )


def run_table3(
    n_movies: int = 30,
    confidences: tuple[float, ...] = (0.95, 0.98, 0.99),
    graded_workloads: tuple[int, ...] = (100, 1_000, 10_000),
    n_runs: int = 5,
    seed: int = 0,
    cap: int = UNBOUNDED_CAP,
    min_gap: float = 0.08,
) -> Report:
    """Regenerate Table 3 on the synthetic IMDb dataset."""
    dataset = load_dataset("imdb")
    rng = make_rng(seed)
    ids = _pick_separated_movies(dataset, n_movies, min_gap, rng)
    pairs = [
        (int(ids[a]), int(ids[b]))
        for a in range(n_movies)
        for b in range(a + 1, n_movies)
    ]
    rank = {int(i): dataset.items.rank_of(int(i)) for i in ids}

    regimes = [
        ("Binary/Hoeffding", BinaryOracle(dataset.oracle), "hoeffding"),
        ("Preference/Student", dataset.oracle, "student"),
        ("Preference/Stein", dataset.oracle, "stein"),
    ]

    columns = [f"1-a={conf}" for conf in confidences]
    report = Report(
        title=f"Table 3: judgment models on {n_movies} movies ({len(pairs)} pairs)",
        columns=columns,
    )
    for label, oracle, estimator in regimes:
        workloads, accuracies = [], []
        for confidence in confidences:
            config = ComparisonConfig(
                confidence=confidence,
                budget=None,
                estimator=estimator,  # type: ignore[arg-type]
            )
            total_w, verdicts, correct = 0, 0, 0
            for i, j in pairs:
                for _ in range(n_runs):
                    waste_before = getattr(oracle, "wasted", 0)
                    w, decision = _compare_unbounded(oracle, i, j, config, rng, cap)
                    # Binary ties are re-asked; the platform paid for them.
                    total_w += w + (getattr(oracle, "wasted", 0) - waste_before)
                    if decision is None:
                        continue
                    verdicts += 1
                    truth = 1 if rank[i] < rank[j] else -1
                    correct += int(decision == truth)
            workloads.append(total_w / (len(pairs) * n_runs))
            accuracies.append(correct / verdicts if verdicts else float("nan"))
        report.add_row(f"{label} workload", workloads)
        report.add_row(f"{label} accuracy", accuracies)

    # Graded judgments: w ratings per item, compare pairs by mean rating.
    graded_acc = []
    for workload in graded_workloads:
        correct = 0
        for _ in range(n_runs):
            means = {
                int(i): float(
                    np.mean(dataset.oracle.rate(int(i), workload, rng))
                )
                for i in ids
            }
            for i, j in pairs:
                observed = 1 if means[i] > means[j] else -1 if means[i] < means[j] else 0
                truth = 1 if rank[i] < rank[j] else -1
                correct += int(observed == truth)
        graded_acc.append((workload, correct / (len(pairs) * n_runs)))
    graded_report_cols = [f"w={w}" for w, _ in graded_acc]
    graded = Report(
        title="Table 3 (cont.): graded judgment accuracy by per-item workload",
        columns=graded_report_cols,
    )
    graded.add_row("Graded accuracy", [acc for _, acc in graded_acc])
    report.add_note(f"averaged over {n_runs} runs; unbounded budget capped at {cap}")
    report.add_note(graded.to_text())
    return report
