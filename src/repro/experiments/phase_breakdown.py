"""Where does SPR's money go?  Per-phase cost/latency breakdown.

A diagnostic the paper's complexity analysis implies but never tabulates:
selection should cost ``O(Nw)`` like partitioning (its problem-(2) budget
is exactly that), and ranking should be small.  This experiment runs SPR
across the datasets and attributes every microtask and round to its phase.
"""

from __future__ import annotations

import numpy as np

from ..config import SPRConfig
from ..core.spr import spr_topk
from ..datasets import load_dataset
from ..rng import make_rng, spawn_many
from .params import ExperimentParams
from .reporting import Report

__all__ = ["run_phase_breakdown"]


def run_phase_breakdown(
    datasets: tuple[str, ...] = ("imdb", "book", "jester", "photo"),
    n_runs: int = 3,
    seed: int = 0,
) -> Report:
    """Average SPR cost split into selection / partition / rank (+recursion)."""
    report = Report(
        title="SPR phase breakdown (mean microtasks per query, defaults)",
        columns=["selection", "partition", "rank+recursion", "total"],
    )
    for name in datasets:
        params = ExperimentParams(dataset=name, n_runs=n_runs, seed=seed)
        dataset = load_dataset(name, seed=params.dataset_seed)
        root = make_rng(seed)
        rngs = spawn_many(root, n_runs)
        config = params.comparison_config()
        selection, partition, tail, total = [], [], [], []
        for run in range(n_runs):
            session = dataset.session(config, seed=rngs[run])
            result = spr_topk(
                session,
                dataset.items.ids.tolist(),
                params.k,
                SPRConfig(comparison=config),
            )
            sel = result.selection.cost if result.selection else 0
            part = result.partition_result.cost if result.partition_result else 0
            selection.append(sel)
            partition.append(part)
            tail.append(result.cost - sel - part)
            total.append(result.cost)
        report.add_row(
            name,
            [
                float(np.mean(selection)),
                float(np.mean(partition)),
                float(np.mean(tail)),
                float(np.mean(total)),
            ],
        )
    report.add_note(
        f"averaged over {n_runs} runs, seed={seed}; 'rank+recursion' is the "
        "remainder after the outermost selection and partition"
    )
    return report
