"""The full interactive-deployment projection (Appendix F, operationally).

The paper's one live run — PeopleAge on CrowdFlower — reports three
numbers: US$10.56 of microtasks, 6 h 55 min of wall clock, NDCG 0.917.
This experiment chains the whole operational stack: run the simulation,
convert microtasks to dollars (Appendix-B unit cost) and rounds to hours
(Appendix-B answer times with a finite worker pool), and set the result
next to the paper's measurements.
"""

from __future__ import annotations

import numpy as np

from ..config import SPRConfig
from ..core.spr import spr_topk
from ..crowd.timeline import project_wall_clock
from ..datasets import load_dataset
from ..extensions.economics import dollars_for
from ..metrics import ndcg_at_k
from ..rng import make_rng, spawn_many
from .params import ExperimentParams
from .reporting import Report

__all__ = ["run_interactive"]

#: The paper's live CrowdFlower measurements (Appendix F).
PAPER_DOLLARS = 10.56
PAPER_HOURS = 6.0 + 55.0 / 60.0
PAPER_NDCG = 0.917


def run_interactive(
    n_runs: int = 5,
    seed: int = 0,
    workers: int = 30,
    posting_overhead_seconds: float = 180.0,
) -> Report:
    """Project the PeopleAge deployment end to end (cost, hours, quality)."""
    params = ExperimentParams(
        dataset="peopleage",
        k=10,
        confidence=0.90,
        budget=100,
        n_runs=n_runs,
        seed=seed,
    )
    dataset = load_dataset(params.dataset, seed=params.dataset_seed)
    root = make_rng(seed)
    rngs = spawn_many(root, n_runs)
    config = params.comparison_config()

    dollars, hours, ndcgs = [], [], []
    for run in range(n_runs):
        session = dataset.session(config, seed=rngs[run])
        result = spr_topk(
            session,
            dataset.items.ids.tolist(),
            params.k,
            SPRConfig(comparison=config),
        )
        dollars.append(dollars_for(session.total_cost))
        hours.append(
            project_wall_clock(
                session,
                workers=workers,
                posting_overhead_seconds=posting_overhead_seconds,
            ).hours
        )
        ndcgs.append(ndcg_at_k(dataset.items, result.topk, params.k))

    report = Report(
        title="Interactive deployment projection: PeopleAge "
        f"({workers} concurrent workers)",
        columns=["US$", "hours", "NDCG"],
    )
    report.add_row(
        "SPR (ours, projected)",
        [float(np.mean(dollars)), float(np.mean(hours)), float(np.mean(ndcgs))],
    )
    report.add_row(
        "SPR (paper, live run)", [PAPER_DOLLARS, PAPER_HOURS, PAPER_NDCG]
    )
    report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    report.add_note(
        f"per-round platform turnaround modelled at "
        f"{posting_overhead_seconds:.0f}s (publication + worker pickup); "
        "the paper's live run implies a few minutes per batch"
    )
    return report
