"""Table 7 — TMC of the confidence-aware methods on all four datasets.

The headline comparison: SPR vs tournament tree, heap sort, quick
selection and preference-based racing at the default settings (k=10,
1-α=0.98, B=1000, full datasets).
"""

from __future__ import annotations

from .params import ExperimentParams
from .reporting import Report
from .runner import run_method

__all__ = ["run_table7", "TABLE7_METHODS", "TABLE7_DATASETS"]

TABLE7_METHODS = ("spr", "tournament", "heapsort", "quickselect", "pbr")
TABLE7_DATASETS = ("imdb", "book", "jester", "photo")


def run_table7(
    datasets: tuple[str, ...] = TABLE7_DATASETS,
    methods: tuple[str, ...] = TABLE7_METHODS,
    n_runs: int = 5,
    seed: int = 0,
    pbr_datasets: tuple[str, ...] | None = None,
    n_jobs: int | None = None,
) -> Report:
    """Regenerate Table 7 (TMC per method per dataset).

    ``pbr_datasets`` optionally restricts PBR to a subset of the datasets —
    its quadratic racing makes it by far the slowest cell of the whole
    harness (that expense being the very point of the comparison).
    """
    report = Report(
        title="Table 7: TMC of confidence-aware methods (defaults)",
        columns=[m for m in methods],
    )
    for dataset in datasets:
        params = ExperimentParams(dataset=dataset, n_runs=n_runs, seed=seed)
        row: list[object] = []
        for method in methods:
            if (
                method == "pbr"
                and pbr_datasets is not None
                and dataset not in pbr_datasets
            ):
                row.append(float("nan"))
                continue
            stats = run_method(method, params, n_jobs=n_jobs)
            row.append(stats.mean_cost)
        report.add_row(dataset, row)
    report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    return report
