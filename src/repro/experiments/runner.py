"""Multi-run experiment execution with seed management.

``run_method`` executes one algorithm on one parameter cell ``n_runs``
times — fresh session and (for cardinality sweeps) a fresh random item
subset per run — and aggregates cost, latency and quality.  All randomness
flows from the cell's seed, so every number in EXPERIMENTS.md is
regenerable bit-for-bit.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..algorithms import ALGORITHMS, infimum_estimate
from ..algorithms.base import TopKOutcome
from ..datasets import load_dataset
from ..errors import AlgorithmError
from ..metrics import ndcg_at_k, top_k_precision
from ..rng import make_rng, spawn_many
from ..telemetry import get_registry
from .params import ExperimentParams

logger = logging.getLogger(__name__)

__all__ = ["RunRecord", "MethodStats", "run_method", "run_methods", "run_infimum"]


@dataclass(frozen=True)
class RunRecord:
    """One run's measurements."""

    method: str
    cost: int
    rounds: int
    ndcg: float
    precision: float
    wall_seconds: float
    extras: dict


@dataclass(frozen=True)
class MethodStats:
    """Aggregates of one method on one parameter cell."""

    method: str
    n_runs: int
    mean_cost: float
    std_cost: float
    mean_rounds: float
    std_rounds: float
    mean_ndcg: float
    std_ndcg: float
    mean_precision: float
    runs: tuple[RunRecord, ...]

    @classmethod
    def from_runs(cls, method: str, runs: list[RunRecord]) -> "MethodStats":
        if not runs:
            raise AlgorithmError("cannot aggregate zero runs")
        costs = np.asarray([r.cost for r in runs], dtype=np.float64)
        rounds = np.asarray([r.rounds for r in runs], dtype=np.float64)
        ndcgs = np.asarray([r.ndcg for r in runs], dtype=np.float64)
        precisions = np.asarray([r.precision for r in runs], dtype=np.float64)
        return cls(
            method=method,
            n_runs=len(runs),
            mean_cost=float(costs.mean()),
            std_cost=float(costs.std(ddof=1)) if len(runs) > 1 else 0.0,
            mean_rounds=float(rounds.mean()),
            std_rounds=float(rounds.std(ddof=1)) if len(runs) > 1 else 0.0,
            mean_ndcg=float(ndcgs.mean()),
            std_ndcg=float(ndcgs.std(ddof=1)) if len(runs) > 1 else 0.0,
            mean_precision=float(precisions.mean()),
            runs=tuple(runs),
        )


def _execute_runs(
    params: ExperimentParams,
    execute,  # (session, working ItemSet, run rng) -> TopKOutcome
    method_name: str,
) -> MethodStats:
    """Shared run loop: seeds, subsets, sessions, metric collection."""
    dataset = load_dataset(params.dataset, seed=params.dataset_seed)
    root = make_rng(params.seed)
    subset_rngs = spawn_many(root, params.n_runs)
    session_rngs = spawn_many(root, params.n_runs)

    runs: list[RunRecord] = []
    config = params.comparison_config()
    telemetry = get_registry()
    for run in range(params.n_runs):
        working = dataset.sample_items(params.n_items, subset_rngs[run])
        session = dataset.session(config, seed=session_rngs[run])
        started = time.perf_counter()
        with telemetry.span(
            "experiment.run",
            session=session,
            method=method_name,
            dataset=params.dataset,
            run=run,
        ):
            outcome = execute(session, working, session_rngs[run])
        elapsed = time.perf_counter() - started
        telemetry.counter("experiment_runs_total", method=method_name).inc()
        telemetry.histogram(
            "experiment_run_wall_seconds", method=method_name
        ).observe(elapsed)
        telemetry.histogram(
            "experiment_run_cost", method=method_name
        ).observe(outcome.cost)
        logger.debug(
            "run %d/%d of %s on %s: %d microtasks, %d rounds, %.3fs",
            run + 1, params.n_runs, method_name, params.dataset,
            outcome.cost, outcome.rounds, elapsed,
        )
        runs.append(
            RunRecord(
                method=method_name,
                cost=outcome.cost,
                rounds=outcome.rounds,
                ndcg=ndcg_at_k(working, outcome.topk, params.k),
                precision=top_k_precision(working, outcome.topk, params.k),
                wall_seconds=elapsed,
                extras=outcome.extras,
            )
        )
    return MethodStats.from_runs(method_name, runs)


def run_method(
    method: str, params: ExperimentParams, **method_kwargs: object
) -> MethodStats:
    """Run one registered algorithm over ``params.n_runs`` fresh runs.

    ``method_kwargs`` are forwarded to the algorithm (e.g. ``budget=`` for
    the budget-matched baselines, ``spr_config=`` overrides).
    """
    try:
        algorithm = ALGORITHMS[method]
    except KeyError:
        known = ", ".join(sorted(ALGORITHMS))
        raise AlgorithmError(f"unknown method {method!r}; known: {known}") from None

    if method == "spr" and "spr_config" not in method_kwargs:
        method_kwargs = {**method_kwargs, "spr_config": params.spr_config()}

    def execute(session, working, _rng) -> TopKOutcome:
        return algorithm(session, working.ids.tolist(), params.k, **method_kwargs)

    return _execute_runs(params, execute, method)


def run_methods(
    methods: list[str], params: ExperimentParams
) -> dict[str, MethodStats]:
    """Run several methods on the same cell (independent seed streams)."""
    return {method: run_method(method, params) for method in methods}


def run_infimum(params: ExperimentParams) -> MethodStats:
    """Measure the Lemma-1 infimum on a parameter cell (same run regime)."""

    def execute(session, working, _rng) -> TopKOutcome:
        return infimum_estimate(session, working, params.k)

    return _execute_runs(params, execute, "infimum")
