"""Multi-run experiment execution with seed management.

``run_method`` executes one algorithm on one parameter cell ``n_runs``
times — fresh session and (for cardinality sweeps) a fresh random item
subset per run — and aggregates cost, latency and quality.  All randomness
flows from the cell's seed, so every number in EXPERIMENTS.md is
regenerable bit-for-bit.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass

import numpy as np

from ..algorithms import ALGORITHMS, infimum_estimate
from ..algorithms.base import TopKOutcome
from ..datasets import load_dataset
from ..errors import AlgorithmError
from ..metrics import ndcg_at_k, top_k_precision
from ..rng import make_rng, spawn_many
from ..telemetry import get_registry
from .params import ExperimentParams

logger = logging.getLogger(__name__)

__all__ = ["RunRecord", "MethodStats", "run_method", "run_methods", "run_infimum"]


@dataclass(frozen=True)
class RunRecord:
    """One run's measurements."""

    method: str
    cost: int
    rounds: int
    ndcg: float
    precision: float
    wall_seconds: float
    extras: dict


@dataclass(frozen=True)
class MethodStats:
    """Aggregates of one method on one parameter cell."""

    method: str
    n_runs: int
    mean_cost: float
    std_cost: float
    mean_rounds: float
    std_rounds: float
    mean_ndcg: float
    std_ndcg: float
    mean_precision: float
    runs: tuple[RunRecord, ...]

    @classmethod
    def from_runs(cls, method: str, runs: list[RunRecord]) -> "MethodStats":
        if not runs:
            raise AlgorithmError("cannot aggregate zero runs")
        costs = np.asarray([r.cost for r in runs], dtype=np.float64)
        rounds = np.asarray([r.rounds for r in runs], dtype=np.float64)
        ndcgs = np.asarray([r.ndcg for r in runs], dtype=np.float64)
        precisions = np.asarray([r.precision for r in runs], dtype=np.float64)
        return cls(
            method=method,
            n_runs=len(runs),
            mean_cost=float(costs.mean()),
            std_cost=float(costs.std(ddof=1)) if len(runs) > 1 else 0.0,
            mean_rounds=float(rounds.mean()),
            std_rounds=float(rounds.std(ddof=1)) if len(runs) > 1 else 0.0,
            mean_ndcg=float(ndcgs.mean()),
            std_ndcg=float(ndcgs.std(ddof=1)) if len(runs) > 1 else 0.0,
            mean_precision=float(precisions.mean()),
            runs=tuple(runs),
        )


def _make_execute(kind: str, method: str, params: ExperimentParams, method_kwargs: dict):
    """Build the per-run ``(session, working, rng) -> TopKOutcome`` callable.

    Shared by the serial loop below and by the pool workers of
    :mod:`repro.experiments.parallel`, which rebuild it from a declarative
    :class:`~repro.experiments.parallel.RunSpec` on the worker side (a
    closure cannot cross a process boundary, a spec can).
    """
    if kind == "infimum":

        def execute(session, working, _rng) -> TopKOutcome:
            return infimum_estimate(session, working, params.k)

    else:
        algorithm = ALGORITHMS[method]

        def execute(session, working, _rng) -> TopKOutcome:
            return algorithm(session, working.ids.tolist(), params.k, **method_kwargs)

    return execute


def _single_run(
    dataset,
    params: ExperimentParams,
    execute,  # (session, working ItemSet, run rng) -> TopKOutcome
    method_name: str,
    run: int,
    subset_rng: np.random.Generator,
    session_rng: np.random.Generator,
) -> RunRecord:
    """One seeded run: subset, session, execution, metric collection.

    This is the unit of work the parallel engine ships to pool workers;
    the serial loop calls it with the very same RNG streams, which is what
    keeps the two paths bit-for-bit identical.
    """
    telemetry = get_registry()
    working = dataset.sample_items(params.n_items, subset_rng)
    session = dataset.session(params.comparison_config(), seed=session_rng)
    started = time.perf_counter()
    with telemetry.span(
        "experiment.run",
        session=session,
        method=method_name,
        dataset=params.dataset,
        run=run,
    ):
        outcome = execute(session, working, session_rng)
    elapsed = time.perf_counter() - started
    telemetry.counter("experiment_runs_total", method=method_name).inc()
    telemetry.histogram(
        "experiment_run_wall_seconds", method=method_name
    ).observe(elapsed)
    telemetry.histogram(
        "experiment_run_cost", method=method_name
    ).observe(outcome.cost)
    logger.debug(
        "run %d/%d of %s on %s: %d microtasks, %d rounds, %.3fs",
        run + 1, params.n_runs, method_name, params.dataset,
        outcome.cost, outcome.rounds, elapsed,
    )
    return RunRecord(
        method=method_name,
        cost=outcome.cost,
        rounds=outcome.rounds,
        ndcg=ndcg_at_k(working, outcome.topk, params.k),
        precision=top_k_precision(working, outcome.topk, params.k),
        wall_seconds=elapsed,
        extras=outcome.extras,
    )


def _execute_runs(
    params: ExperimentParams,
    execute,
    method_name: str,
) -> MethodStats:
    """Serial run loop: seeds, subsets, sessions, metric collection."""
    dataset = load_dataset(params.dataset, seed=params.dataset_seed)
    root = make_rng(params.seed)
    subset_rngs = spawn_many(root, params.n_runs)
    session_rngs = spawn_many(root, params.n_runs)
    runs = [
        _single_run(
            dataset, params, execute, method_name,
            run, subset_rngs[run], session_rngs[run],
        )
        for run in range(params.n_runs)
    ]
    return MethodStats.from_runs(method_name, runs)


def _validated_kwargs(
    method: str, params: ExperimentParams, method_kwargs: dict
) -> dict:
    """Validate ``method`` and inject the cell's SPR config when needed."""
    if method not in ALGORITHMS:
        known = ", ".join(sorted(ALGORITHMS))
        raise AlgorithmError(f"unknown method {method!r}; known: {known}")
    if method == "spr" and "spr_config" not in method_kwargs:
        method_kwargs = {**method_kwargs, "spr_config": params.spr_config()}
    return method_kwargs


def _use_lattice(engine: str | None, n_jobs: int | None) -> bool:
    """Whether this call should race its runs through the lattice.

    An explicit ``engine="lattice"`` argument always wins; an *ambient*
    lattice (``use_engine`` / ``CROWD_TOPK_ENGINE``) replaces only the
    serial ``n_jobs == 1`` slot, so callers that explicitly fan out over
    worker processes keep their process pool.
    """
    from .parallel import resolve_engine, resolve_jobs

    if resolve_engine(engine) != "lattice":
        return False
    return engine is not None or resolve_jobs(n_jobs) == 1


def run_method(
    method: str,
    params: ExperimentParams,
    *,
    n_jobs: int | None = None,
    engine: str | None = None,
    **method_kwargs: object,
) -> MethodStats:
    """Run one registered algorithm over ``params.n_runs`` fresh runs.

    ``method_kwargs`` are forwarded to the algorithm (e.g. ``budget=`` for
    the budget-matched baselines, ``spr_config=`` overrides).  ``n_jobs``
    fans the runs out over a process pool (``1`` = serial, ``0`` = one
    worker per CPU, ``None`` = the ambient default — see
    :func:`repro.experiments.parallel.use_jobs`); ``engine="lattice"``
    races the runs through one fused in-process lattice instead.  Results
    are bit-for-bit identical whichever engine executes them.
    """
    method_kwargs = _validated_kwargs(method, params, dict(method_kwargs))
    from .parallel import resolve_jobs, run_specs, RunSpec

    if resolve_jobs(n_jobs) == 1 and not _use_lattice(engine, n_jobs):
        execute = _make_execute("algorithm", method, params, method_kwargs)
        return _execute_runs(params, execute, method)
    spec = RunSpec(
        kind="algorithm", method=method, params=params,
        method_kwargs=method_kwargs,
    )
    return run_specs([spec], n_jobs=n_jobs, engine=engine)[0]


def run_methods(
    methods: list[str],
    params: ExperimentParams,
    *,
    n_jobs: int | None = None,
    engine: str | None = None,
) -> dict[str, MethodStats]:
    """Run several methods on the same cell (independent seed streams).

    With ``n_jobs != 1`` every (method × run) work unit goes through one
    shared process pool, so slow methods overlap with fast ones; under
    ``engine="lattice"`` all (method × run) units race in one fused
    lattice batch.
    """
    from .parallel import resolve_jobs, run_specs, RunSpec

    if resolve_jobs(n_jobs) == 1 and not _use_lattice(engine, n_jobs):
        return {
            method: run_method(method, params, engine=engine)
            for method in methods
        }
    specs = [
        RunSpec(
            kind="algorithm", method=method, params=params,
            method_kwargs=_validated_kwargs(method, params, {}),
        )
        for method in methods
    ]
    stats = run_specs(specs, n_jobs=n_jobs, engine=engine)
    return dict(zip(methods, stats))


def run_infimum(
    params: ExperimentParams,
    *,
    n_jobs: int | None = None,
    engine: str | None = None,
) -> MethodStats:
    """Measure the Lemma-1 infimum on a parameter cell (same run regime)."""
    from .parallel import resolve_jobs, run_specs, RunSpec

    if resolve_jobs(n_jobs) == 1 and not _use_lattice(engine, n_jobs):
        execute = _make_execute("infimum", "infimum", params, {})
        return _execute_runs(params, execute, "infimum")
    spec = RunSpec(kind="infimum", method="infimum", params=params, method_kwargs={})
    return run_specs([spec], n_jobs=n_jobs, engine=engine)[0]
