"""Appendix F interactive experiment — PeopleAge.

Find the 10 youngest of 100 people at 1−α = 0.90, B = 100.  The paper ran
this live on CrowdFlower (TMC 10,560 ≙ $10.56, NDCG 0.917) and in
simulation (TMC 9,570, NDCG 0.905), concluding the simulation reflects the
real performance; this module regenerates the simulation side.
"""

from __future__ import annotations

from .params import ExperimentParams
from .reporting import Report
from .runner import run_method

__all__ = ["run_peopleage", "PAPER_SIMULATED_TMC", "PAPER_SIMULATED_NDCG"]

#: The paper's simulation results for this experiment (Appendix F).
PAPER_SIMULATED_TMC = 9_570
PAPER_SIMULATED_NDCG = 0.905


def run_peopleage(
    n_runs: int = 10, seed: int = 0, n_jobs: int | None = None
) -> Report:
    """Regenerate the PeopleAge simulation (k=10, 1−α=0.90, B=100)."""
    params = ExperimentParams(
        dataset="peopleage",
        k=10,
        confidence=0.90,
        budget=100,
        min_workload=30,
        n_runs=n_runs,
        seed=seed,
    )
    stats = run_method("spr", params, n_jobs=n_jobs)
    report = Report(
        title="Appendix F: PeopleAge interactive experiment (simulation)",
        columns=["TMC", "NDCG", "US$ at 0.1c/task"],
    )
    report.add_row(
        "SPR (ours)",
        [stats.mean_cost, stats.mean_ndcg, stats.mean_cost * 0.001],
    )
    report.add_row(
        "SPR (paper, simulated)",
        [float(PAPER_SIMULATED_TMC), PAPER_SIMULATED_NDCG, 9.57],
    )
    report.add_note(f"averaged over {n_runs} runs, seed={seed}")
    return report
