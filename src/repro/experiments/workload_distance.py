"""Figure 3's premise, measured: workload vs. rank distance.

Everything in the paper rests on one empirical fact — the workload needed
to separate a pair is inversely related to their distance in the hidden
total order (`W(o_i, o_j) ∝ 1/|s(o_i) − s(o_j)|`).  This experiment
measures the curve directly: sample pairs at controlled rank distances on
a dataset, run the comparison process on each, and report the mean
workload (and tie rate) per distance bucket.
"""

from __future__ import annotations

import numpy as np

from ..datasets import load_dataset
from ..rng import make_rng
from .params import ExperimentParams
from .reporting import Report

__all__ = ["run_workload_distance"]


def run_workload_distance(
    dataset_name: str = "imdb",
    distances: tuple[int, ...] = (1, 2, 5, 10, 25, 50, 100, 250),
    pairs_per_distance: int = 20,
    n_runs: int = 2,
    seed: int = 0,
    params: ExperimentParams | None = None,
) -> Report:
    """Mean comparison workload as a function of rank distance."""
    params = params if params is not None else ExperimentParams(dataset=dataset_name)
    dataset = load_dataset(dataset_name, seed=params.dataset_seed)
    order = dataset.items.true_order
    n = len(order)
    rng = make_rng(seed)
    config = params.comparison_config()

    report = Report(
        title=f"Workload vs rank distance on {dataset_name} "
        f"(1-a={params.confidence}, B={params.budget})",
        columns=[f"d={d}" for d in distances if d < n],
    )
    workloads, tie_rates = [], []
    for distance in distances:
        if distance >= n:
            continue
        total_w, ties, count = 0, 0, 0
        session = dataset.session(config, seed=rng)
        for _ in range(pairs_per_distance):
            start = int(rng.integers(0, n - distance))
            better = int(order[start])
            worse = int(order[start + distance])
            for _ in range(n_runs):
                session.cache.clear()  # each measurement pays full price
                record = session.compare(better, worse)
                total_w += record.workload
                ties += int(not record.outcome.decided)
                count += 1
        workloads.append(total_w / count)
        tie_rates.append(ties / count)
    report.add_row("mean workload", workloads)
    report.add_row("tie rate", tie_rates)
    report.add_note(
        f"{pairs_per_distance} random pairs per distance x {n_runs} runs, "
        f"seed={seed}; fresh bags per measurement"
    )
    return report
