"""Normalized Discounted Cumulative Gain — the paper's accuracy metric.

Three gain schemes are offered:

* ``"topk"`` (default) — the crowdsourced-top-k convention: the true
  rank-1 item is worth ``k``, rank-``k`` is worth 1, anything outside the
  true top-k is worth 0.  This is the scheme whose values behave like the
  paper's (it actually *punishes* returning a rank-``k+2`` item).
* ``"linear"`` — classic rank-complement gains (best of ``N`` items worth
  ``N``); very forgiving for large collections.
* ``"exponential"`` — the IR-style ``2^rel − 1`` on rescaled relevance.

A returned list is scored by the log-discounted gain sum, normalized by
the ideal list's score, so 1.0 means the true top-k in the true order.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..core.items import ItemSet

__all__ = ["dcg", "ndcg_at_k"]

GainScheme = str  # "topk", "linear" or "exponential"


def _relevance(items: ItemSet, item_id: int, scheme: GainScheme, k: int) -> float:
    rank = items.rank_of(item_id)
    if scheme == "topk":
        return float(max(k - rank + 1, 0))
    rel = len(items) - rank + 1
    if scheme == "linear":
        return float(rel)
    if scheme == "exponential":
        # Exponential gains in |items| overflow; rescale relevance into
        # [0, 10] first, the common practice for large collections.
        return float(2.0 ** (10.0 * rel / len(items)) - 1.0)
    raise ValueError(f"unknown gain scheme {scheme!r}")


def dcg(
    items: ItemSet,
    returned: Sequence[int],
    scheme: GainScheme = "topk",
    k: int | None = None,
) -> float:
    """Discounted cumulative gain of ``returned`` (best-first).

    ``k`` parameterizes the ``"topk"`` gain scheme (defaults to the list
    length) and is ignored by the other schemes.
    """
    k = len(returned) if k is None else int(k)
    gains = np.asarray(
        [_relevance(items, int(item), scheme, k) for item in returned]
    )
    if gains.size == 0:
        return 0.0
    discounts = 1.0 / np.log2(np.arange(2, gains.size + 2))
    return float(gains @ discounts)


def ndcg_at_k(
    items: ItemSet,
    returned: Sequence[int],
    k: int | None = None,
    scheme: GainScheme = "topk",
) -> float:
    """NDCG of a returned top-k list against the ground-truth order.

    ``k`` defaults to the length of ``returned``; longer lists are
    truncated.  Duplicate items in ``returned`` are rejected — a top-k
    answer must be a set.
    """
    got = [int(item) for item in returned]
    if len(got) != len(set(got)):
        raise ValueError("returned list contains duplicate items")
    k = len(got) if k is None else int(k)
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    got = got[:k]
    effective_k = min(k, len(items))
    ideal = [int(item) for item in items.true_top_k(effective_k)]
    denominator = dcg(items, ideal, scheme, k=effective_k)
    if denominator == 0.0:
        return 0.0
    return dcg(items, got, scheme, k=effective_k) / denominator
