"""Set- and order-based ranking metrics."""

from __future__ import annotations

from collections.abc import Sequence

from ..core.items import ItemSet

__all__ = [
    "top_k_precision",
    "top_k_recall",
    "kendall_tau",
    "spearman_footrule",
]


def top_k_precision(items: ItemSet, returned: Sequence[int], k: int) -> float:
    """Fraction of the returned items that truly belong to the top-k.

    This is the quantity §5.4 lower-bounds by ``(1 − α)/c``.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    got = [int(item) for item in returned][:k]
    if not got:
        return 0.0
    truth = set(int(i) for i in items.true_top_k(min(k, len(items))))
    return sum(1 for item in got if item in truth) / len(got)


def top_k_recall(items: ItemSet, returned: Sequence[int], k: int) -> float:
    """Fraction of the true top-k present in the returned list."""
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    truth = set(int(i) for i in items.true_top_k(min(k, len(items))))
    got = set(int(item) for item in returned)
    return len(truth & got) / len(truth)


def spearman_footrule(items: ItemSet, returned: Sequence[int]) -> float:
    """Normalized Spearman footrule disarray of the returned order.

    The measure behind the paper's reference [14] (Diaconis & Graham):
    the total displacement ``Σ|i − σ(i)|`` between each item's position in
    the returned list and its position in the ground-truth order *of the
    returned items*, normalized by the maximum possible disarray.  0.0 is
    a perfectly ordered list, 1.0 the maximal derangement; lists shorter
    than 2 score 0.0 by convention.
    """
    got = [int(item) for item in returned]
    if len(got) != len(set(got)):
        raise ValueError("returned list contains duplicate items")
    m = len(got)
    if m < 2:
        return 0.0
    ideal = sorted(got, key=lambda item: items.rank_of(item))
    position_in_ideal = {item: pos for pos, item in enumerate(ideal)}
    disarray = sum(
        abs(pos - position_in_ideal[item]) for pos, item in enumerate(got)
    )
    maximum = (m * m) // 2 if m % 2 == 0 else (m * m - 1) // 2
    return disarray / maximum


def kendall_tau(items: ItemSet, returned: Sequence[int]) -> float:
    """Kendall's tau between the returned order and the ground truth.

    Computed over the returned items only (a top-k list orders just its own
    members).  Returns 1.0 for a perfectly ordered list, -1.0 for the exact
    reversal; lists of fewer than 2 items score 1.0 by convention.
    """
    got = [int(item) for item in returned]
    if len(got) != len(set(got)):
        raise ValueError("returned list contains duplicate items")
    if len(got) < 2:
        return 1.0
    ranks = [items.rank_of(item) for item in got]
    concordant = discordant = 0
    for a in range(len(ranks)):
        for b in range(a + 1, len(ranks)):
            if ranks[a] < ranks[b]:
                concordant += 1
            elif ranks[a] > ranks[b]:
                discordant += 1
    total = concordant + discordant
    if total == 0:
        return 1.0
    return (concordant - discordant) / total
