"""Quality metrics for top-k results (§6.2)."""

from .accuracy import comparison_accuracy
from .ndcg import dcg, ndcg_at_k
from .ranking import (
    kendall_tau,
    spearman_footrule,
    top_k_precision,
    top_k_recall,
)

__all__ = [
    "comparison_accuracy",
    "dcg",
    "kendall_tau",
    "ndcg_at_k",
    "spearman_footrule",
    "top_k_precision",
    "top_k_recall",
]
