"""Comparison-level accuracy (the "Acc." rows of Table 3)."""

from __future__ import annotations

from ..core.comparison import ComparisonRecord
from ..core.items import ItemSet
from ..core.outcomes import Outcome

__all__ = ["comparison_accuracy"]


def comparison_accuracy(items: ItemSet, record: ComparisonRecord) -> float | None:
    """Whether a comparison verdict follows the ground-truth order Ω.

    Returns 1.0 / 0.0 for decided comparisons and ``None`` for ties —
    Table 3 averages accuracy over decided comparisons only (with
    ``B = ∞`` every comparison decides).
    """
    if record.outcome is Outcome.TIE:
        return None
    true_left_better = items.rank_of(record.left) < items.rank_of(record.right)
    verdict_left_better = record.outcome is Outcome.LEFT
    return 1.0 if true_left_better == verdict_left_better else 0.0
