"""Statistical building blocks: t quantiles, reference-selection math,
Thurstone win probabilities, and median-selection cost bounds."""

from .median_cost import MEDIAN_COST_BOUNDS, median_cost_upper_bound
from .reference import (
    hit_probability,
    median_in_sweet_spot_probability,
    solve_sampling_plan,
)
from .tdist import t_quantile, t_quantiles
from .thurstone import win_probability
from .planning import predict_infimum_cost, predict_pair_workload
from .validation import CalibrationReport, calibrate_tester
from .workload import binary_workload, student_workload, workload_ratio

__all__ = [
    "CalibrationReport",
    "calibrate_tester",
    "predict_infimum_cost",
    "predict_pair_workload",
    "binary_workload",
    "student_workload",
    "workload_ratio",
    "MEDIAN_COST_BOUNDS",
    "median_cost_upper_bound",
    "hit_probability",
    "median_in_sweet_spot_probability",
    "solve_sampling_plan",
    "t_quantile",
    "t_quantiles",
    "win_probability",
]
