"""Probability machinery behind reference selection (§5.1).

Three pieces are implemented here:

* Equation (1): the probability that the maximum of ``x`` uniform samples
  (with replacement) falls within the top-``j`` of ``N`` items.
* The Lemma-2 probability that the *median* of ``m`` independent sample
  maxima lands inside the sweet spot ``{o*_k, …, o*_{⌊ck⌋}}``.
* A solver for optimization problem (2): choose integers ``x`` and ``m``
  maximizing that probability subject to the sampling effort
  ``m(x-1) + C(bubble, m)`` staying within a comparison budget.

The Lemma-2 expression is evaluated in the exact order-statistic form
``P(U ≥ h) − P(T ≥ h)`` with ``h = (m+1)/2``: the median is in the sweet
spot iff at least ``h`` maxima reach the top-``⌊ck⌋`` (event on ``U``) but
fewer than ``h`` reach the top-``(k-1)`` (event on ``T``), and
``{T ≥ h} ⊆ {U ≥ h}`` because every top-``(k-1)`` hit is also a
top-``⌊ck⌋`` hit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import stats as _sps

from .median_cost import bubble_median_comparisons

__all__ = [
    "hit_probability",
    "median_in_sweet_spot_probability",
    "solve_sampling_plan",
    "SamplingPlan",
]


def hit_probability(n_items: int, top_j: int, x: int) -> float:
    """Equation (1): ``Pr{max of x samples ⪰ o*_j} = 1 - (1 - j/N)^x``.

    ``top_j`` is clamped to ``[0, n_items]``; ``top_j = 0`` means "strictly
    better than the best item", which is impossible (probability 0).
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if x < 1:
        raise ValueError(f"x must be >= 1, got {x}")
    j = min(max(top_j, 0), n_items)
    return float(1.0 - (1.0 - j / n_items) ** x)


def median_in_sweet_spot_probability(
    n_items: int, k: int, c: float, x: int, m: int
) -> float:
    """Lemma 2: probability the median of ``m`` sample maxima hits the sweet spot.

    ``m`` must be odd so the median is a single order statistic.
    """
    if m < 1 or m % 2 == 0:
        raise ValueError(f"m must be a positive odd integer, got {m}")
    if k < 1 or k > n_items:
        raise ValueError(f"k must be in [1, {n_items}], got {k}")
    if c <= 1.0:
        raise ValueError(f"sweet-spot constant c must be > 1, got {c}")
    p = hit_probability(n_items, k - 1, x)
    q = hit_probability(n_items, int(math.floor(c * k)), x)
    h = (m + 1) // 2
    # P(Binom(m, q) >= h) - P(Binom(m, p) >= h)
    return float(_sps.binom.sf(h - 1, m, q) - _sps.binom.sf(h - 1, m, p))


@dataclass(frozen=True)
class SamplingPlan:
    """Solution of problem (2): sample sizes and the achieved probability.

    Attributes
    ----------
    x:
        Number of items drawn (with replacement) per sampling procedure.
    m:
        Number of independent sampling procedures (odd).
    probability:
        The Lemma-2 probability that the median of the ``m`` maxima lies in
        the sweet spot.
    comparison_budget:
        The comparison budget the plan was solved under.
    comparisons:
        Upper bound on comparisons the plan consumes:
        ``m (x - 1)`` max-findings plus the partial-bubble median selection.
    """

    x: int
    m: int
    probability: float
    comparison_budget: int
    comparisons: int


def solve_sampling_plan(
    n_items: int, k: int, c: float, comparison_budget: int | None = None
) -> SamplingPlan:
    """Solve optimization problem (2) by exact enumeration.

    Maximizes the Lemma-2 probability over odd ``m`` and integer ``x``
    subject to ``m (x - 1) + C(bubble, m) <= comparison_budget`` (default
    budget: ``n_items``, so selection never dominates the ``O(N)``
    partitioning cost).  Ties in probability are broken toward the cheaper
    plan.  Enumeration is cheap: ``m`` ranges over ``O(sqrt(budget))`` odd
    values and ``x`` is swept vectorized per ``m``.
    """
    if n_items < 2:
        raise ValueError(f"need at least 2 items to sample from, got {n_items}")
    if k < 1 or k >= n_items:
        raise ValueError(f"k must be in [1, {n_items - 1}], got {k}")
    budget = n_items if comparison_budget is None else int(comparison_budget)
    if budget < 1:
        raise ValueError(f"comparison_budget must be >= 1, got {budget}")

    j_good = k - 1
    j_sweet = min(int(math.floor(c * k)), n_items)
    log_miss_good = math.log1p(-j_good / n_items) if j_good > 0 else None
    log_miss_sweet = (
        math.log1p(-j_sweet / n_items) if j_sweet < n_items else None
    )

    best: SamplingPlan | None = None
    m = 1
    while True:
        median_cost = bubble_median_comparisons(m)
        if median_cost > budget and m > 1:
            break
        remaining = budget - median_cost
        x_max = remaining // m + 1 if remaining >= 0 else 1
        x_max = max(x_max, 1)
        # Cap the sweep: beyond x ~ N the hit probabilities saturate.
        x_max = min(x_max, 4 * n_items)
        xs = np.arange(1, x_max + 1, dtype=np.float64)
        if log_miss_good is None:
            p = np.zeros_like(xs)
        else:
            p = 1.0 - np.exp(xs * log_miss_good)
        if log_miss_sweet is None:
            q = np.ones_like(xs)
        else:
            q = 1.0 - np.exp(xs * log_miss_sweet)
        h = (m + 1) // 2
        prob = _sps.binom.sf(h - 1, m, q) - _sps.binom.sf(h - 1, m, p)
        idx = int(np.argmax(prob))
        candidate = SamplingPlan(
            x=idx + 1,
            m=m,
            probability=float(prob[idx]),
            comparison_budget=budget,
            comparisons=m * idx + median_cost,
        )
        if (
            best is None
            or candidate.probability > best.probability + 1e-12
            or (
                abs(candidate.probability - best.probability) <= 1e-12
                and candidate.comparisons < best.comparisons
            )
        ):
            best = candidate
        m += 2
    assert best is not None  # m = 1 always yields a candidate
    return best
