"""Closed-form cost planning — predict before you spend.

Combining Lemma 1 with the Appendix-D workload forms gives a *pencil and
paper* estimate of what a top-k query must cost, before a single microtask
is published: the infimum is a sum of per-pair workloads, and each pair's
workload is (approximately) the Student fixed point for its score gap,
clamped by the cold start and the budget.

The predictions are expected-scale, not exact — the Monte-Carlo
:func:`~repro.algorithms.infimum.infimum_estimate` is the measured ground
truth — but they let an operator budget a deployment from nothing more
than a guess at the score distribution and the crowd's noise level.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .workload import student_workload

__all__ = ["predict_pair_workload", "predict_infimum_cost"]


def predict_pair_workload(
    gap: float,
    sigma: float,
    alpha: float,
    min_workload: int = 30,
    budget: int | None = 1000,
) -> float:
    """Expected microtasks to separate a pair with score gap ``gap``.

    The Student fixed point, clamped below by the cold start ``I`` and
    above by the per-pair budget ``B`` (a pair costlier than ``B`` ties at
    exactly ``B``).  A zero gap is a guaranteed tie: it costs ``B``.
    """
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    if min_workload < 2:
        raise ValueError(f"min_workload must be >= 2, got {min_workload}")
    cap = float(budget) if budget is not None else float("inf")
    if gap <= 0:
        return cap
    raw = student_workload(gap, sigma, alpha)
    return float(min(max(raw, float(min_workload)), cap))


def predict_infimum_cost(
    scores: Sequence[float],
    k: int,
    sigma: float,
    alpha: float,
    min_workload: int = 30,
    budget: int | None = 1000,
) -> float:
    """Closed-form ``TMC_inf`` (Lemma 1) from hidden scores and noise.

    ``scores`` are the items' hidden scores in any order; ``sigma`` is the
    standard deviation of a single preference judgment.  The prediction
    sums the k−1 adjacent confirmations and the N−k prunes against the
    k-th item.
    """
    values = np.sort(np.asarray(scores, dtype=np.float64))[::-1]
    n = len(values)
    if not 1 <= k <= n:
        raise ValueError(f"k must be in [1, {n}], got {k}")
    total = 0.0
    for j in range(k - 1):
        total += predict_pair_workload(
            float(values[j] - values[j + 1]), sigma, alpha, min_workload, budget
        )
    boundary = float(values[k - 1])
    for j in range(k, n):
        total += predict_pair_workload(
            boundary - float(values[j]), sigma, alpha, min_workload, budget
        )
    return total
