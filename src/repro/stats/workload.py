"""Closed-form expected-workload predictors (Appendix D).

How many microtasks will a comparison take?  For planning (and for the
Figure-15 analysis) the paper derives closed forms for both judgment
models, given the preference mean ``μ`` and spread ``σ`` of a pair:

* preference + Student's t: the fixed point of
  ``n = (t_{α/2, n-1} · σ / μ)²``;
* binary + Hoeffding (Equation (3)): ``n_b = (2/μ̃²)·ln(2/α)`` with the
  shifted binary mean ``μ̃ = 2Φ(μ/σ) − 1``.

These are *expected-scale* predictions (they replace sample moments with
their true values and ignore the cold-start floor), useful for intuition,
budget planning, and the ``n_b − n > 0`` dominance analysis.
"""

from __future__ import annotations

import math

from scipy.special import ndtr

from .tdist import t_quantile

__all__ = ["student_workload", "binary_workload", "workload_ratio"]

#: Degrees of freedom beyond which the t quantile is indistinguishable
#: from the normal quantile — caps the quantile-table growth when a tiny
#: gap implies an astronomically large fixed point.
_DF_CAP = 10_000


def student_workload(mu: float, sigma: float, alpha: float) -> float:
    """Expected samples for the t interval to exclude 0 (fixed point).

    Iterates ``n ← (t_{α/2, n-1}·σ/μ)²`` from the normal-quantile start;
    converges in a handful of steps for every (μ, σ) because the t
    quantile varies slowly in ``n``.  Clamped below at 2 (a variance needs
    two samples); degrees of freedom above 10,000 use the asymptotic
    (normal) quantile.
    """
    if mu <= 0 or sigma <= 0:
        raise ValueError("mu and sigma must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    ratio = sigma / mu
    if ratio > 1e150:  # squaring would overflow: the pair is hopeless
        return float("inf")
    n = max((2.0 * ratio) ** 2, 2.0)
    for _ in range(100):
        df = min(max(int(math.ceil(n)) - 1, 1), _DF_CAP)
        updated = max((t_quantile(alpha, df) * ratio) ** 2, 2.0)
        if abs(updated - n) < 1e-9:
            return updated
        n = updated
    return n


def binary_workload(mu: float, sigma: float, alpha: float) -> float:
    """Equation (3): expected binary samples until Hoeffding separates 0."""
    if mu <= 0 or sigma <= 0:
        raise ValueError("mu and sigma must be positive")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    shifted = 2.0 * float(ndtr(mu / sigma)) - 1.0
    return (2.0 / shifted**2) * math.log(2.0 / alpha)


def workload_ratio(mu: float, sigma: float, alpha: float) -> float:
    """``n_b / n`` — how many times more the binary model costs.

    Appendix D's headline: this ratio exceeds 1 for every (μ, σ); it
    approaches ``π·ln(2/α) / t²_{α/2,∞}`` in the small-gap limit.
    """
    return binary_workload(mu, sigma, alpha) / student_workload(mu, sigma, alpha)
