"""Cached Student-t quantiles.

Sequential testers consult ``t_{α/2, n-1}`` after *every* sample, so the
quantile function is on the hottest path of the whole library.  scipy's
``t.ppf`` costs microseconds per call; we precompute vectors of quantiles per
``α`` and grow them geometrically, making the common lookup an array index.
"""

from __future__ import annotations

import threading

import numpy as np
from scipy import stats as _sps

__all__ = ["t_quantile", "t_quantiles"]

# One cached quantile vector per alpha; guarded for thread safety because
# experiment runners may fan out across threads.
_CACHE: dict[float, np.ndarray] = {}
_LOCK = threading.Lock()
_INITIAL_SIZE = 4096


def _table_for(alpha: float, min_df: int) -> np.ndarray:
    """Return the cached quantile vector for ``alpha`` covering ``min_df``.

    Index ``df`` of the vector holds ``t_{α/2, df}`` (two-sided quantile,
    i.e. the ``1 - α/2`` point of the t distribution with ``df`` degrees of
    freedom).  Index 0 is NaN — a variance needs at least 2 samples.
    """
    key = float(alpha)
    table = _CACHE.get(key)
    if table is not None and len(table) > min_df:
        return table
    with _LOCK:
        table = _CACHE.get(key)
        if table is None or len(table) <= min_df:
            size = max(_INITIAL_SIZE, 2 * (min_df + 1))
            dfs = np.arange(1, size, dtype=np.float64)
            values = _sps.t.ppf(1.0 - key / 2.0, dfs)
            table = np.concatenate(([np.nan], values))
            _CACHE[key] = table
    return table


def t_quantile(alpha: float, df: int) -> float:
    """Two-sided Student-t quantile ``t_{α/2, df}``.

    This is the positive value such that a t-distributed variable with
    ``df`` degrees of freedom exceeds it with probability ``α/2``.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return float(_table_for(alpha, df)[df])


def t_quantiles(alpha: float, max_df: int) -> np.ndarray:
    """Vector of ``t_{α/2, df}`` for ``df = 0 .. max_df`` (index 0 is NaN).

    The returned array is a read-only view of the shared cache; callers
    index it with a degrees-of-freedom array for vectorized stopping rules.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if max_df < 1:
        raise ValueError(f"max_df must be >= 1, got {max_df}")
    table = _table_for(alpha, max_df)
    view = table[: max_df + 1]
    view.flags.writeable = False
    return view
