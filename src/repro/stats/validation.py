"""Empirical validation of the confidence guarantee.

The entire framework rests on one promise: a decided comparison is wrong
with probability at most ``α``.  This module measures that promise by
Monte Carlo — run a tester over many independent sample streams with a
known true mean and tally verdicts, errors and stopping times.

Two caveats the docstrings of the calibration report surface:

* Sequential tests with repeated looks inflate the nominal error rate
  slightly (the classic optional-stopping effect); the paper relies on
  the same fixed-level-per-look reading, so the reproduction measures
  what the paper's procedure actually delivers, not textbook guarantees.
* A budget turns would-be errors into ties, so error rates are reported
  over *decided* runs, exactly like the paper's Table-3 accuracies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ComparisonConfig
from ..rng import make_rng

# NOTE: repro.core.estimators is imported lazily inside calibrate_tester —
# the estimator modules consult repro.stats.tdist at import time, so a
# module-level import here would close a circular chain through this
# package's __init__.

__all__ = ["CalibrationReport", "calibrate_tester"]


@dataclass(frozen=True)
class CalibrationReport:
    """Monte-Carlo summary of a tester on a known-mean sample stream.

    Attributes
    ----------
    trials:
        Independent streams simulated.
    decided:
        Streams that reached a verdict within the budget.
    errors:
        Verdicts contradicting the true mean's sign.
    workload_mean / workload_p50 / workload_p90:
        Stopping-time statistics over decided streams.
    """

    true_mean: float
    sigma: float
    alpha: float
    trials: int
    decided: int
    errors: int
    workload_mean: float
    workload_p50: float
    workload_p90: float

    @property
    def decision_rate(self) -> float:
        return self.decided / self.trials if self.trials else 0.0

    @property
    def error_rate(self) -> float:
        """Errors over decided runs (Table 3's accuracy complement).

        Descriptive only: for near-zero true means almost every verdict is
        a coin flip, so this ratio approaches 0.5 no matter how good the
        tester — the guarantee bounds :attr:`wrong_verdict_rate` instead.
        """
        return self.errors / self.decided if self.decided else 0.0

    @property
    def wrong_verdict_rate(self) -> float:
        """Errors over *all* runs — the quantity the ``α`` budget bounds.

        A wrong verdict requires the confidence interval to exclude the
        true mean (on the wrong side of 0), an ``α``-level event per run
        regardless of how small the mean is; runs ending in ties spend no
        error budget.
        """
        return self.errors / self.trials if self.trials else 0.0

    @property
    def within_guarantee(self) -> bool:
        """Whether the measured wrong-verdict rate respects the nominal ``α``.

        Allows the optional-stopping inflation plus binomial noise: the
        bound checked is ``α · 1.5 + 3σ_binomial``.
        """
        if self.trials == 0:
            return True
        slack = 3.0 * np.sqrt(self.alpha * (1 - self.alpha) / self.trials)
        return self.wrong_verdict_rate <= 1.5 * self.alpha + slack


def calibrate_tester(
    config: ComparisonConfig,
    true_mean: float,
    sigma: float,
    trials: int = 500,
    seed: int | np.random.Generator = 0,
    value_range: float | None = None,
    binary: bool = False,
) -> CalibrationReport:
    """Measure a tester's error rate and workload on Gaussian streams.

    ``binary=True`` thresholds the Gaussian draws to ±1 first (the
    pairwise binary judgment model); pass ``value_range=2`` alongside when
    calibrating the Hoeffding tester that way.
    """
    if true_mean == 0.0:
        raise ValueError("calibration needs a non-null true mean")
    if sigma <= 0:
        raise ValueError(f"sigma must be > 0, got {sigma}")
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    from ..core.estimators import make_tester

    rng = make_rng(seed)
    budget = config.effective_budget
    truth = 1 if true_mean > 0 else -1

    decided = errors = 0
    workloads: list[int] = []
    for _ in range(trials):
        values = rng.normal(true_mean, sigma, size=budget)
        if binary:
            signs = np.sign(values)
            redo = signs == 0
            while redo.any():
                signs[redo] = np.sign(rng.normal(true_mean, sigma, int(redo.sum())))
                redo = signs == 0
            values = signs
        tester = make_tester(config, value_range)
        consumed, decision = tester.scan(values)
        if decision is None:
            continue
        decided += 1
        workloads.append(consumed)
        if decision != truth:
            errors += 1

    loads = np.asarray(workloads, dtype=np.float64)
    return CalibrationReport(
        true_mean=true_mean,
        sigma=sigma,
        alpha=config.alpha,
        trials=trials,
        decided=decided,
        errors=errors,
        workload_mean=float(loads.mean()) if loads.size else float("nan"),
        workload_p50=float(np.percentile(loads, 50)) if loads.size else float("nan"),
        workload_p90=float(np.percentile(loads, 90)) if loads.size else float("nan"),
    )
