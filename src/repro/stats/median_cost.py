"""Comparison-cost bounds for median selection (Appendix C, Table 10).

Reference selection ends by picking the median of ``m`` sample maxima.  The
paper bounds the comparisons this takes for several sorting algorithms; the
bubble-sort bound feeds the constraint of optimization problem (2).
"""

from __future__ import annotations

import math

__all__ = [
    "bubble_median_comparisons",
    "median_cost_upper_bound",
    "MEDIAN_COST_BOUNDS",
]


def bubble_median_comparisons(m: int) -> int:
    """Exact comparisons of the partial bubble sort of Appendix C.

    The pass structure sinks one extremum per pass; after ``⌈m/2⌉`` passes
    the median is in place, costing ``Σ_{i=1}^{⌈m/2⌉} (m - i)`` comparisons.
    This exact count is below the paper's closed-form bound
    ``(3m² + m - 2) / 8``.
    """
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    passes = (m + 1) // 2
    return passes * m - passes * (passes + 1) // 2


def _bubble_bound(m: float) -> float:
    return (3.0 * m * m + m - 2.0) / 8.0


def _selection_bound(m: float) -> float:
    return (3.0 * m * m + m - 2.0) / 8.0


def _merge_bound(m: float) -> float:
    return 3.0 * m * math.log2(m) if m > 1 else 0.0


def _heap_bound(m: float) -> float:
    return m + 2.0 * m * math.log2(m / 2.0) if m > 1 else 0.0


def _quick_bound(m: float) -> float:
    return m * (m - 1.0) / 2.0


#: Closed-form upper bounds of Table 10, keyed by algorithm name.
MEDIAN_COST_BOUNDS = {
    "bubble": _bubble_bound,
    "selection": _selection_bound,
    "merge": _merge_bound,
    "heap": _heap_bound,
    "quick": _quick_bound,
}


def median_cost_upper_bound(algorithm: str, m: int) -> float:
    """Evaluate the Table-10 upper bound for ``algorithm`` on ``m`` numbers."""
    if m < 1:
        raise ValueError(f"m must be >= 1, got {m}")
    try:
        bound = MEDIAN_COST_BOUNDS[algorithm]
    except KeyError:
        known = ", ".join(sorted(MEDIAN_COST_BOUNDS))
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}") from None
    return bound(float(m))
