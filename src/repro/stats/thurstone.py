"""Thurstone win probabilities (§5.3).

Given the sample bags of two candidates against a shared reference ``r``,
the probability that candidate ``i`` truly beats candidate ``j`` is
approximated by Case-V Thurstone calculation

``Pr{μ_{i,r} > μ_{j,r}} ≈ Φ((μ̂_{i,r} − μ̂_{j,r}) / sqrt(σ̂²_{i,r} + σ̂²_{j,r}))``

which reference-based sorting uses to seed a near-sorted initial order.
"""

from __future__ import annotations

import math

from scipy.special import ndtr

__all__ = ["win_probability"]


def win_probability(
    mean_i: float, var_i: float, mean_j: float, var_j: float
) -> float:
    """Probability that the distribution behind ``i`` has the larger mean.

    Parameters are the sample means and sample *variances of the means*
    (i.e. ``S²/n``) of the two bags.  Degenerate (zero-variance) inputs
    resolve deterministically by mean comparison, with 0.5 on exact ties.
    """
    if var_i < 0 or var_j < 0:
        raise ValueError("variances must be non-negative")
    spread = math.sqrt(var_i + var_j)
    diff = mean_i - mean_j
    if spread == 0.0:
        if diff > 0:
            return 1.0
        if diff < 0:
            return 0.0
        return 0.5
    return float(ndtr(diff / spread))
