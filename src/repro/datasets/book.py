"""Synthetic Book-Crossing-shaped dataset.

The paper filters Book-Crossing to the 537 books with ≥ 50 votes on the
0–10 scale and simulates judgments from the per-book rating histograms
exactly like IMDb; Ω is the order of histogram means.  Compared to IMDb,
the vote pools are three to four orders of magnitude smaller, so the
empirical histograms are visibly noisy — that noise is the dataset's
signature and the reason its cost profile differs slightly from IMDb's.
"""

from __future__ import annotations

import numpy as np

from ..core.items import ItemSet
from ..crowd.oracle import HistogramOracle
from ..rng import make_rng
from .base import Dataset
from .imdb import _discretized_normal_pmf

__all__ = ["make_book"]

_SUPPORT = np.arange(0.0, 11.0)  # Book-Crossing's 0..10 scale


def make_book(
    seed: int | np.random.Generator = 0,
    n_items: int = 537,
    min_votes: int = 50,
    max_votes: int = 2_000,
) -> Dataset:
    """Build the synthetic Book dataset (deterministic given ``seed``)."""
    if n_items < 2:
        raise ValueError(f"need at least 2 books, got {n_items}")
    if not 1 <= min_votes <= max_votes:
        raise ValueError("vote bounds must satisfy 1 <= min_votes <= max_votes")
    rng = make_rng(seed)

    quality = np.clip(rng.normal(7.5, 1.0, size=n_items), 0.5, 10.0)
    dispersion = rng.uniform(1.0, 2.5, size=n_items)
    votes = np.exp(
        rng.uniform(np.log(min_votes), np.log(max_votes), size=n_items)
    ).astype(np.int64)

    pmfs: dict[int, np.ndarray] = {}
    means = np.empty(n_items)
    for item in range(n_items):
        model_pmf = _discretized_normal_pmf(quality[item], dispersion[item], _SUPPORT)
        counts = rng.multinomial(votes[item], model_pmf)
        empirical = counts / counts.sum()
        pmfs[item] = empirical
        means[item] = empirical @ _SUPPORT

    items = ItemSet(
        ids=np.arange(n_items),
        scores=means,
        labels=tuple(f"book {i:03d}" for i in range(n_items)),
    )
    oracle = HistogramOracle(_SUPPORT, pmfs)
    return Dataset(
        name="book",
        items=items,
        oracle=oracle,
        description=(
            f"synthetic Book-Crossing: {n_items} books, small vote pools "
            f"({min_votes}-{max_votes}), ground truth = histogram means"
        ),
    )
