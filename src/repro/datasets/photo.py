"""Synthetic Photo-shaped dataset.

The paper's Photo dataset is a *judgment database*: for each pair of 200
campus photos, at least 10 worker preferences were collected on CrowdFlower
using an 8-point Likert scale; a simulated microtask samples one stored
record of the pair.  Two properties matter and are reproduced here:

* judgments live on a coarse, bounded 8-level support (±1/7, ±3/7, ±5/7,
  ±7/7), and
* each pair's pool is *small* (default 12 records), so repeated microtasks
  resample the same records — the empirical record mean, not the latent
  gap, is what a comparison converges to.
"""

from __future__ import annotations

import numpy as np

from ..core.items import ItemSet
from ..crowd.oracle import RecordDatabaseOracle
from ..rng import make_rng
from .base import Dataset

__all__ = ["make_photo", "LIKERT_LEVELS"]

#: The symmetric 8-point Likert support, scaled into [-1, 1].
LIKERT_LEVELS = np.array([-7, -5, -3, -1, 1, 3, 5, 7], dtype=np.float64) / 7.0


def _quantize_to_likert(raw: np.ndarray) -> np.ndarray:
    """Snap raw preference strengths to the nearest Likert level."""
    idx = np.abs(raw[:, None] - LIKERT_LEVELS[None, :]).argmin(axis=1)
    return LIKERT_LEVELS[idx]


def make_photo(
    seed: int | np.random.Generator = 0,
    n_items: int = 200,
    records_per_pair: int = 12,
    worker_noise: float = 0.8,
) -> Dataset:
    """Build the synthetic Photo dataset (deterministic given ``seed``).

    ``records_per_pair`` matches the paper's "at least 10 judgment records
    per pair" collection policy; ``worker_noise`` is the std of the raw
    perception noise before Likert quantization.
    """
    if n_items < 2:
        raise ValueError(f"need at least 2 photos, got {n_items}")
    if records_per_pair < 1:
        raise ValueError(f"records_per_pair must be >= 1, got {records_per_pair}")
    rng = make_rng(seed)

    appeal = rng.normal(0.0, 1.0, size=n_items)
    records: dict[tuple[int, int], np.ndarray] = {}
    for i in range(n_items):
        for j in range(i + 1, n_items):
            raw = (appeal[i] - appeal[j]) / 2.0 + rng.normal(
                0.0, worker_noise, size=records_per_pair
            )
            records[(i, j)] = _quantize_to_likert(np.clip(raw, -1.0, 1.0))

    items = ItemSet(
        ids=np.arange(n_items),
        scores=appeal,
        labels=tuple(f"campus photo {i:03d}" for i in range(n_items)),
    )
    oracle = RecordDatabaseOracle(records)
    return Dataset(
        name="photo",
        items=items,
        oracle=oracle,
        description=(
            f"synthetic Photo: {n_items} photos, {records_per_pair} 8-point "
            "Likert records per pair, microtasks resample stored records"
        ),
    )
