"""Synthetic PeopleAge-shaped dataset (Appendix F interactive experiment).

The original dataset is a gallery of 100 women, one per age from 1 to 100;
the query asks for the 10 *youngest*.  Workers compare perceived ages, and
age perception is well known to blur with age: telling a 5-year-old from a
15-year-old is trivial, telling 67 from 72 is not.  The oracle models a
worker's perceived age as

``perceived(a) = a + a·rel_noise·z₁ + abs_noise·z₂``

and answers the (scaled) difference of the two perceived ages, oriented so
positive favours the younger (better) item.
"""

from __future__ import annotations

import numpy as np

from ..core.items import ItemSet
from ..crowd.oracle import JudgmentOracle
from ..errors import OracleError
from ..rng import make_rng
from .base import Dataset

__all__ = ["make_peopleage", "AgePerceptionOracle"]


class AgePerceptionOracle(JudgmentOracle):
    """Pairwise age comparisons with age-proportional perception noise."""

    def __init__(
        self,
        ages: np.ndarray,
        rel_noise: float = 0.15,
        abs_noise: float = 2.0,
        scale: float = 10.0,
    ) -> None:
        ages = np.asarray(ages, dtype=np.float64)
        if ages.ndim != 1 or len(ages) < 2:
            raise OracleError("ages must be a 1-D array with >= 2 entries")
        if np.any(ages <= 0):
            raise OracleError("ages must be positive")
        if rel_noise < 0 or abs_noise < 0:
            raise OracleError("noise levels must be non-negative")
        if scale <= 0:
            raise OracleError("scale must be positive")
        self._ages = ages
        self._rel = rel_noise
        self._abs = abs_noise
        self._scale = scale
        self.bounds = None  # Gaussian tails: unbounded support

    def _age(self, item: int) -> float:
        item = int(item)
        if not 0 <= item < len(self._ages):
            raise OracleError(f"unknown item {item}")
        return float(self._ages[item])

    def _perceive(self, ages: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        shape = ages.shape
        return (
            ages
            + ages * self._rel * rng.standard_normal(shape)
            + self._abs * rng.standard_normal(shape)
        )

    def draw(self, i: int, j: int, size: int, rng: np.random.Generator) -> np.ndarray:
        ai = np.full(size, self._age(i))
        aj = np.full(size, self._age(j))
        # Positive preference = the left item looks younger.
        return (self._perceive(aj, rng) - self._perceive(ai, rng)) / self._scale

    def draw_pairs(
        self,
        left: np.ndarray,
        right: np.ndarray,
        size: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        ages_left = self._ages[np.asarray(left, dtype=np.intp)]
        ages_right = self._ages[np.asarray(right, dtype=np.intp)]
        ai = np.broadcast_to(ages_left[:, None], (len(ages_left), size)).copy()
        aj = np.broadcast_to(ages_right[:, None], (len(ages_right), size)).copy()
        return (self._perceive(aj, rng) - self._perceive(ai, rng)) / self._scale


def make_peopleage(
    seed: int | np.random.Generator = 0,
    n_items: int = 100,
    rel_noise: float = 0.15,
    abs_noise: float = 2.0,
) -> Dataset:
    """Build the synthetic PeopleAge dataset (one person per age, 1..n)."""
    if n_items < 2:
        raise ValueError(f"need at least 2 people, got {n_items}")
    rng = make_rng(seed)
    ages = np.arange(1, n_items + 1, dtype=np.float64)
    rng.shuffle(ages)  # item ids carry no age information

    items = ItemSet(
        ids=np.arange(n_items),
        scores=-ages,  # "top" = youngest
        labels=tuple(f"person aged {int(a)}" for a in ages),
    )
    oracle = AgePerceptionOracle(ages, rel_noise=rel_noise, abs_noise=abs_noise)
    return Dataset(
        name="peopleage",
        items=items,
        oracle=oracle,
        description=(
            f"synthetic PeopleAge: {n_items} people aged 1..{n_items}, "
            "query = youngest; perception noise grows with age"
        ),
    )
