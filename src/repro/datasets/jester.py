"""Synthetic Jester-shaped dataset.

Jester holds continuous −10..10 ratings from users who rated *all* 100
jokes.  The paper simulates a judgment for a joke pair by picking one
random user and answering the difference of her two ratings; Ω is the
order of per-joke mean ratings.

The generator builds a dense user × joke table from the classic
bias/scale/quality decomposition: user ``u`` rates joke ``i`` as
``clip(b_u + a_u·q_i + ε, −10, 10)``.  Within-user differencing cancels
``b_u`` — the property that makes Jester judgments comparatively cheap —
which the table reproduces by construction.
"""

from __future__ import annotations

import numpy as np

from ..core.items import ItemSet
from ..crowd.oracle import UserTableOracle
from ..rng import make_rng
from .base import Dataset

__all__ = ["make_jester"]


def make_jester(
    seed: int | np.random.Generator = 0,
    n_items: int = 100,
    n_users: int = 5_000,
) -> Dataset:
    """Build the synthetic Jester dataset (deterministic given ``seed``)."""
    if n_items < 2:
        raise ValueError(f"need at least 2 jokes, got {n_items}")
    if n_users < 1:
        raise ValueError(f"need at least 1 user, got {n_users}")
    rng = make_rng(seed)

    joke_quality = rng.normal(0.0, 2.0, size=n_items)
    user_bias = rng.normal(0.0, 2.0, size=n_users)
    user_scale = rng.uniform(0.5, 1.5, size=n_users)
    noise = rng.normal(0.0, 2.5, size=(n_users, n_items))
    ratings = np.clip(
        user_bias[:, None] + user_scale[:, None] * joke_quality[None, :] + noise,
        -10.0,
        10.0,
    )

    items = ItemSet(
        ids=np.arange(n_items),
        scores=ratings.mean(axis=0),
        labels=tuple(f"joke {i:03d}" for i in range(n_items)),
    )
    oracle = UserTableOracle(ratings, items.ids)
    return Dataset(
        name="jester",
        items=items,
        oracle=oracle,
        description=(
            f"synthetic Jester: {n_users} users x {n_items} jokes, "
            "judgments are within-user rating differences"
        ),
    )
