"""A controllable latent-score dataset for experiments and demos.

Not one of the paper's four evaluation datasets — this is the knob-rich
universe used for controlled studies: choose the score distribution, the
worker noise, and optionally a careless-worker contamination rate, and you
get a dataset whose comparison difficulties you fully understand.
"""

from __future__ import annotations

import numpy as np

from ..core.items import ItemSet
from ..crowd.oracle import LatentScoreOracle
from ..crowd.workers import CarelessWorkerNoise, GaussianNoise
from ..rng import make_rng
from .base import Dataset

__all__ = ["make_synthetic"]


def make_synthetic(
    seed: int | np.random.Generator = 0,
    n_items: int = 200,
    score_spread: float = 3.0,
    noise: float = 1.0,
    careless_rate: float = 0.0,
    distribution: str = "normal",
) -> Dataset:
    """Build a latent-score dataset with Gaussian worker noise.

    Parameters
    ----------
    n_items:
        Universe size.
    score_spread:
        Standard deviation (or half-range for ``"uniform"``) of the hidden
        scores; larger spread = easier comparisons overall.
    noise:
        Worker-noise standard deviation σ of a single judgment.
    careless_rate:
        Fraction of judgments replaced by pure uniform noise (0 = honest
        crowd).
    distribution:
        ``"normal"`` or ``"uniform"`` hidden-score law.  Uniform scores
        make adjacent gaps i.i.d. — handy for studying the
        workload-vs-distance relationship in isolation.
    """
    if n_items < 2:
        raise ValueError(f"need at least 2 items, got {n_items}")
    if score_spread <= 0:
        raise ValueError(f"score_spread must be > 0, got {score_spread}")
    if noise < 0:
        raise ValueError(f"noise must be >= 0, got {noise}")
    if not 0.0 <= careless_rate <= 1.0:
        raise ValueError(f"careless_rate must be in [0, 1], got {careless_rate}")
    rng = make_rng(seed)

    if distribution == "normal":
        scores = rng.normal(0.0, score_spread, size=n_items)
    elif distribution == "uniform":
        scores = rng.uniform(-score_spread, score_spread, size=n_items)
    else:
        raise ValueError(f"unknown distribution {distribution!r}")

    if careless_rate > 0:
        worker = CarelessWorkerNoise(
            sigma=noise, careless_rate=careless_rate, spread=4.0 * score_spread
        )
    else:
        worker = GaussianNoise(noise)

    items = ItemSet(
        ids=np.arange(n_items),
        scores=scores,
        labels=tuple(f"synthetic item {i:04d}" for i in range(n_items)),
    )
    return Dataset(
        name="synthetic",
        items=items,
        oracle=LatentScoreOracle(scores, worker),
        description=(
            f"synthetic latent-score universe: {n_items} items, "
            f"{distribution} scores (spread {score_spread}), worker noise "
            f"{noise}, careless rate {careless_rate}"
        ),
    )
