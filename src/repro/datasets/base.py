"""The dataset abstraction: items + ground truth + a crowd to ask."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import ComparisonConfig
from ..core.items import ItemSet
from ..crowd.oracle import JudgmentOracle
from ..crowd.session import CrowdSession

__all__ = ["Dataset"]


@dataclass(frozen=True)
class Dataset:
    """A named item collection with a judgment oracle over it.

    Attributes
    ----------
    name:
        Short dataset identifier (``"imdb"``, ``"book"``, …).
    items:
        The full item collection with ground-truth scores defining Ω.
    oracle:
        The simulated crowd answering pairwise (and possibly graded)
        microtasks about the items.
    description:
        One-line provenance note.
    """

    name: str
    items: ItemSet
    oracle: JudgmentOracle
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a dataset needs a non-empty name")

    def __len__(self) -> int:
        return len(self.items)

    def session(
        self,
        config: ComparisonConfig | None = None,
        seed: int | None | np.random.Generator = None,
        max_total_cost: int | None = None,
    ) -> CrowdSession:
        """Open a fresh crowd session over this dataset's oracle."""
        return CrowdSession(
            self.oracle, config=config, seed=seed, max_total_cost=max_total_cost
        )

    def sample_items(
        self, n: int | None, rng: np.random.Generator | None = None
    ) -> ItemSet:
        """A random ``n``-item working set (``None`` = all items).

        The cardinality sweeps of Figure 9 run queries over random subsets;
        the subset inherits the global ground truth restricted to it.
        """
        if n is None or n >= len(self.items):
            return self.items
        return self.items.subset(n, rng)
