"""Synthetic IMDb-shaped dataset.

The paper's IMDb slice holds the 1,225 movies with ≥ 100,000 votes, each
carrying a vote histogram over the 1–10 rating scale.  A pairwise judgment
is simulated by sampling one rating from each movie's histogram and
answering the difference; the ground-truth order Ω comes from the IMDb
weighted-rank formula

``WR = n/(n+K) · μ + K/(n+K) · C``     (K = 25,000, C = 6.9)

with ``μ`` the mean vote and ``n`` the vote count.

This generator rebuilds that structure from a latent model: every movie
gets a latent quality (popular, heavily-voted movies concentrate around
7 ± 0.8 on the 10-point scale) and a per-movie taste dispersion; its public
histogram is the *empirical* distribution of ``n`` multinomial votes, so
small residual sampling jitter survives into the oracle exactly as it does
in the real vote tables.
"""

from __future__ import annotations

import numpy as np

from ..core.items import ItemSet
from ..crowd.oracle import HistogramOracle
from ..rng import make_rng
from .base import Dataset

__all__ = ["make_imdb", "IMDB_K", "IMDB_C"]

#: Constants of the IMDb weighted-rank formula, as stated in §6.1.
IMDB_K = 25_000.0
IMDB_C = 6.9

_SUPPORT = np.arange(1.0, 11.0)  # the 1..10 star scale


def _discretized_normal_pmf(mean: float, std: float, support: np.ndarray) -> np.ndarray:
    """PMF over ``support`` from binning a normal — the taste model."""
    edges = np.concatenate(([-np.inf], (support[:-1] + support[1:]) / 2.0, [np.inf]))
    from scipy.stats import norm

    cdf = norm.cdf(edges, loc=mean, scale=std)
    pmf = np.diff(cdf)
    return pmf / pmf.sum()


def make_imdb(
    seed: int | np.random.Generator = 0,
    n_items: int = 1225,
    min_votes: int = 100_000,
    max_votes: int = 2_000_000,
) -> Dataset:
    """Build the synthetic IMDb dataset.

    Parameters mirror the paper's filtering criterion (≥ 100k votes per
    movie).  The generator is deterministic given ``seed``.
    """
    if n_items < 2:
        raise ValueError(f"need at least 2 movies, got {n_items}")
    if not 1 <= min_votes <= max_votes:
        raise ValueError("vote bounds must satisfy 1 <= min_votes <= max_votes")
    rng = make_rng(seed)

    quality = np.clip(rng.normal(7.0, 0.8, size=n_items), 1.5, 9.7)
    dispersion = rng.uniform(1.2, 2.2, size=n_items)
    votes = np.exp(
        rng.uniform(np.log(min_votes), np.log(max_votes), size=n_items)
    ).astype(np.int64)

    pmfs: dict[int, np.ndarray] = {}
    means = np.empty(n_items)
    for item in range(n_items):
        model_pmf = _discretized_normal_pmf(quality[item], dispersion[item], _SUPPORT)
        counts = rng.multinomial(votes[item], model_pmf)
        empirical = counts / counts.sum()
        pmfs[item] = empirical
        means[item] = empirical @ _SUPPORT

    weight = votes / (votes + IMDB_K)
    weighted_rank = weight * means + (1.0 - weight) * IMDB_C

    items = ItemSet(
        ids=np.arange(n_items),
        scores=weighted_rank,
        labels=tuple(f"movie {i:04d}" for i in range(n_items)),
    )
    oracle = HistogramOracle(_SUPPORT, pmfs)
    return Dataset(
        name="imdb",
        items=items,
        oracle=oracle,
        description=(
            f"synthetic IMDb: {n_items} movies, vote histograms on 1..10, "
            f"ground truth = weighted rank (K={IMDB_K:.0f}, C={IMDB_C})"
        ),
    )
