"""Name-based dataset loading with a per-name cache.

Experiments reference datasets by name (``"imdb"``, ``"book"``, …).
Generating IMDb's 1,225 vote histograms or Photo's ~20k record pools takes
a moment, so identical (name, seed, kwargs) requests are served from a
process-level cache; datasets are immutable, sharing is safe.
"""

from __future__ import annotations

import threading
from collections.abc import Callable

from ..errors import DatasetError
from .base import Dataset
from .book import make_book
from .imdb import make_imdb
from .jester import make_jester
from .peopleage import make_peopleage
from .photo import make_photo
from .synthetic import make_synthetic

__all__ = ["DATASET_NAMES", "load_dataset", "clear_dataset_cache"]

_FACTORIES: dict[str, Callable[..., Dataset]] = {
    "imdb": make_imdb,
    "book": make_book,
    "jester": make_jester,
    "photo": make_photo,
    "peopleage": make_peopleage,
    "synthetic": make_synthetic,
}

#: All dataset names known to the registry.
DATASET_NAMES = tuple(sorted(_FACTORIES))

_CACHE: dict[tuple, Dataset] = {}
_LOCK = threading.Lock()


def load_dataset(name: str, seed: int = 0, **kwargs: object) -> Dataset:
    """Build (or fetch from cache) the named dataset.

    ``kwargs`` are forwarded to the generator; only hashable overrides are
    cacheable, which all generator parameters are.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(DATASET_NAMES)
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None
    key = (name, seed, tuple(sorted(kwargs.items())))
    with _LOCK:
        dataset = _CACHE.get(key)
        if dataset is None:
            dataset = factory(seed=seed, **kwargs)
            _CACHE[key] = dataset
    return dataset


def clear_dataset_cache() -> None:
    """Drop all cached datasets (mostly for tests)."""
    with _LOCK:
        _CACHE.clear()
