"""Synthetic stand-ins for the paper's evaluation datasets.

Each generator reproduces the *shape* of one of the §6.1 datasets — item
count, rating support, vote-pool sizes, and the exact judgment-simulation
rule the paper applies to it.  See DESIGN.md §3 for the substitution
rationale.
"""

from .base import Dataset
from .book import make_book
from .imdb import make_imdb
from .jester import make_jester
from .peopleage import make_peopleage
from .photo import make_photo
from .registry import DATASET_NAMES, load_dataset
from .synthetic import make_synthetic

__all__ = [
    "Dataset",
    "DATASET_NAMES",
    "load_dataset",
    "make_book",
    "make_imdb",
    "make_jester",
    "make_peopleage",
    "make_photo",
    "make_synthetic",
]
