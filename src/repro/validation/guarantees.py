"""Empirical guarantee checking — measured error vs. the declared ``α``.

The stopping rules of §4 promise that every *decided* verdict is wrong
with probability at most ``α``, and §5.4 turns that into a lower bound of
``(1 − α) / c`` on SPR's expected precision.  This module measures both
claims the way the PAC-ranking literature evaluates correctness: many
seeded replications, an empirical failure rate, and a Wilson score
interval around it.  A check **passes** when the interval's upper bound
stays at or below the declared maximum failure rate — a much stronger
statement than "the point estimate looked fine".

Five checks ship by default:

``comparison``
    One COMP verdict per replication on a two-item instance with a
    randomized latent gap; a failure is a decided verdict whose winner
    contradicts the gap's sign.  Budget ties are excluded from the error
    count but kept in the trial count (the tester returned no verdict, so
    it cannot have returned a *wrong* one), which only makes the check
    stricter.
``partition``
    Algorithm 4 against the true rank-(k+1) item as reference; every
    decided winner/loser assignment is a Bernoulli trial and a failure is
    an assignment contradicting the latent order.
``spr_recall``
    Full SPR queries; each of the ``k`` result slots is a trial and a
    failure is a slot not occupied by a true top-k item.  The guarantee
    line is the §5.4 bound: the miss rate may not exceed
    ``1 − (1 − α)/c``.
``bdp_recall``
    Full BDP queries (:mod:`repro.algorithms.bdp`) on gap instances
    whose top-k/rest boundary is separated by at least ``2σ``; each of
    the ``k`` result slots is a trial and a failure is a missed slot.
    With the verdict-backed boundary refinement a miss requires an
    actually-wrong ``1 − α`` comparison verdict, so the guarantee line
    is ``α``.
``pac_comparison``
    One verdict from the anytime :class:`~repro.core.estimators.PACTester`
    (ε = 0.25, δ = α) on a randomized two-item instance; a failure is a
    decided verdict contradicting a latent gap larger than ε.  Gaps
    within the ε-tolerance are free — any decision is PAC-admissible —
    and budget ties are excluded from the error count as above.

Replications fan out over a process pool exactly like
:mod:`repro.experiments.parallel`: per-replication generators are
pre-spawned from the suite seed so results are **bit-for-bit identical**
for any ``--jobs``, and each worker runs under a private
:class:`~repro.telemetry.MetricsRegistry` that the parent merges back in
replication order.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from ..algorithms.bdp import bdp_topk
from ..config import ComparisonConfig, SPRConfig
from ..core.outcomes import Outcome
from ..core.stopping import ConfidenceStopping
from ..core.spr import expected_precision_lower_bound, partition, spr_topk
from ..core.topk import top_k_indices
from ..crowd.oracle import LatentScoreOracle
from ..crowd.session import CrowdSession
from ..crowd.workers import GaussianNoise
from ..errors import ConfigError
from ..experiments.parallel import _pool_context, resolve_jobs
from ..rng import make_rng, spawn_many
from ..telemetry import MetricsRegistry, get_registry, use_registry

__all__ = [
    "GuaranteeCheck",
    "GuaranteeReport",
    "run_guarantee_suite",
    "wilson_interval",
    "DEFAULT_ALPHAS",
    "DEFAULT_CHECKS",
    "DEFAULT_REPLICATIONS",
]

#: The α grid of the acceptance criterion.
DEFAULT_ALPHAS: tuple[float, ...] = (0.05, 0.1)
DEFAULT_CHECKS: tuple[str, ...] = (
    "comparison",
    "partition",
    "spr_recall",
    "bdp_recall",
    "pac_comparison",
)
DEFAULT_REPLICATIONS = 200

#: z for the two-sided 95% Wilson interval reported around failure rates.
_WILSON_Z = 1.959963984540054

# Scenario knobs, tuned so the checks finish in seconds yet leave real
# statistical headroom below α (see docs/testing.md for the calibration).
_COMP_GAP = (0.15, 1.0)  # |Δs| range; below 0.15 ties dominate the budget
_COMP_SIGMA = 1.0
_COMP_CONFIG = dict(budget=400, min_workload=10, batch_size=20)
_PARTITION_N, _PARTITION_K = 20, 4
_SCORE_SPREAD = 3.0
_SPR_N, _SPR_K, _SPR_C = 30, 5, 1.5
_PHASE_CONFIG = dict(budget=300, min_workload=10, batch_size=20)
_BDP_N, _BDP_K = 15, 3
_BDP_GAP = 2.0  # enforced top-k boundary separation, in latent-score units
_BDP_CONFIG = dict(budget=400, min_workload=10, batch_size=20)
_PAC_EPSILON = 0.25
_PAC_GAP_MAX = 0.6  # straddles ε so both regimes of the guarantee are hit
_PAC_CONFIG = dict(budget=1000, min_workload=10, batch_size=20)


def wilson_interval(
    failures: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion ``failures/trials``.

    Unlike the Wald interval it never collapses to a zero-width interval
    at 0 observed failures, which is exactly the regime guarantee checks
    live in.  ``confidence`` other than 0.95 falls back to
    :func:`scipy.stats.norm.ppf` for the critical value.
    """
    if trials <= 0:
        raise ConfigError(f"trials must be positive, got {trials}")
    if not 0 <= failures <= trials:
        raise ConfigError(f"failures must be in [0, {trials}], got {failures}")
    if confidence == 0.95:
        z = _WILSON_Z
    else:
        if not 0.0 < confidence < 1.0:
            raise ConfigError(f"confidence must be in (0, 1), got {confidence}")
        from scipy.stats import norm

        z = float(norm.ppf(0.5 + confidence / 2.0))
    p = failures / trials
    z2n = z * z / trials
    center = p + z2n / 2.0
    margin = z * math.sqrt(p * (1.0 - p) / trials + z2n / (4.0 * trials))
    denom = 1.0 + z2n
    return max(0.0, (center - margin) / denom), min(1.0, (center + margin) / denom)


@dataclass(frozen=True)
class GuaranteeCheck:
    """One (check × α) cell of the guarantee suite.

    ``trials`` counts Bernoulli opportunities to fail (verdicts,
    assignments, or result slots depending on the check), ``failures``
    the observed guarantee violations.  ``passed`` is
    ``wilson_high <= max_failure_rate``.
    """

    name: str
    alpha: float
    replications: int
    trials: int
    failures: int
    empirical_rate: float
    wilson_low: float
    wilson_high: float
    max_failure_rate: float
    passed: bool
    extras: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "alpha": self.alpha,
            "replications": self.replications,
            "trials": self.trials,
            "failures": self.failures,
            "empirical_rate": self.empirical_rate,
            "wilson_low": self.wilson_low,
            "wilson_high": self.wilson_high,
            "max_failure_rate": self.max_failure_rate,
            "passed": self.passed,
        }
        out.update(self.extras)
        return out


@dataclass(frozen=True)
class GuaranteeReport:
    """The full suite outcome: one :class:`GuaranteeCheck` per cell."""

    checks: tuple[GuaranteeCheck, ...]
    seed: int
    replications: int

    @property
    def passed(self) -> bool:
        return all(check.passed for check in self.checks)

    def to_dict(self) -> dict:
        return {
            "suite": "guarantees",
            "seed": self.seed,
            "replications": self.replications,
            "passed": self.passed,
            "checks": [check.to_dict() for check in self.checks],
        }

    def to_text(self) -> str:
        header = (
            f"{'check':<12} {'alpha':>6} {'trials':>7} {'fail':>5} "
            f"{'rate':>8} {'wilson95':>17} {'bound':>7}  verdict"
        )
        lines = [header, "-" * len(header)]
        for c in self.checks:
            interval = f"[{c.wilson_low:.4f}, {c.wilson_high:.4f}]"
            lines.append(
                f"{c.name:<12} {c.alpha:>6.3f} {c.trials:>7d} {c.failures:>5d} "
                f"{c.empirical_rate:>8.4f} {interval:>17} "
                f"{c.max_failure_rate:>7.4f}  {'PASS' if c.passed else 'FAIL'}"
            )
        lines.append(
            f"overall: {'PASS' if self.passed else 'FAIL'} "
            f"({self.replications} replications/check, seed={self.seed})"
        )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# per-replication scenarios (module level: pool workers must pickle them)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ReplicationTask:
    """One work unit: a check cell, its index, and its pre-spawned RNG."""

    check: str
    alpha: float
    index: int
    rng: np.random.Generator


@dataclass(frozen=True)
class _ReplicationOutcome:
    trials: int
    failures: int
    cost: int
    ties: int


def _comparison_replication(
    alpha: float, rng: np.random.Generator
) -> _ReplicationOutcome:
    """One COMP verdict on a randomized two-item instance."""
    gap = rng.uniform(*_COMP_GAP) * (1.0 if rng.random() < 0.5 else -1.0)
    oracle = LatentScoreOracle(np.array([gap, 0.0]), GaussianNoise(_COMP_SIGMA))
    config = ComparisonConfig(confidence=1.0 - alpha, **_COMP_CONFIG)
    session = CrowdSession(oracle, config, seed=rng)
    record = session.compare(0, 1)
    if record.outcome is Outcome.TIE:
        return _ReplicationOutcome(1, 0, session.total_cost, 1)
    correct = 0 if gap > 0 else 1
    return _ReplicationOutcome(
        1, int(record.winner != correct), session.total_cost, 0
    )


def _partition_replication(
    alpha: float, rng: np.random.Generator
) -> _ReplicationOutcome:
    """Algorithm 4 against the true rank-(k+1) reference.

    Per §5.2 each decided assignment is one COMP verdict against the
    reference, so decided assignments are the Bernoulli trials α bounds.
    Deferred (tie) items carry no verdict and are skipped; reference
    changes are disabled so the latent order of *this* reference is the
    ground truth for every pair.
    """
    scores = rng.normal(0.0, _SCORE_SPREAD, _PARTITION_N)
    reference = int(top_k_indices(scores, _PARTITION_K + 1)[-1])  # true rank k+1
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(confidence=1.0 - alpha, **_PHASE_CONFIG)
    session = CrowdSession(oracle, config, seed=rng)
    result = partition(
        session,
        list(range(_PARTITION_N)),
        _PARTITION_K,
        reference,
        max_reference_changes=0,
    )
    ref_score = scores[reference]
    trials = failures = 0
    for item in result.winners:
        if item == reference:
            continue
        trials += 1
        failures += int(scores[item] <= ref_score)
    for item in result.losers:
        if item == reference:
            continue
        trials += 1
        failures += int(scores[item] > ref_score)
    return _ReplicationOutcome(trials, failures, session.total_cost, len(result.ties))


def _spr_replication(alpha: float, rng: np.random.Generator) -> _ReplicationOutcome:
    """One full SPR query; each result slot is a recall trial."""
    scores = rng.normal(0.0, _SCORE_SPREAD, _SPR_N)
    true_topk = {int(i) for i in top_k_indices(scores, _SPR_K)}
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(confidence=1.0 - alpha, **_PHASE_CONFIG)
    session = CrowdSession(oracle, config, seed=rng)
    result = spr_topk(
        session, list(range(_SPR_N)), _SPR_K, SPRConfig(sweet_spot=_SPR_C)
    )
    hits = len(set(result.topk) & true_topk)
    return _ReplicationOutcome(_SPR_K, _SPR_K - hits, session.total_cost, 0)


def _bdp_replication(alpha: float, rng: np.random.Generator) -> _ReplicationOutcome:
    """One full BDP query on a gap instance; each result slot is a trial.

    The top-k/rest boundary is widened to at least ``_BDP_GAP`` latent
    units so a missed slot implies an actually-wrong comparison verdict
    (the refinement ranks the boundary by direct verdicts), putting the
    miss rate under the per-comparison ``α`` bound.
    """
    scores = rng.normal(0.0, _SCORE_SPREAD, _BDP_N)
    order = np.argsort(scores)[::-1]
    boundary_gap = scores[order[_BDP_K - 1]] - scores[order[_BDP_K]]
    if boundary_gap < _BDP_GAP:
        scores[order[:_BDP_K]] += _BDP_GAP - boundary_gap
    true_topk = {int(i) for i in order[:_BDP_K]}
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(confidence=1.0 - alpha, **_BDP_CONFIG)
    session = CrowdSession(oracle, config, seed=rng)
    result = bdp_topk(
        session,
        list(range(_BDP_N)),
        _BDP_K,
        stopping=ConfidenceStopping(alpha=alpha),
    )
    hits = len(set(result.topk) & true_topk)
    ties = int(result.extras["ties"])
    return _ReplicationOutcome(_BDP_K, _BDP_K - hits, session.total_cost, ties)


def _pac_comparison_replication(
    alpha: float, rng: np.random.Generator
) -> _ReplicationOutcome:
    """One PAC-tester verdict; a failure needs a gap beyond ε.

    The latent gap straddles ε so both regimes are exercised: within the
    tolerance every decision is admissible (trial counted, failure
    impossible); beyond it a wrong decided winner is a PAC violation,
    which the (ε, δ=α) guarantee bounds by α.
    """
    gap = rng.uniform(0.0, _PAC_GAP_MAX) * (1.0 if rng.random() < 0.5 else -1.0)
    oracle = LatentScoreOracle(np.array([gap, 0.0]), GaussianNoise(_COMP_SIGMA))
    config = ComparisonConfig(
        confidence=1.0 - alpha,
        estimator="pac",
        pac_epsilon=_PAC_EPSILON,
        **_PAC_CONFIG,
    )
    session = CrowdSession(oracle, config, seed=rng)
    record = session.compare(0, 1)
    if record.outcome is Outcome.TIE:
        return _ReplicationOutcome(1, 0, session.total_cost, 1)
    if abs(gap) <= _PAC_EPSILON:
        return _ReplicationOutcome(1, 0, session.total_cost, 0)
    correct = 0 if gap > 0 else 1
    return _ReplicationOutcome(
        1, int(record.winner != correct), session.total_cost, 0
    )


_SCENARIOS = {
    "comparison": _comparison_replication,
    "partition": _partition_replication,
    "spr_recall": _spr_replication,
    "bdp_recall": _bdp_replication,
    "pac_comparison": _pac_comparison_replication,
}


def _max_failure_rate(check: str, alpha: float) -> float:
    """The guarantee line a check's Wilson upper bound must stay under."""
    if check == "spr_recall":
        return 1.0 - expected_precision_lower_bound(alpha, _SPR_C)
    return alpha


def _run_replication(task: _ReplicationTask) -> tuple[_ReplicationOutcome, MetricsRegistry]:
    """Execute one replication under a private registry (pool worker)."""
    with use_registry(MetricsRegistry()) as registry:
        outcome = _SCENARIOS[task.check](task.alpha, task.rng)
    return outcome, registry


def _run_replication_serial(task: _ReplicationTask) -> _ReplicationOutcome:
    """Run one replication in-process under the ambient registry."""
    return _SCENARIOS[task.check](task.alpha, task.rng)


def _build_tasks(
    checks: tuple[str, ...],
    alphas: tuple[float, ...],
    replications: int,
    seed: int,
) -> list[_ReplicationTask]:
    """Expand the (check × α) grid with pre-spawned per-replication RNGs.

    Each cell spawns its own streams from the suite seed, so adding or
    reordering cells never perturbs another cell's draws — the same
    cell always reproduces bit for bit, serial or pooled.
    """
    tasks: list[_ReplicationTask] = []
    for check in checks:
        if check not in _SCENARIOS:
            raise ConfigError(
                f"unknown guarantee check {check!r}; "
                f"expected one of {sorted(_SCENARIOS)}"
            )
        for alpha in alphas:
            if not 0.0 < alpha < 1.0:
                raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
            root = make_rng(seed)
            rngs = spawn_many(root, replications)
            tasks.extend(
                _ReplicationTask(check, alpha, index, rngs[index])
                for index in range(replications)
            )
    return tasks


def run_guarantee_suite(
    alphas: tuple[float, ...] = DEFAULT_ALPHAS,
    replications: int = DEFAULT_REPLICATIONS,
    n_jobs: int | None = None,
    seed: int = 0,
    checks: tuple[str, ...] = DEFAULT_CHECKS,
) -> GuaranteeReport:
    """Run the empirical guarantee suite over the (check × α) grid.

    Results are independent of ``n_jobs`` (``None`` = ambient default,
    ``0`` = one worker per CPU).  Telemetry lands in the ambient registry:
    ``validation_replications_total{check=...}``,
    ``validation_guarantee_failures_total{check=...}``, one
    ``validation.guarantees`` span, and the merged per-replication crowd
    counters.
    """
    if replications < 1:
        raise ConfigError(f"replications must be >= 1, got {replications}")
    alphas = tuple(float(a) for a in alphas)
    checks = tuple(checks)
    tasks = _build_tasks(checks, alphas, replications, seed)
    jobs = resolve_jobs(n_jobs)
    telemetry = get_registry()

    with telemetry.span(
        "validation.guarantees",
        replications=replications,
        cells=len(checks) * len(alphas),
        jobs=jobs,
    ):
        if jobs == 1:
            outcomes = [_run_replication_serial(task) for task in tasks]
        else:
            workers = min(jobs, len(tasks))
            chunksize = max(1, len(tasks) // (workers * 4))
            with ProcessPoolExecutor(
                max_workers=workers, mp_context=_pool_context()
            ) as pool:
                results = list(pool.map(_run_replication, tasks, chunksize=chunksize))
            outcomes = []
            for outcome, registry in results:
                telemetry.merge(registry)
                outcomes.append(outcome)

        cells: dict[tuple[str, float], list[_ReplicationOutcome]] = {}
        for task, outcome in zip(tasks, outcomes):
            cells.setdefault((task.check, task.alpha), []).append(outcome)

        report_checks = []
        for check in checks:
            for alpha in alphas:
                cell = cells[(check, alpha)]
                trials = sum(o.trials for o in cell)
                failures = sum(o.failures for o in cell)
                ties = sum(o.ties for o in cell)
                mean_cost = sum(o.cost for o in cell) / len(cell)
                low, high = wilson_interval(failures, trials)
                bound = _max_failure_rate(check, alpha)
                telemetry.counter(
                    "validation_replications_total", check=check
                ).inc(len(cell))
                telemetry.counter(
                    "validation_guarantee_failures_total", check=check
                ).inc(failures)
                report_checks.append(
                    GuaranteeCheck(
                        name=check,
                        alpha=alpha,
                        replications=len(cell),
                        trials=trials,
                        failures=failures,
                        empirical_rate=failures / trials,
                        wilson_low=low,
                        wilson_high=high,
                        max_failure_rate=bound,
                        passed=high <= bound,
                        extras={"ties": ties, "mean_cost": mean_cost},
                    )
                )

    report = GuaranteeReport(
        checks=tuple(report_checks), seed=seed, replications=replications
    )
    if not report.passed:
        telemetry.counter("validation_suite_failures_total", suite="guarantees").inc()
    return report
