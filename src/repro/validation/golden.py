"""Golden-trace harness — structural snapshots of comparison streams.

Seed-pinned tests assert on a handful of numbers and go stale the moment
an implementation detail shifts RNG consumption.  Golden traces pin the
*whole observable behavior* of a scenario instead: every
:class:`~repro.core.comparison.ComparisonRecord` the session emits, the
end-of-run summary, and the telemetry counters, serialized to JSON and
diffed **structurally** — integers and outcomes exactly, floats to a
tolerance, ``NaN`` equal to ``NaN`` — rather than by blanket float
equality.  A diff names the first divergent record and field, which turns
"test_seed_table failed" into "record 7 of racing_group changed workload
60 → 50".

Two things golden traces deliberately do *not* capture:

* wall-clock (spans carry timings; traces only keep deterministic data);
* records emitted inside :meth:`~repro.crowd.session.CrowdSession.fork`
  children (forks clear compare listeners by design) or racing pools used
  directly by partitioning — the SPR case therefore pins the phase
  *summaries* and counters, which cover that spending.

Re-pinning is explicit: ``crowd-topk validate --suite golden
--update-golden`` rewrites the files; docs/testing.md describes when that
is safe.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..config import ComparisonConfig, SPRConfig
from ..core.comparison import ComparisonRecord
from ..core.spr import spr_topk
from ..crowd.oracle import LatentScoreOracle
from ..crowd.session import CrowdSession
from ..crowd.workers import GaussianNoise
from ..errors import ConfigError
from ..telemetry import MetricsRegistry, get_registry, use_registry

__all__ = [
    "GoldenReport",
    "GoldenTrace",
    "TraceRecorder",
    "default_golden_cases",
    "diff_traces",
    "run_golden_suite",
    "DEFAULT_GOLDEN_DIR",
]

#: Repo-relative location of the pinned traces (the CLI default).
DEFAULT_GOLDEN_DIR = Path("tests") / "golden"

#: Relative tolerance for float fields when diffing.
FLOAT_TOL = 1e-6

#: Counters worth pinning: they summarize spending and engine routing.
_PINNED_COUNTERS = (
    "crowd_comparisons_total",
    "crowd_microtasks_total",
    "crowd_cache_hits_total",
    "crowd_budget_ties_total",
    "oracle_judgments_total",
    "crowd_pool_rounds_total",
)


class TraceRecorder:
    """Compare listener that serializes every record it sees."""

    def __init__(self) -> None:
        self.records: list[dict] = []

    def __call__(self, session: CrowdSession, record: ComparisonRecord) -> None:
        self.records.append(record_to_dict(record))


def record_to_dict(record: ComparisonRecord) -> dict:
    """A JSON-safe structural view of one record (NaN → None)."""
    return {
        "left": int(record.left),
        "right": int(record.right),
        "outcome": record.outcome.name,
        "workload": int(record.workload),
        "cost": int(record.cost),
        "rounds": int(record.rounds),
        "mean": None if math.isnan(record.mean) else float(record.mean),
        "std": None if math.isnan(record.std) else float(record.std),
    }


@dataclass(frozen=True)
class GoldenTrace:
    """One scenario's pinned behavior: records, summary, counters."""

    name: str
    records: tuple[dict, ...]
    summary: dict
    counters: dict
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "meta": self.meta,
            "records": list(self.records),
            "summary": self.summary,
            "counters": self.counters,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GoldenTrace":
        return cls(
            name=payload["name"],
            records=tuple(payload.get("records", ())),
            summary=dict(payload.get("summary", {})),
            counters=dict(payload.get("counters", {})),
            meta=dict(payload.get("meta", {})),
        )


def _floats_differ(a: float, b: float, tol: float) -> bool:
    return abs(a - b) > tol * max(1.0, abs(a), abs(b))


def _diff_value(path: str, expected: object, actual: object, tol: float) -> str | None:
    if expected is None and actual is None:
        return None
    if isinstance(expected, float) or isinstance(actual, float):
        if not isinstance(expected, (int, float)) or not isinstance(
            actual, (int, float)
        ):
            return f"{path}: expected {expected!r}, got {actual!r}"
        if _floats_differ(float(expected), float(actual), tol):
            return f"{path}: expected {expected!r}, got {actual!r}"
        return None
    if expected != actual:
        return f"{path}: expected {expected!r}, got {actual!r}"
    return None


def diff_traces(
    expected: GoldenTrace, actual: GoldenTrace, float_tol: float = FLOAT_TOL
) -> list[str]:
    """Structural differences between two traces (empty = match).

    Integer fields, outcomes, and counters compare exactly; floats within
    ``float_tol`` (relative above 1.0); ``None`` (serialized NaN) only
    matches ``None``.  The first divergent record is named by index and
    field so a failure points straight at the behavioral change.
    """
    diffs: list[str] = []
    if len(expected.records) != len(actual.records):
        diffs.append(
            f"records: expected {len(expected.records)} comparison records, "
            f"got {len(actual.records)}"
        )
    for idx, (exp, act) in enumerate(zip(expected.records, actual.records)):
        for key in sorted(set(exp) | set(act)):
            diff = _diff_value(
                f"records[{idx}].{key}", exp.get(key), act.get(key), float_tol
            )
            if diff is not None:
                diffs.append(diff)
    for section_name, exp_section, act_section in (
        ("summary", expected.summary, actual.summary),
        ("counters", expected.counters, actual.counters),
    ):
        for key in sorted(set(exp_section) | set(act_section)):
            if key not in exp_section:
                diffs.append(f"{section_name}.{key}: unexpected new entry "
                             f"{act_section[key]!r}")
                continue
            if key not in act_section:
                diffs.append(f"{section_name}.{key}: missing "
                             f"(expected {exp_section[key]!r})")
                continue
            diff = _diff_value(
                f"{section_name}.{key}", exp_section[key], act_section[key],
                float_tol,
            )
            if diff is not None:
                diffs.append(diff)
    return diffs


# ----------------------------------------------------------------------
# the pinned scenarios
# ----------------------------------------------------------------------
def _pinned_counters(registry: MetricsRegistry) -> dict:
    return {
        name: int(registry.counter_value(name)) for name in _PINNED_COUNTERS
    }


def _comp_chain_case() -> GoldenTrace:
    """Sequential COMP calls: fresh pairs, a replay, and a flipped replay."""
    scores = np.array([0.0, 1.0, 2.0, 3.5, 5.0])
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(
        confidence=0.95, budget=200, min_workload=5, batch_size=10
    )
    with use_registry(MetricsRegistry()) as registry:
        session = CrowdSession(oracle, config, seed=1234)
        recorder = TraceRecorder()
        session.add_compare_listener(recorder)
        for pair in [(4, 0), (3, 1), (1, 2), (4, 0), (0, 4), (2, 1)]:
            session.compare(*pair)
        summary = {
            "total_cost": session.total_cost,
            "total_rounds": session.total_rounds,
            "cached_pairs": session.cache.pair_count,
            "cached_samples": session.cache.total_samples,
        }
        counters = _pinned_counters(registry)
    return GoldenTrace(
        name="comp_chain",
        records=tuple(recorder.records),
        summary=summary,
        counters=counters,
        meta={"seed": 1234, "scores": scores.tolist()},
    )


def _racing_group_case() -> GoldenTrace:
    """One racing compare_many group with an in-group repeat."""
    scores = np.array([0.0, 0.8, 1.6, 2.4, 3.2, 4.0])
    oracle = LatentScoreOracle(scores, GaussianNoise(1.2))
    config = ComparisonConfig(
        confidence=0.95, budget=120, min_workload=5, batch_size=10,
        group_engine="racing",
    )
    pairs = [(5, 0), (4, 1), (3, 2), (0, 5)]
    with use_registry(MetricsRegistry()) as registry:
        session = CrowdSession(oracle, config, seed=4321)
        recorder = TraceRecorder()
        session.add_compare_listener(recorder)
        session.compare_many(pairs)
        summary = {
            "total_cost": session.total_cost,
            "total_rounds": session.total_rounds,
            "cached_pairs": session.cache.pair_count,
            "cached_samples": session.cache.total_samples,
        }
        counters = _pinned_counters(registry)
    return GoldenTrace(
        name="racing_group",
        records=tuple(recorder.records),
        summary=summary,
        counters=counters,
        meta={"seed": 4321, "scores": scores.tolist(), "pairs": pairs},
    )


def _spr_small_case() -> GoldenTrace:
    """A full SPR query, pinned by phase summaries and counters.

    Selection forks the session (listeners cleared) and partitioning races
    pools without per-pair records, so the record stream covers only the
    ranking comparisons the outer session runs; the summary and counters
    pin everything else.
    """
    rng = np.random.default_rng(99)
    scores = rng.normal(0.0, 3.0, 12)
    oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
    config = ComparisonConfig(
        confidence=0.95, budget=150, min_workload=5, batch_size=10
    )
    with use_registry(MetricsRegistry()) as registry:
        session = CrowdSession(oracle, config, seed=77)
        recorder = TraceRecorder()
        session.add_compare_listener(recorder)
        result = spr_topk(session, list(range(12)), 3, SPRConfig(sweet_spot=1.5))
        part = result.partition_result
        summary = {
            "topk": [int(i) for i in result.topk],
            "cost": int(result.cost),
            "rounds": int(result.rounds),
            "recursed": bool(result.recursed),
            "reference": int(part.reference) if part is not None else None,
            "winners": len(part.winners) if part is not None else None,
            "ties": len(part.ties) if part is not None else None,
            "losers": len(part.losers) if part is not None else None,
            "reference_changes": (
                int(part.reference_changes) if part is not None else None
            ),
        }
        counters = _pinned_counters(registry)
    return GoldenTrace(
        name="spr_small",
        records=tuple(recorder.records),
        summary=summary,
        counters=counters,
        meta={"dataset_seed": 99, "session_seed": 77, "n": 12, "k": 3},
    )


def default_golden_cases() -> dict:
    """The built-in scenarios, name → zero-argument trace factory."""
    return {
        "comp_chain": _comp_chain_case,
        "racing_group": _racing_group_case,
        "spr_small": _spr_small_case,
    }


# ----------------------------------------------------------------------
# the suite
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GoldenReport:
    """Per-case diffs of the golden suite (empty diff list = match)."""

    diffs: dict
    updated: tuple[str, ...] = ()

    @property
    def passed(self) -> bool:
        return all(not case_diffs for case_diffs in self.diffs.values())

    def to_dict(self) -> dict:
        return {
            "suite": "golden",
            "passed": self.passed,
            "cases": {name: list(d) for name, d in self.diffs.items()},
            "updated": list(self.updated),
        }

    def to_text(self) -> str:
        lines = []
        for name in sorted(self.diffs):
            case_diffs = self.diffs[name]
            verdict = "PASS" if not case_diffs else f"FAIL ({len(case_diffs)} diffs)"
            lines.append(f"golden {name}: {verdict}")
            for diff in case_diffs[:10]:
                lines.append(f"  {diff}")
            if len(case_diffs) > 10:
                lines.append(f"  ... {len(case_diffs) - 10} more")
        for name in self.updated:
            lines.append(f"golden {name}: re-pinned")
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def trace_path(golden_dir: Path | str, name: str) -> Path:
    return Path(golden_dir) / f"{name}.json"


def load_trace(path: Path) -> GoldenTrace:
    with open(path, encoding="utf-8") as handle:
        return GoldenTrace.from_dict(json.load(handle))


def save_trace(trace: GoldenTrace, golden_dir: Path | str) -> Path:
    path = trace_path(golden_dir, trace.name)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def run_golden_suite(
    golden_dir: Path | str = DEFAULT_GOLDEN_DIR,
    update: bool = False,
    cases: dict | None = None,
    float_tol: float = FLOAT_TOL,
) -> GoldenReport:
    """Re-run every pinned scenario and diff it against its golden file.

    ``update=True`` rewrites the files instead of diffing (the explicit
    re-pin path).  A missing golden file is a failure, with the re-pin
    command spelled out in the diff message.
    """
    cases = cases if cases is not None else default_golden_cases()
    golden_dir = Path(golden_dir)
    registry = get_registry()
    diffs: dict = {}
    updated: list[str] = []
    with registry.span("validation.golden", cases=len(cases), update=update):
        for name, factory in sorted(cases.items()):
            actual = factory()
            if actual.name != name:
                raise ConfigError(
                    f"golden case {name!r} produced a trace named "
                    f"{actual.name!r}"
                )
            registry.counter("validation_golden_cases_total").inc()
            if update:
                save_trace(actual, golden_dir)
                updated.append(name)
                diffs[name] = []
                continue
            path = trace_path(golden_dir, name)
            if not path.exists():
                diffs[name] = [
                    f"missing golden file {path}; pin it with "
                    "`crowd-topk validate --suite golden --update-golden`"
                ]
                continue
            case_diffs = diff_traces(load_trace(path), actual, float_tol)
            diffs[name] = case_diffs
            if case_diffs:
                registry.counter("validation_golden_diffs_total").inc(
                    len(case_diffs)
                )
    report = GoldenReport(diffs=diffs, updated=tuple(updated))
    if not report.passed:
        registry.counter("validation_suite_failures_total", suite="golden").inc()
    return report
