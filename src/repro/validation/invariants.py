"""Runtime invariants — the accounting identities the simulator must keep.

Where :mod:`repro.validation.guarantees` asks "is the *statistics* right",
this module asks "is the *bookkeeping* right": identities that must hold on
every run regardless of seed, engine, or configuration.  The checks are
packaged as an :class:`InvariantEngine` so both the test suite and live
simulations can attach them to a :class:`~repro.crowd.session.CrowdSession`
and have every comparison audited as it happens:

* **per-record** (via a compare listener): costs and rounds are
  non-negative, a comparison never charges more than its workload, the
  workload respects the per-pair budget ``B`` and — when decided — the
  cold start ``I``, the winner agrees with the observed mean, and budget
  ties only occur at exactly ``B``;
* **per-region** (via :meth:`InvariantEngine.attach`): the cost ledger,
  the ``crowd_microtasks_total`` counter, the judgment cache, and the
  oracle's drawn-judgment counter all reconcile over the attached block;
* **post-hoc**: cache-bag running moments match a fresh numpy
  recomputation (:meth:`check_cache_moments`), partitioning returns an
  exhaustive trichotomy (:meth:`check_partition`), and the selected
  reference lands in the §5.1 sweet spot (:meth:`check_sweet_spot` — a
  *soft* check, since selection only promises it with high probability).

``strict=True`` raises :class:`InvariantViolation` at the first failed
check; ``strict=False`` collects results for a report, which is how
``crowd-topk validate --suite invariants`` runs it.  Every check also
lands in telemetry (``validation_invariant_checks_total{invariant=...}`` /
``validation_invariant_violations_total{invariant=...}``).
"""

from __future__ import annotations

import math
import os
import tempfile
from contextlib import contextmanager
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

import numpy as np

from ..config import (
    ComparisonConfig,
    FaultPolicy,
    ResiliencePolicy,
    RetryPolicy,
    SPRConfig,
)
from ..core.outcomes import Outcome
from ..core.spr import PartitionResult, resume_spr_topk, spr_topk
from ..crowd.oracle import LatentScoreOracle
from ..crowd.session import CrowdSession
from ..crowd.workers import GaussianNoise
from ..errors import BudgetExhaustedError, CrowdTopkError
from ..rng import make_rng, spawn_many
from ..telemetry import get_registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.cache import JudgmentCache
    from ..core.comparison import ComparisonRecord

__all__ = [
    "InvariantEngine",
    "InvariantReport",
    "InvariantResult",
    "InvariantViolation",
    "check_resume_determinism",
    "run_invariant_suite",
]


class InvariantViolation(CrowdTopkError, AssertionError):
    """A runtime invariant did not hold (raised only in strict mode)."""


@dataclass(frozen=True)
class InvariantResult:
    """One evaluated invariant: its name, verdict, and failure detail."""

    name: str
    ok: bool
    detail: str = ""
    soft: bool = False

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "detail": self.detail,
            "soft": self.soft,
        }


@dataclass(frozen=True)
class InvariantReport:
    """Aggregated invariant results (soft failures are warnings only)."""

    results: tuple[InvariantResult, ...]

    @property
    def passed(self) -> bool:
        return all(r.ok for r in self.results if not r.soft)

    @property
    def violations(self) -> tuple[InvariantResult, ...]:
        return tuple(r for r in self.results if not r.ok and not r.soft)

    @property
    def warnings(self) -> tuple[InvariantResult, ...]:
        return tuple(r for r in self.results if not r.ok and r.soft)

    def to_dict(self) -> dict:
        return {
            "suite": "invariants",
            "passed": self.passed,
            "checks": len(self.results),
            "violations": [r.to_dict() for r in self.violations],
            "warnings": [r.to_dict() for r in self.warnings],
        }

    def to_text(self) -> str:
        lines = [
            f"invariants: {len(self.results)} checks, "
            f"{len(self.violations)} violations, {len(self.warnings)} warnings"
        ]
        for r in self.violations:
            lines.append(f"  VIOLATION {r.name}: {r.detail}")
        for r in self.warnings:
            lines.append(f"  warning   {r.name}: {r.detail}")
        lines.append(f"overall: {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


class InvariantEngine:
    """Reusable runtime checks over sessions, caches, and phase results.

    Parameters
    ----------
    strict:
        Raise :class:`InvariantViolation` on the first failed hard check
        (the test-suite mode).  ``False`` collects results instead (the
        CLI report mode).  Soft checks never raise.
    """

    def __init__(self, strict: bool = True) -> None:
        self.strict = strict
        self.results: list[InvariantResult] = []

    # ------------------------------------------------------------------
    # core
    # ------------------------------------------------------------------
    def check(
        self, name: str, ok: bool, detail: str = "", *, soft: bool = False
    ) -> bool:
        """Record one invariant evaluation; raise when strict and violated."""
        registry = get_registry()
        registry.counter("validation_invariant_checks_total", invariant=name).inc()
        result = InvariantResult(name, bool(ok), "" if ok else detail, soft)
        self.results.append(result)
        if not ok:
            registry.counter(
                "validation_invariant_violations_total", invariant=name
            ).inc()
            if self.strict and not soft:
                raise InvariantViolation(f"{name}: {detail}")
        return bool(ok)

    def report(self) -> InvariantReport:
        return InvariantReport(results=tuple(self.results))

    # ------------------------------------------------------------------
    # per-record checks (compare-listener shaped)
    # ------------------------------------------------------------------
    def on_compare(self, session: CrowdSession, record: "ComparisonRecord") -> None:
        """Audit one :class:`ComparisonRecord` (attachable as a listener)."""
        pair = f"({record.left}, {record.right})"
        self.check(
            "record_nonnegative",
            record.cost >= 0 and record.rounds >= 0 and record.workload >= 0,
            f"{pair}: cost={record.cost} rounds={record.rounds} "
            f"workload={record.workload}",
        )
        self.check(
            "record_cost_within_workload",
            record.cost <= record.workload,
            f"{pair}: charged {record.cost} for a workload of {record.workload}",
        )
        budget = session.config.effective_budget
        self.check(
            "record_budget_respected",
            record.workload <= budget,
            f"{pair}: workload {record.workload} exceeds budget {budget}",
        )
        if record.outcome is Outcome.TIE:
            if session.config.resilience.active:
                # Under faults or a deadline a pair may *degrade* to a tie
                # below ``B`` (retry exhaustion, deadline expiry) — only
                # the upper bound survives as an invariant.
                self.check(
                    "tie_within_budget",
                    record.workload <= budget,
                    f"{pair}: tie declared at workload {record.workload} > "
                    f"budget {budget}",
                )
            else:
                self.check(
                    "tie_exhausts_budget",
                    record.workload == budget,
                    f"{pair}: tie declared at workload {record.workload} != "
                    f"budget {budget}",
                )
        else:
            self.check(
                "decided_after_cold_start",
                record.workload >= session.config.min_workload,
                f"{pair}: verdict at workload {record.workload} before the "
                f"cold start {session.config.min_workload}",
            )
            expected = record.left if record.mean > 0 else record.right
            self.check(
                "winner_matches_mean",
                record.winner == expected and math.isfinite(record.mean),
                f"{pair}: winner {record.winner} but mean {record.mean!r}",
            )

    # ------------------------------------------------------------------
    # region reconciliation
    # ------------------------------------------------------------------
    @contextmanager
    def attach(
        self, session: CrowdSession, *, expect_cached_draws: bool = True
    ) -> Iterator["InvariantEngine"]:
        """Audit every comparison in the block and reconcile the accounts.

        On exit the engine checks, over the attached region, that

        * the cost ledger moved exactly as much as the
          ``crowd_microtasks_total`` counter (telemetry reconciles);
        * the oracle produced at least as many judgments as were charged
          (racing pools may buy draws that stopping rules never consume);
        * with ``expect_cached_draws`` (the default, true for all SPR
          paths) every charged microtask landed in the judgment cache;
        * comparison records seen by the listener never claim more cost
          than the ledger recorded (phases such as partitioning charge the
          session directly without emitting records, never the reverse).

        Note: :meth:`CrowdSession.fork` clears compare listeners, so
        per-record audits cover the attached session only; the ledger and
        counter reconciliation spans forks too, because those are shared.
        """
        registry = session.telemetry

        def dropped_tasks() -> float:
            # Timeouts and losses are posted tasks that never delivered —
            # the only oracle draws allowed to go uncharged beyond the
            # stopping rule's unconsumed tail.
            return registry.counter_value(
                "crowd_faults_total", mode="timeout"
            ) + registry.counter_value("crowd_faults_total", mode="loss")

        cost0 = session.cost.microtasks
        cache0 = session.cache.total_samples
        micro0 = registry.counter_value("crowd_microtasks_total")
        draws0 = registry.counter_value("oracle_judgments_total")
        drops0 = dropped_tasks()
        seen_cost = 0

        def audit(sess: CrowdSession, record: "ComparisonRecord") -> None:
            nonlocal seen_cost
            seen_cost += record.cost
            self.on_compare(sess, record)

        session.add_compare_listener(audit)
        try:
            yield self
        finally:
            session.remove_compare_listener(audit)
            spent = session.cost.microtasks - cost0
            metered = registry.counter_value("crowd_microtasks_total") - micro0
            drawn = registry.counter_value("oracle_judgments_total") - draws0
            cached = session.cache.total_samples - cache0
            self.check(
                "ledger_matches_telemetry",
                spent == metered,
                f"ledger charged {spent} microtasks but telemetry metered "
                f"{metered}",
            )
            dropped = dropped_tasks() - drops0
            self.check(
                "draws_cover_spend",
                drawn >= spent,
                f"charged {spent} microtasks but the oracle only produced "
                f"{drawn} judgments",
            )
            self.check(
                "faults_never_charged",
                drawn - dropped >= spent,
                f"charged {spent} microtasks but only {drawn} were drawn of "
                f"which {dropped} dropped — lost tasks were billed",
            )
            if expect_cached_draws:
                self.check(
                    "spend_lands_in_cache",
                    cached == spent,
                    f"charged {spent} microtasks but the cache grew by {cached}",
                )
            self.check(
                "records_within_ledger",
                seen_cost <= spent,
                f"records claim {seen_cost} microtasks, ledger shows {spent}",
            )

    # ------------------------------------------------------------------
    # post-hoc structural checks
    # ------------------------------------------------------------------
    def check_cache_moments(
        self, cache: "JudgmentCache", atol: float = 1e-9
    ) -> bool:
        """Running bag moments match a fresh numpy recomputation."""
        ok = True
        for i, j in cache.pairs():
            values = cache.bag(i, j)
            n, mean, var = cache.moments(i, j)
            ok &= self.check(
                "cache_bag_count",
                n == values.size,
                f"pair ({i}, {j}): moments report n={n}, bag holds {values.size}",
            )
            if values.size == 0:
                continue
            fresh_mean = float(np.mean(values))
            ok &= self.check(
                "cache_bag_mean",
                abs(mean - fresh_mean) <= atol,
                f"pair ({i}, {j}): running mean {mean!r} vs numpy {fresh_mean!r}",
            )
            if values.size >= 2:
                fresh_var = float(np.var(values, ddof=1))
                ok &= self.check(
                    "cache_bag_variance",
                    abs(var - fresh_var) <= atol * max(1.0, abs(fresh_var)),
                    f"pair ({i}, {j}): running var {var!r} vs numpy {fresh_var!r}",
                )
        return ok

    def check_partition(
        self, result: PartitionResult, item_ids: Sequence[int]
    ) -> bool:
        """Winners ∪ ties ∪ losers is an exact partition of the input."""
        groups = (result.winners, result.ties, result.losers)
        combined = [int(i) for group in groups for i in group]
        ok = self.check(
            "partition_no_overlap",
            len(combined) == len(set(combined)),
            f"an item appears in two groups: {sorted(combined)}",
        )
        ok &= self.check(
            "partition_exhaustive",
            sorted(combined) == sorted(int(i) for i in item_ids),
            f"groups cover {sorted(set(combined))}, "
            f"input was {sorted(int(i) for i in item_ids)}",
        )
        ok &= self.check(
            "partition_reference_placed",
            result.reference in result.winners or result.reference in result.losers,
            f"final reference {result.reference} is in neither winners nor "
            "losers (Line 13 of Algorithm 4)",
        )
        return ok

    def check_sweet_spot(
        self,
        scores: Mapping[int, float] | np.ndarray,
        reference: int,
        k: int,
        c: float,
    ) -> bool:
        """The reference's true rank lies in ``{k, …, ⌊ck⌋}`` (soft).

        Selection only promises the sweet spot with high probability
        (§5.1), so a miss is reported as a warning, never an error.
        """
        if isinstance(scores, np.ndarray):
            scores = {int(i): float(s) for i, s in enumerate(scores)}
        better = sum(1 for s in scores.values() if s > scores[int(reference)])
        rank = better + 1
        lo, hi = k, math.floor(c * k)
        return self.check(
            "reference_in_sweet_spot",
            lo <= rank <= hi,
            f"reference {reference} has true rank {rank}, sweet spot is "
            f"[{lo}, {hi}]",
            soft=True,
        )


def check_resume_determinism(
    engine: InvariantEngine,
    seed: int = 0,
    n_items: int = 24,
    k: int = 4,
) -> bool:
    """Kill-and-resume reproduces the uninterrupted query bit for bit.

    Runs one SPR query to completion, replays it with a mid-flight budget
    ceiling and per-round checkpointing, restores the checkpoint into a
    fresh session, and asserts the resumed query returns the identical
    top-k at identical total cost and latency — i.e. not a single
    microtask was re-purchased or re-randomized across the kill.
    """
    rng = make_rng(seed)
    scores = rng.normal(0.0, 3.0, n_items)
    config = ComparisonConfig(
        confidence=0.95, budget=300, min_workload=10, batch_size=20
    )
    spr_config = SPRConfig(sweet_spot=1.5)

    def fresh_oracle() -> LatentScoreOracle:
        return LatentScoreOracle(scores, GaussianNoise(1.0))

    baseline = CrowdSession(fresh_oracle(), config, seed=seed)
    expected = spr_topk(baseline, list(range(n_items)), k, spr_config)

    # Kill mid-partition: the first checkpoint lands at the first partition
    # round boundary, so a ceiling inside the selection phase would die
    # with nothing on disk to resume.
    selection_cost = expected.selection.cost if expected.selection else 0
    ceiling = selection_cost + max((baseline.total_cost - selection_cost) // 2, 1)

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "query.ckpt.npz")
        killed = CrowdSession(
            fresh_oracle(),
            config,
            seed=seed,
            max_total_cost=ceiling,
        )
        killed.enable_checkpoints(path, every=1)
        try:
            spr_topk(killed, list(range(n_items)), k, spr_config)
        except BudgetExhaustedError:
            pass
        else:
            return engine.check(
                "resume_determinism",
                False,
                "the mid-query budget ceiling never tripped — nothing to resume",
            )
        restored = CrowdSession.restore(path, fresh_oracle())
        restored.cost.ceiling = None
        resumed = resume_spr_topk(restored)
    ok = (
        resumed.topk == expected.topk
        and restored.total_cost == baseline.total_cost
        and restored.total_rounds == baseline.total_rounds
    )
    return engine.check(
        "resume_determinism",
        ok,
        f"resumed topk={resumed.topk} cost={restored.total_cost} "
        f"rounds={restored.total_rounds}; uninterrupted topk={expected.topk} "
        f"cost={baseline.total_cost} rounds={baseline.total_rounds}",
    )


def run_invariant_suite(
    seed: int = 0,
    queries: int = 5,
    n_items: int = 24,
    k: int = 4,
) -> InvariantReport:
    """Audit several full SPR queries end to end.

    Each query runs on a fresh synthetic instance with the engine attached
    (every comparison checked live, accounts reconciled), then the cache
    moments, the partition trichotomy, and the sweet-spot placement are
    verified post-hoc.  One extra query runs against a *faulty* platform
    (the accounting identities must survive dropped and duplicated tasks)
    and one exercises kill-and-resume determinism.  Collect-mode
    (`strict=False`): the caller reads the report instead of catching
    exceptions.
    """
    engine = InvariantEngine(strict=False)
    registry = get_registry()
    root = make_rng(seed)
    rngs = spawn_many(root, queries)
    with registry.span("validation.invariants", queries=queries, items=n_items, k=k):
        for rng in rngs:
            scores = rng.normal(0.0, 3.0, n_items)
            oracle = LatentScoreOracle(scores, GaussianNoise(1.0))
            config = ComparisonConfig(
                confidence=0.95, budget=300, min_workload=10, batch_size=20
            )
            session = CrowdSession(oracle, config, seed=rng)
            with engine.attach(session):
                result = spr_topk(
                    session, list(range(n_items)), k, SPRConfig(sweet_spot=1.5)
                )
            engine.check_cache_moments(session.cache)
            if result.partition_result is not None:
                part = result.partition_result
                engine.check_partition(part, list(range(n_items)))
            if result.selection is not None:
                engine.check_sweet_spot(
                    scores, result.selection.reference, k, c=1.5
                )

        # The same identities against an unreliable platform.
        faulty_rng = make_rng(seed)
        scores = faulty_rng.normal(0.0, 3.0, n_items)
        faulty_config = ComparisonConfig(
            confidence=0.95,
            budget=300,
            min_workload=10,
            batch_size=20,
            resilience=ResiliencePolicy(
                fault=FaultPolicy(
                    timeout_rate=0.1,
                    loss_rate=0.05,
                    duplicate_rate=0.05,
                    outage_rate=0.02,
                    seed=seed,
                ),
                retry=RetryPolicy(max_attempts=6, backoff_base=1),
            ),
        )
        faulty = CrowdSession(
            LatentScoreOracle(scores, GaussianNoise(1.0)), faulty_config, seed=seed
        )
        with engine.attach(faulty):
            result = spr_topk(
                faulty, list(range(n_items)), k, SPRConfig(sweet_spot=1.5)
            )
        engine.check_cache_moments(faulty.cache)
        if result.partition_result is not None:
            engine.check_partition(result.partition_result, list(range(n_items)))

        check_resume_determinism(engine, seed=seed, n_items=n_items, k=k)
    report = engine.report()
    if not report.passed:
        registry.counter("validation_suite_failures_total", suite="invariants").inc()
    return report
