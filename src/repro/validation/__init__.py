"""Statistical correctness validation for the reproduction.

The paper's central promise is conditional: every verdict COMP delivers is
wrong with probability at most ``α``, and SPR's top-k inherits its recall
from that per-comparison guarantee (§3.1, §5.4).  The rest of the library
*uses* those guarantees; this package *measures* them:

* :mod:`repro.validation.guarantees` — Monte-Carlo guarantee checking:
  many seeded replications of COMP / partitioning / full SPR, empirical
  error rates with Wilson confidence bounds, pass/fail against the
  configured ``1 − α`` (and the §5.4 ``(1 − α)/c`` recall floor).
* :mod:`repro.validation.invariants` — reusable runtime invariants (cost
  accounting reconciles with oracle draws and telemetry, cache-bag moments
  match recomputation, partition trichotomy is exhaustive, the selected
  reference lands in the sweet spot) that tests and the simulator can both
  attach to a live :class:`~repro.crowd.session.CrowdSession`.
* :mod:`repro.validation.golden` — golden-trace snapshots of
  :class:`~repro.core.comparison.ComparisonRecord` streams for pinned
  seeds, diffed structurally (ints exactly, floats to a tolerance) rather
  than by blanket float equality.

All three suites are wired into the CLI as ``crowd-topk validate`` and
report through the telemetry registry (``validation_*`` metrics — see
docs/observability.md); docs/testing.md explains how they slot into the
tiered test architecture.
"""

from __future__ import annotations

from .golden import (
    GoldenReport,
    GoldenTrace,
    TraceRecorder,
    default_golden_cases,
    diff_traces,
    run_golden_suite,
)
from .guarantees import (
    GuaranteeCheck,
    GuaranteeReport,
    run_guarantee_suite,
    wilson_interval,
)
from .invariants import (
    InvariantEngine,
    InvariantReport,
    InvariantResult,
    InvariantViolation,
    check_resume_determinism,
    run_invariant_suite,
)

__all__ = [
    "GoldenReport",
    "GoldenTrace",
    "GuaranteeCheck",
    "GuaranteeReport",
    "InvariantEngine",
    "InvariantReport",
    "InvariantResult",
    "InvariantViolation",
    "TraceRecorder",
    "check_resume_determinism",
    "default_golden_cases",
    "diff_traces",
    "run_golden_suite",
    "run_guarantee_suite",
    "run_invariant_suite",
    "wilson_interval",
]
