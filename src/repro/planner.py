"""Query planning: from requirements to a configuration.

The paper analyses a *given* configuration (confidence, budget).  A
deployment faces the inverse problem: "I need the top-10 of 500 items at
~90% precision and I have 150 dollars — what do I configure?"  The
planner answers it from the paper's own machinery:

* the §5.4 precision lower bound ``(1 − α)/c`` picks the confidence level
  a precision target requires;
* the Lemma-1 / Appendix-D cost model (`repro.stats.planning`) predicts
  what an SPR query costs under candidate per-pair budgets, given a rough
  description of the score distribution and crowd noise;
* the Appendix-B unit cost converts to dollars.

The output is a recommendation, not a guarantee — the predicted cost is
the Lemma-1 floor scaled by SPR's measured overhead factor (the
EXPERIMENTS.md Figure-12 ratio), and real datasets deviate.  The planner
says so explicitly in its rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .config import ComparisonConfig
from .errors import ConfigError
from .extensions.economics import MICROTASK_UNIT_COST_USD, dollars_for
from .rng import make_rng
from .stats.planning import predict_infimum_cost

__all__ = ["QueryPlan", "plan_query", "SPR_OVERHEAD_FACTOR"]

#: SPR's measured TMC over the Lemma-1 infimum at the paper defaults
#: (EXPERIMENTS.md, Figure 12: 2.1-2.5x across datasets; we plan with the
#: pessimistic end).
SPR_OVERHEAD_FACTOR = 2.5

#: Candidate per-pair budgets the planner searches over (Table 6's sweep).
_CANDIDATE_BUDGETS = (100, 200, 500, 1000, 2000, 4000)


@dataclass(frozen=True)
class QueryPlan:
    """A recommended configuration and its predicted economics."""

    config: ComparisonConfig
    expected_precision_floor: float
    predicted_microtasks: float
    predicted_dollars: float
    feasible: bool
    rationale: str

    def summary(self) -> str:
        status = "FEASIBLE" if self.feasible else "INFEASIBLE"
        return (
            f"[{status}] 1-a={self.config.confidence:.2f}, "
            f"B={self.config.budget}: ~{self.predicted_microtasks:,.0f} "
            f"microtasks ≈ US${self.predicted_dollars:,.2f}; precision "
            f"floor {self.expected_precision_floor:.2f}"
        )


def plan_query(
    n_items: int,
    k: int,
    *,
    target_precision: float = 0.6,
    dollar_budget: float | None = None,
    score_spread: float = 1.0,
    noise_sigma: float = 1.0,
    sweet_spot: float = 1.5,
    unit_cost_usd: float = MICROTASK_UNIT_COST_USD,
    min_workload: int = 30,
    seed: int = 0,
) -> QueryPlan:
    """Recommend a :class:`ComparisonConfig` for a top-k deployment.

    Parameters
    ----------
    n_items, k:
        The query.
    target_precision:
        Desired lower bound on expected result precision; §5.4 maps it to
        the confidence level via ``(1 − α)/c ≥ target``.
    dollar_budget:
        Optional spending cap; the planner picks the largest per-pair
        budget that fits (larger ``B`` = fewer ties = better accuracy,
        Figure 13) and reports infeasibility when even the smallest
        candidate exceeds the cap.
    score_spread, noise_sigma:
        A rough prior over the instance: hidden scores ~ N(0, spread²),
        single-judgment noise σ.  Only their ratio matters.
    """
    if not 1 <= k < n_items:
        raise ConfigError(f"k must be in [1, {n_items - 1}], got {k}")
    if not 0.0 < target_precision < 1.0:
        raise ConfigError(
            f"target_precision must be in (0, 1), got {target_precision}"
        )
    if sweet_spot <= 1.0:
        raise ConfigError(f"sweet_spot must be > 1, got {sweet_spot}")
    if score_spread <= 0 or noise_sigma <= 0:
        raise ConfigError("score_spread and noise_sigma must be positive")

    # §5.4: (1 - alpha)/c >= target  →  alpha <= 1 - c·target.
    max_alpha = 1.0 - sweet_spot * target_precision
    if max_alpha <= 0.0:
        raise ConfigError(
            f"target precision {target_precision} is unreachable at "
            f"c={sweet_spot}: the §5.4 floor (1-α)/c cannot exceed "
            f"{1.0 / sweet_spot:.2f}"
        )
    # Snap to the paper's confidence grid: the *lowest* level meeting the
    # precision target — the objective is minimal cost subject to quality.
    grid = (0.80, 0.85, 0.90, 0.95, 0.98, 0.99)
    confidence = min(
        (level for level in grid if (1.0 - level) <= max_alpha),
        default=0.99,
    )
    alpha = 1.0 - confidence

    # Representative instance: one fixed sample of hidden scores.
    rng = make_rng(seed)
    scores = rng.normal(0.0, score_spread, size=n_items)
    # A judgment of a pair has noise sqrt(2)·sigma when each side carries
    # sigma; callers give the per-judgment sigma directly.
    chosen = None
    for budget in sorted(_CANDIDATE_BUDGETS, reverse=True):
        if budget < min_workload:
            continue
        floor = predict_infimum_cost(
            scores, k, noise_sigma, alpha, min_workload=min_workload,
            budget=budget,
        )
        microtasks = SPR_OVERHEAD_FACTOR * floor
        dollars = dollars_for(int(round(microtasks)), unit_cost_usd)
        if dollar_budget is None or dollars <= dollar_budget:
            chosen = (budget, microtasks, dollars, True)
            break
    if chosen is None:
        budget = min(_CANDIDATE_BUDGETS)
        floor = predict_infimum_cost(
            scores, k, noise_sigma, alpha, min_workload=min_workload,
            budget=budget,
        )
        microtasks = SPR_OVERHEAD_FACTOR * floor
        chosen = (
            budget,
            microtasks,
            dollars_for(int(round(microtasks)), unit_cost_usd),
            False,
        )

    budget, microtasks, dollars, feasible = chosen
    config = ComparisonConfig(
        confidence=confidence, budget=budget, min_workload=min_workload
    )
    rationale = (
        f"§5.4 needs α ≤ {max_alpha:.3f} for precision ≥ {target_precision} "
        f"at c={sweet_spot} → 1-α = {confidence}. Cost = Lemma-1 floor on a "
        f"N(0, {score_spread}²) instance with σ={noise_sigma} judgments, "
        f"× {SPR_OVERHEAD_FACTOR} SPR overhead (Figure-12 measured ratio). "
        + (
            "Largest per-pair budget within the dollar cap chosen."
            if feasible and dollar_budget is not None
            else "No dollar cap given; the default-grade budget chosen."
            if feasible
            else "Even the smallest candidate budget exceeds the cap — "
            "reduce N/k, accept lower precision, or raise the cap."
        )
    )
    return QueryPlan(
        config=config,
        expected_precision_floor=(1.0 - alpha) / sweet_spot,
        predicted_microtasks=float(microtasks),
        predicted_dollars=float(dollars),
        feasible=feasible,
        rationale=rationale,
    )
