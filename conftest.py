"""Repo-level pytest configuration: tiers and shared options.

The suite is split into two explicit tiers (docs/testing.md):

* ``tier1`` — fast, deterministic, seed-pinned; the default selection
  (``addopts`` deselects ``statistical``) and the bar every PR must meet.
* ``statistical`` — multi-seed distributional tests; run with
  ``pytest -m statistical`` (their own CI leg).

Every collected test that is not explicitly marked ``statistical`` is
auto-marked ``tier1``, so ``-m tier1`` and the default selection agree
without sprinkling the marker over hundreds of existing tests.

``--jobs`` is registered here (not in ``benchmarks/conftest.py``) so that
tests, benchmarks, and combined invocations all share one definition —
pytest refuses to start when two conftests register the same option.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment/validation runs (0 = one per "
        "CPU, default 1 = serial); results are bit-for-bit identical",
    )


def pytest_collection_modifyitems(config, items):
    for item in items:
        if item.get_closest_marker("statistical") is None:
            item.add_marker(pytest.mark.tier1)
