"""Repo-level pytest configuration: tiers and shared options.

The suite is split into two explicit tiers (docs/testing.md):

* ``tier1`` — fast, deterministic, seed-pinned; the default selection
  (``addopts`` deselects ``statistical``) and the bar every PR must meet.
* ``statistical`` — multi-seed distributional tests; run with
  ``pytest -m statistical`` (their own CI leg).

Every collected test that is not explicitly marked ``statistical`` is
auto-marked ``tier1``, so ``-m tier1`` and the default selection agree
without sprinkling the marker over hundreds of existing tests.

The CI fault-injection leg re-runs tier1 with ``CROWD_TOPK_FAULT_RATE``
set, which makes every default-configured session run against an
unreliable platform (docs/robustness.md).  Tests whose expectations only
hold on a fault-free platform — golden pins, seed-pinned costs, exact
round arithmetic — carry the ``faultfree`` marker and are skipped on that
leg; everything else must pass under faults too.

``--jobs`` is registered here (not in ``benchmarks/conftest.py``) so that
tests, benchmarks, and combined invocations all share one definition —
pytest refuses to start when two conftests register the same option.
"""

from __future__ import annotations

import os

import pytest


def _ambient_fault_rate() -> float:
    raw = os.environ.get("CROWD_TOPK_FAULT_RATE", "").strip()
    try:
        return float(raw) if raw else 0.0
    except ValueError:
        return 0.0


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for experiment/validation runs (0 = one per "
        "CPU, default 1 = serial); results are bit-for-bit identical",
    )


def pytest_collection_modifyitems(config, items):
    skip_faultfree = (
        pytest.mark.skip(
            reason="expects a fault-free platform; CROWD_TOPK_FAULT_RATE is set"
        )
        if _ambient_fault_rate() > 0
        else None
    )
    for item in items:
        if item.get_closest_marker("statistical") is None:
            item.add_marker(pytest.mark.tier1)
        if skip_faultfree is not None and item.get_closest_marker("faultfree"):
            item.add_marker(skip_faultfree)
