"""Ablation — the selection-phase comparison-budget cap.

DESIGN.md motivates capping the per-pair budget during reference selection:
two sample maxima the full budget cannot separate are interchangeable as
references, so spending B = 1000 on their order buys nothing (§5.4 —
selection errors only cost efficiency).  This ablation sweeps the cap and
verifies (a) large caps inflate TMC substantially with (b) no quality
gain.
"""

from repro.config import SPRConfig
from repro.experiments import ExperimentParams
from repro.experiments.reporting import Report
from repro.experiments.runner import run_method


def test_ablation_selection_budget(benchmark, emit):
    caps = (30, 60, 120, 500, 1000)

    def run():
        params = ExperimentParams(dataset="imdb", n_items=400, n_runs=3, seed=0)
        report = Report(
            title="Ablation: SPR selection comparison-budget cap (IMDb, N=400)",
            columns=[f"cap={c}" for c in caps],
        )
        costs, ndcgs = [], []
        for cap in caps:
            spr_config = SPRConfig(
                comparison=params.comparison_config(),
                selection_comparison_budget=cap,
            )
            stats = run_method("spr", params, spr_config=spr_config)
            costs.append(stats.mean_cost)
            ndcgs.append(stats.mean_ndcg)
        report.add_row("TMC", costs)
        report.add_row("NDCG", ndcgs)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_selection_budget", report)
    costs = report.rows["TMC"]
    ndcgs = report.rows["NDCG"]
    # The full-budget selection is much more expensive...
    assert costs[-1] > 1.3 * costs[1]
    # ...without a commensurate quality gain (selection errors mostly cost
    # efficiency; a slightly better reference nudges NDCG at most mildly).
    assert abs(ndcgs[-1] - ndcgs[1]) < 0.1
