"""Table 10 (Appendix C) — median-selection comparison upper bounds.

Regenerates the closed-form bound table and verifies the exact partial
bubble-sort count stays below its bound across a wide range of m.
"""

from repro.experiments.reporting import Report
from repro.stats.median_cost import (
    MEDIAN_COST_BOUNDS,
    bubble_median_comparisons,
    median_cost_upper_bound,
)


def test_appc_median_bounds(benchmark, emit):
    def run():
        ms = (3, 5, 9, 15, 25, 51, 101)
        report = Report(
            title="Table 10: comparison upper bounds for median selection",
            columns=[f"m={m}" for m in ms],
        )
        for name in sorted(MEDIAN_COST_BOUNDS):
            report.add_row(name, [median_cost_upper_bound(name, m) for m in ms])
        report.add_row("bubble (exact)", [bubble_median_comparisons(m) for m in ms])
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("appc_median_bounds", report)
    exact = report.rows["bubble (exact)"]
    bound = report.rows["bubble"]
    assert all(e <= b for e, b in zip(exact, bound))
