"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and `emit`s
the resulting report: printed to the terminal (visible with ``-s`` /
``-rA``) and persisted under ``benchmarks/results/`` so EXPERIMENTS.md can
cite the exact artifacts.  Each run also executes under a fresh telemetry
registry, and ``emit`` writes its snapshot to
``benchmarks/results/<name>.telemetry.json`` — counters, histogram
quantiles, and phase spans — so runs are comparable machine-to-machine
(see docs/observability.md).

Run with::

    pytest benchmarks/ --benchmark-only
    pytest benchmarks/ --benchmark-only --jobs 4   # process-pool runs

``--jobs N`` routes every benchmark's repeated runs through the parallel
experiment engine (``repro.experiments.parallel``); results are
bit-for-bit identical to serial runs.  The engine merges each worker's
registry into the benchmark's scoped registry *synchronously, in run
order, before the entry point returns* — so the snapshot ``emit`` writes
still contains all worker-side metrics (docs/performance.md).

Run counts are deliberately below the paper's 100-run averages to keep the
whole suite laptop-scale; every entry point takes ``n_runs`` for full
fidelity (see EXPERIMENTS.md for the counts used in the recorded results).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments.parallel import use_jobs
from repro.telemetry import MetricsRegistry, use_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# NOTE: the ``--jobs`` option itself is registered once, in the repo-root
# conftest.py, so tests/ and benchmarks/ invocations share one definition.


@pytest.fixture(autouse=True)
def telemetry_registry(request):
    """A fresh process-wide registry scoped to each benchmark.

    Also installs the session's ``--jobs`` as the ambient job count, so
    every ``run_method``/``run_methods``/sweep call inside the benchmark
    fans out through the process pool without per-benchmark plumbing.
    """
    jobs = request.config.getoption("--jobs")
    with use_registry(MetricsRegistry()) as registry, use_jobs(jobs):
        yield registry


@pytest.fixture
def emit(telemetry_registry):
    """Print report(s), persist them, and snapshot the run's telemetry.

    Worker-side metrics are already merged into ``telemetry_registry`` by
    the time any entry point returns (the engine merges before returning),
    so the snapshot below is complete under ``--jobs N`` too.
    """

    def _emit(name: str, *reports) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(report.to_text() for report in reports)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        (RESULTS_DIR / f"{name}.telemetry.json").write_text(
            json.dumps(telemetry_registry.snapshot(), indent=2) + "\n"
        )
        print()
        print(text)

    return _emit
