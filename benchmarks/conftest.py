"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and `emit`s
the resulting report: printed to the terminal (visible with ``-s`` /
``-rA``) and persisted under ``benchmarks/results/`` so EXPERIMENTS.md can
cite the exact artifacts.  Each run also executes under a fresh telemetry
registry, and ``emit`` writes its snapshot to
``benchmarks/results/<name>.telemetry.json`` — counters, histogram
quantiles, and phase spans — so runs are comparable machine-to-machine
(see docs/observability.md).

Run with::

    pytest benchmarks/ --benchmark-only

Run counts are deliberately below the paper's 100-run averages to keep the
whole suite laptop-scale; every entry point takes ``n_runs`` for full
fidelity (see EXPERIMENTS.md for the counts used in the recorded results).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.telemetry import MetricsRegistry, use_registry

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def telemetry_registry():
    """A fresh process-wide registry scoped to each benchmark."""
    with use_registry(MetricsRegistry()) as registry:
        yield registry


@pytest.fixture
def emit(telemetry_registry):
    """Print report(s), persist them, and snapshot the run's telemetry."""

    def _emit(name: str, *reports) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(report.to_text() for report in reports)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        (RESULTS_DIR / f"{name}.telemetry.json").write_text(
            json.dumps(telemetry_registry.snapshot(), indent=2) + "\n"
        )
        print()
        print(text)

    return _emit
