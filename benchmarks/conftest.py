"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and `emit`s
the resulting report: printed to the terminal (visible with ``-s`` /
``-rA``) and persisted under ``benchmarks/results/`` so EXPERIMENTS.md can
cite the exact artifacts.

Run with::

    pytest benchmarks/ --benchmark-only

Run counts are deliberately below the paper's 100-run averages to keep the
whole suite laptop-scale; every entry point takes ``n_runs`` for full
fidelity (see EXPERIMENTS.md for the counts used in the recorded results).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def emit():
    """Print report(s) and persist them under benchmarks/results/."""

    def _emit(name: str, *reports) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n\n".join(report.to_text() for report in reports)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)

    return _emit
