"""Confidence calibration — the framework's core promise, measured.

For a grid of gap-to-noise ratios and confidence levels, a decided
comparison must be wrong at most ~α of the time (sequential repeated looks
inflate the nominal level slightly; see `repro/stats/validation.py`).
"""

from repro.config import ComparisonConfig
from repro.experiments.reporting import Report
from repro.stats.validation import calibrate_tester


def test_calibration(benchmark, emit):
    confidences = (0.8, 0.9, 0.95, 0.98)
    gaps = (0.2, 0.5, 1.0)

    def run():
        report = Report(
            title="Tester calibration: measured error rate over decided runs",
            columns=[f"1-a={c}" for c in confidences],
        )
        ok = True
        for estimator in ("student", "stein"):
            for gap in gaps:
                rates = []
                for confidence in confidences:
                    config = ComparisonConfig(
                        confidence=confidence,
                        budget=5000,
                        min_workload=30,
                        estimator=estimator,  # type: ignore[arg-type]
                    )
                    cal = calibrate_tester(
                        config, true_mean=gap, sigma=1.0, trials=400, seed=7
                    )
                    rates.append(cal.error_rate)
                    ok = ok and cal.within_guarantee
                report.add_row(f"{estimator} gap={gap}", rates)
        report.add_note("guarantee check: error <= 1.5*alpha + 3 binomial sigmas")
        report.add_note(f"all cells within guarantee: {ok}")
        return report, ok

    report, ok = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("calibration", report)
    assert ok
    # Error rates should broadly decrease as the confidence level rises.
    for label, rates in report.rows.items():
        assert rates[-1] <= rates[0] + 0.02, (label, rates)
