"""Robustness extension — spammer-rate sweep (not a paper experiment).

The confidence-aware design's promise under hostile crowds: worker
degradation is converted into monetary cost, not into confidently wrong
answers.  TMC must rise visibly with the spammer rate while NDCG stays
high.
"""

from repro.experiments.robustness import run_robustness


def test_robustness_spammers(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_robustness(n_runs=3, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("robustness_spammers", report)
    costs = report.rows["TMC"]
    ndcgs = report.rows["NDCG"]
    assert costs[-1] > 1.3 * costs[0]  # 40% spammers make the query dearer
    assert min(ndcgs) > 0.8  # ...but never confidently wrong
