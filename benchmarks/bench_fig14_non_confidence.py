"""Figure 14 — non-confidence-aware methods (IMDb, Book).

Paper shape: CrowdBT trails clearly at SPR's budget (the BTL fit is
under-determined); the hybrid methods match or slightly beat SPR's NDCG
(ratings being the ground truth makes their filter strong), and
HybridSPR undercuts SPR's cost while beating Hybrid.
"""

from repro.experiments import run_non_confidence


def test_fig14_non_confidence(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_non_confidence(datasets=("imdb", "book"), n_runs=2, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("fig14_non_confidence", report)
    for dataset, row in report.rows.items():
        ndcg = dict(zip(report.columns, row))
        assert ndcg["crowdbt"] < ndcg["spr"], dataset
        assert ndcg["hybrid_spr"] >= ndcg["hybrid"] - 0.05, dataset
        assert ndcg["spr"] > 0.85, dataset
