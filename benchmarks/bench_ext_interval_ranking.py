"""Extension benchmark — interval-based partial ranking (§7 follow-up).

Tightening the existing reference bags can order most top-k candidates
*without any direct pairwise comparisons*; only the genuinely close pairs
remain for the bubble sort.  This bench measures how much of the ranking
the intervals resolve per extra microtask spent.
"""

from repro.core.spr import partition, select_reference
from repro.datasets import load_dataset
from repro.experiments.reporting import Report
from repro.extensions import interval_partial_order


def test_ext_interval_ranking(benchmark, emit):
    budgets = (0, 100, 300, 900)

    def run():
        dataset = load_dataset("imdb", seed=0)
        items = dataset.sample_items(300)
        ids = items.ids.tolist()

        report = Report(
            title="Extension: interval partial ranking of top-k candidates "
            "(IMDb N=300, k=10)",
            columns=[f"extra={b}" for b in budgets],
        )
        resolved_fracs, extra_costs = [], []
        for extra in budgets:
            session = dataset.session(seed=3)
            selection = select_reference(session, ids, 10)
            part = partition(session, ids, 10, selection.reference)
            candidates = [
                c for c in part.winners if c != part.reference
            ]
            before, _ = session.spent()
            order = interval_partial_order(
                session, candidates, part.reference, extra_budget=extra
            )
            after, _ = session.spent()
            total_pairs = len(candidates) * (len(candidates) - 1) // 2
            unresolved = len(order.unresolved_pairs())
            resolved_fracs.append(
                (total_pairs - unresolved) / total_pairs if total_pairs else 1.0
            )
            extra_costs.append(after - before)
        report.add_row("pairs ordered for free", resolved_fracs)
        report.add_row("extra microtasks", extra_costs)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ext_interval_ranking", report)
    fracs = report.rows["pairs ordered for free"]
    # More tightening budget never resolves fewer pairs, and the largest
    # budget must order a substantial share of the candidate pairs without
    # any direct comparison (top-k candidates are inherently close, so a
    # full resolution is not expected).
    assert fracs[-1] >= fracs[0]
    assert fracs[-1] > 0.3
