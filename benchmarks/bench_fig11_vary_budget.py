"""Figure 11 — TMC and latency vs the per-pair comparison budget B.

Paper shape: TMC and latency of every method increase monotonically with
B (bigger budgets let difficult pairs consume more before tying); SPR
tracks the infimum closely across the whole range.
"""

from repro.experiments import ExperimentParams, run_scalability


def test_fig11_vary_budget(benchmark, emit):
    def run():
        out = {}
        for dataset in ("imdb", "book"):
            params = ExperimentParams(dataset=dataset, n_runs=2, seed=0)
            out[dataset] = run_scalability(
                "budget", params, values=(30, 100, 200, 500, 1000, 2000)
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = [r for pair in results.values() for r in pair]
    emit("fig11_vary_budget", *reports)

    for dataset, (tmc, _latency) in results.items():
        for method, series in tmc.rows.items():
            assert series[0] < series[-1], (dataset, method)
