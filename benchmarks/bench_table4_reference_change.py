"""Table 4 — effect of changing the reference (IMDb defaults).

Paper: workload 91,310 / 88,233 / 86,498 / 86,372 / 87,718 / 88,626 for
0 / 1 / 2 / 4 / 8 / 16 maximum changes — a shallow dip around 2-4 changes.
The shape to reproduce: allowing a few changes never hurts much and the
best cell is an interior one.
"""

from repro.experiments import ExperimentParams, run_table4


def test_table4_reference_change(benchmark, emit):
    params = ExperimentParams(dataset="imdb", n_runs=3, seed=0)
    report = benchmark.pedantic(
        lambda: run_table4(params, changes=(0, 1, 2, 4, 8, 16)),
        rounds=1,
        iterations=1,
    )
    emit("table4_reference_change", report)
    work = report.rows["Work."]
    # Interior optimum (or at least: some number of changes beats none).
    assert min(work[1:]) <= work[0] * 1.02
