"""Appendix F, operationally — dollars, hours and quality of a deployment.

The paper's live PeopleAge run: US$10.56, 6 h 55 min, NDCG 0.917.  The
projection combines the simulated query with Appendix B's unit cost and
answer times; the shape to reproduce is single-digit dollars, single-digit
hours, ~0.9 NDCG.
"""

from repro.experiments.interactive import run_interactive


def test_interactive_projection(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_interactive(n_runs=5, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("interactive_projection", report)
    dollars, hours, ndcg = report.rows["SPR (ours, projected)"]
    assert 2.0 < dollars < 30.0
    assert 0.5 < hours < 24.0
    assert ndcg > 0.85
