"""Extended comparison (beyond the paper): Borda and ELO at SPR's budget.

The survey the paper builds on (Zhang et al. [44]) evaluates simpler
heuristics than CrowdBT; this bench adds Borda counting and ELO ratings to
the Figure-14 protocol.  Expected shape: both trail SPR's quality at the
matched budget — uniform random pairing wastes most of its microtasks on
pairs the top-k decision never needed, which is precisely SPR's thesis.
"""

from repro.algorithms.heuristics import borda_topk, elo_topk
from repro.datasets import load_dataset
from repro.experiments.reporting import Report
from repro.experiments.runner import run_method
from repro.experiments.params import ExperimentParams
from repro.metrics import ndcg_at_k
from repro.rng import make_rng, spawn_many


def _heuristic_ndcg(algorithm, params, budget, n_runs=2):
    dataset = load_dataset(params.dataset, seed=params.dataset_seed)
    root = make_rng(params.seed)
    rngs = spawn_many(root, n_runs)
    values = []
    for run in range(n_runs):
        session = dataset.session(params.comparison_config(), seed=rngs[run])
        outcome = algorithm(
            session, dataset.items.ids.tolist(), params.k, budget=budget
        )
        values.append(ndcg_at_k(dataset.items, outcome.topk, params.k))
    return sum(values) / len(values)


def test_extended_heuristics(benchmark, emit):
    def run():
        report = Report(
            title="Extended comparison: Borda / ELO at SPR's budget (NDCG)",
            columns=["spr", "borda", "elo"],
        )
        for dataset in ("jester", "book"):
            params = ExperimentParams(dataset=dataset, n_runs=2, seed=0)
            spr = run_method("spr", params)
            budget = int(spr.mean_cost)
            report.add_row(
                dataset,
                [
                    spr.mean_ndcg,
                    _heuristic_ndcg(borda_topk, params, budget),
                    _heuristic_ndcg(elo_topk, params, budget),
                ],
            )
            report.add_note(f"{dataset}: matched budget {budget:,}")
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("extended_heuristics", report)
    for dataset, row in report.rows.items():
        spr, borda, elo = row
        assert borda <= spr + 0.05, dataset
        assert elo <= spr + 0.05, dataset
