"""Figure 15 (Appendix D) — the ``n_b - n`` surface.

Paper shape: positive for every (μ, σ) — the binary judgment model always
needs more microtasks than the preference model.
"""

from repro.experiments import run_appendix_d


def test_fig15_nb_minus_n(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_appendix_d(alpha=0.05),
        rounds=1,
        iterations=1,
    )
    emit("fig15_nb_minus_n", report)
    for label, row in report.rows.items():
        assert all(v > 0 for v in row), label
    assert any("positive everywhere" in note for note in report.notes)
