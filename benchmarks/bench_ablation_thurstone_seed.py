"""Ablation — Thurstone seeding of the ranking phase (§5.3).

The paper argues that the free Thurstone order derived from the partition
bags gives the bubble sort a near-sorted input, making the ranking phase
near-linear.  This ablation sorts the same candidates with and without the
seeding and compares the microtasks the sort itself buys.
"""

from repro.core.spr import partition, select_reference
from repro.core.sorting import odd_even_sort
from repro.core.spr.rank import reference_sort
from repro.datasets import load_dataset
from repro.experiments.reporting import Report


def _sort_cost(seeded: bool, seed: int) -> tuple[int, int]:
    dataset = load_dataset("imdb", seed=0)
    items = dataset.sample_items(300)
    session = dataset.session(seed=seed)
    ids = items.ids.tolist()
    selection = select_reference(session, ids, 10)
    part = partition(session, ids, 10, selection.reference)
    candidates = list(part.winners)
    before_cost, _ = session.spent()
    if seeded:
        reference_sort(session, candidates, part.reference)
    else:
        shuffled = list(candidates)
        session.rng.shuffle(shuffled)
        odd_even_sort(session, shuffled)
    after_cost, _ = session.spent()
    return after_cost - before_cost, len(candidates)


def test_ablation_thurstone_seed(benchmark, emit):
    seeds = (0, 1, 2)

    def run():
        report = Report(
            title="Ablation: Thurstone-seeded vs unseeded ranking "
            "(IMDb N=300, sort phase only)",
            columns=[f"seed={s}" for s in seeds],
        )
        report.add_row("seeded sort cost", [_sort_cost(True, s)[0] for s in seeds])
        report.add_row(
            "unseeded sort cost", [_sort_cost(False, s)[0] for s in seeds]
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_thurstone_seed", report)
    seeded = report.rows["seeded sort cost"]
    unseeded = report.rows["unseeded sort cost"]
    # On average the free initial order saves sorting microtasks.
    assert sum(seeded) <= sum(unseeded)
