"""Ablation — Thurstone seeding of the ranking phase (§5.3).

The paper argues that the free Thurstone order derived from the partition
bags gives the bubble sort a near-sorted input, making the ranking phase
near-linear *in comparisons*.  This ablation sorts the same candidates
with and without the seeding and compares the comparison processes the
sort itself runs (the paper's claim) alongside the microtasks it buys
(noisier: a near-sorted order compares mostly score-adjacent — i.e.
expensive — pairs, so TMC can swing either way on any one seed).
"""

from repro.core.spr import partition, select_reference
from repro.core.sorting import odd_even_sort
from repro.core.spr.rank import reference_sort
from repro.datasets import load_dataset
from repro.experiments.reporting import Report


def _sort_cost(seeded: bool, seed: int) -> tuple[int, int]:
    """``(microtasks, comparisons)`` spent by the sort phase alone."""
    dataset = load_dataset("imdb", seed=0)
    items = dataset.sample_items(300)
    session = dataset.session(seed=seed)
    ids = items.ids.tolist()
    selection = select_reference(session, ids, 10)
    part = partition(session, ids, 10, selection.reference)
    candidates = list(part.winners)
    before_cost, _ = session.spent()
    before_comparisons = session.cost.comparisons
    if seeded:
        reference_sort(session, candidates, part.reference)
    else:
        shuffled = list(candidates)
        session.rng.shuffle(shuffled)
        odd_even_sort(session, shuffled)
    after_cost, _ = session.spent()
    return after_cost - before_cost, session.cost.comparisons - before_comparisons


def test_ablation_thurstone_seed(benchmark, emit):
    seeds = (0, 1, 2, 3, 4)

    def run():
        report = Report(
            title="Ablation: Thurstone-seeded vs unseeded ranking "
            "(IMDb N=300, sort phase only)",
            columns=[f"seed={s}" for s in seeds],
        )
        seeded = [_sort_cost(True, s) for s in seeds]
        unseeded = [_sort_cost(False, s) for s in seeds]
        report.add_row("seeded sort comparisons", [n for _, n in seeded])
        report.add_row("unseeded sort comparisons", [n for _, n in unseeded])
        report.add_row("seeded sort cost", [c for c, _ in seeded])
        report.add_row("unseeded sort cost", [c for c, _ in unseeded])
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_thurstone_seed", report)
    seeded = report.rows["seeded sort comparisons"]
    unseeded = report.rows["unseeded sort comparisons"]
    # The free initial order makes the sort near-linear: fewer comparison
    # processes in aggregate (per-seed TMC is too noisy to gate on — the
    # seeded order spends its comparisons on the closest pairs).
    assert sum(seeded) <= sum(unseeded)
