"""Extension benchmark — prior-guided reference selection (§7 follow-up).

With a decent prior over item scores, SPR can skip its sampling phase
entirely; with an adversarial prior it pays more but stays correct.
"""

from repro.core.spr import spr_topk
from repro.datasets import load_dataset
from repro.experiments.reporting import Report
from repro.extensions import spr_topk_with_prior
from repro.metrics import ndcg_at_k


def test_ext_prior_selection(benchmark, emit):
    def run():
        dataset = load_dataset("imdb", seed=0)
        items = dataset.sample_items(400)
        ids = items.ids.tolist()
        rng_noise = dataset.session(seed=99).rng

        good_prior = {
            int(i): items.score_of(int(i)) + rng_noise.normal(0, 0.05)
            for i in ids
        }
        bad_prior = {int(i): -items.score_of(int(i)) for i in ids}

        report = Report(
            title="Extension: prior-guided SPR (IMDb, N=400, k=10)",
            columns=["TMC", "NDCG"],
        )
        session = dataset.session(seed=7)
        plain = spr_topk(session, ids, 10)
        report.add_row("plain SPR", [plain.cost, ndcg_at_k(items, plain.topk, 10)])

        session = dataset.session(seed=7)
        good = spr_topk_with_prior(session, ids, 10, good_prior)
        report.add_row(
            "prior-guided (good prior)", [good.cost, ndcg_at_k(items, good.topk, 10)]
        )

        session = dataset.session(seed=7)
        bad = spr_topk_with_prior(session, ids, 10, bad_prior)
        report.add_row(
            "prior-guided (adversarial)", [bad.cost, ndcg_at_k(items, bad.topk, 10)]
        )
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ext_prior_selection", report)
    plain_cost, plain_ndcg = report.rows["plain SPR"]
    good_cost, good_ndcg = report.rows["prior-guided (good prior)"]
    bad_cost, bad_ndcg = report.rows["prior-guided (adversarial)"]
    assert good_cost < plain_cost  # the free reference saves the sampling phase
    assert good_ndcg > plain_ndcg - 0.1
    assert bad_ndcg > plain_ndcg - 0.1  # a bad prior costs money, never correctness
    assert bad_cost > good_cost
