"""Figures 18-19 (Appendix F) — TMC and latency sweeps on Jester.

Paper shape: same trends as IMDb/Book (Figures 8-11) at Jester's smaller
scale; SPR remains the cheapest confidence-aware method overall.
"""

from repro.experiments import ExperimentParams, run_scalability


def test_fig18_19_jester(benchmark, emit):
    def run():
        params = ExperimentParams(dataset="jester", n_runs=3, seed=0)
        return {
            "k": run_scalability("k", params),
            "n": run_scalability("n", params, values=(25, 50, None)),
            "confidence": run_scalability("confidence", params),
            "budget": run_scalability("budget", params, values=(30, 200, 1000, 2000)),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = [report for pair in sweeps.values() for report in pair]
    emit("fig18_19_jester", *reports)

    tmc_k, latency_k = sweeps["k"]
    k10 = tmc_k.columns.index("k=10")
    assert tmc_k.rows["spr"][k10] < tmc_k.rows["tournament"][k10]
    assert latency_k.rows["heapsort"][k10] == max(
        latency_k.rows[m][k10] for m in latency_k.rows
    )
    tmc_b, _ = sweeps["budget"]
    for method, series in tmc_b.rows.items():
        assert series[0] < series[-1], method
