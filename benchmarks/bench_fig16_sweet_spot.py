"""Figure 16 (Appendix F) — SPR TMC vs the sweet-spot constant c.

Paper shape: flat — SPR's cost is stable across c ∈ {1.25, 1.5, 1.75, 2.0},
justifying the fixed default c = 1.5.
"""

from repro.experiments import run_sweet_spot


def test_fig16_sweet_spot(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_sweet_spot(datasets=("imdb", "book"), n_runs=3, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("fig16_sweet_spot", report)
    for dataset, row in report.rows.items():
        spread = (max(row) - min(row)) / min(row)
        assert spread < 0.5, (dataset, row)  # stable across c
