"""Figure 3's premise — workload falls as rank distance grows.

The monotone-decreasing curve (and the vanishing tie rate) is the empirical
fact that justifies Select-Partition-Rank: comparisons against a far-away
reference are cheap, so a well-placed reference prunes almost everything at
near-cold-start cost.
"""

from repro.experiments.workload_distance import run_workload_distance


def test_workload_distance(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_workload_distance(
            "imdb", distances=(1, 5, 25, 100, 400), pairs_per_distance=15,
            n_runs=2, seed=0,
        ),
        rounds=1,
        iterations=1,
    )
    emit("workload_distance", report)
    workloads = report.rows["mean workload"]
    ties = report.rows["tie rate"]
    # Broadly decreasing workload; adjacent pairs cost an order of
    # magnitude more than far ones and tie far more often.
    assert workloads[0] > 3 * workloads[-1]
    assert workloads[-1] < 100
    assert ties[0] > ties[-1]
    assert ties[-1] < 0.1
