"""Ablation — the microtask batch size η (§5.5).

The paper's batch model trades latency against responsiveness: publishing
η microtasks at a time turns a w-sample comparison into ⌈w/η⌉ rounds.
Because this library evaluates the stopping rule after every sample within
a batch, monetary cost is invariant to η while latency falls roughly as
1/η — exactly the idealized trade §5.5 describes.
"""

from repro.experiments import ExperimentParams
from repro.experiments.reporting import Report
from repro.experiments.runner import run_method


def test_ablation_batch_size(benchmark, emit):
    batches = (5, 15, 30, 100)

    def run():
        report = Report(
            title="Ablation: batch size eta (SPR on Jester)",
            columns=[f"eta={b}" for b in batches],
        )
        costs, rounds = [], []
        for batch in batches:
            params = ExperimentParams(
                dataset="jester", batch_size=batch, n_runs=10, seed=0
            )
            stats = run_method("spr", params)
            costs.append(stats.mean_cost)
            rounds.append(stats.mean_rounds)
        report.add_row("TMC", costs)
        report.add_row("latency (rounds)", rounds)
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_batch_size", report)
    costs = report.rows["TMC"]
    rounds = report.rows["latency (rounds)"]
    # Latency falls monotonically with eta; cost stays within noise
    # (per-run TMC varies by tens of percent, so the mean over a handful
    # of runs needs a generous band).
    assert rounds == sorted(rounds, reverse=True)
    assert max(costs) < 1.5 * min(costs)
