"""Table 3 — accuracy and workload of the three judgment models.

Paper numbers (IMDb, 30 movies, 435 pairs, 100 runs):

=====================  =========  =========  =========
Model / 1-α               0.95       0.98       0.99
=====================  =========  =========  =========
Binary/Hoeffding  W.     6,029.7    8,713.8   10,847.1
Preference/Student W.      639.2    1,510.6    1,987.0
Preference/Stein   W.      557.4    1,250.6    2,029.8
=====================  =========  =========  =========

with preference accuracies 0.992-0.998 and binary ≈ 0.990.  The shape to
reproduce: preference workloads several times below binary at equal or
better accuracy, Student ≈ Stein.
"""

from repro.experiments import run_table3


def test_table3_judgment_models(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_table3(n_movies=20, n_runs=2, seed=0, cap=100_000),
        rounds=1,
        iterations=1,
    )
    emit("table3_judgment_models", report)
    binary = report.rows["Binary/Hoeffding workload"]
    student = report.rows["Preference/Student workload"]
    stein = report.rows["Preference/Stein workload"]
    # Paper shape: binary needs a multiple of the preference workload.
    assert all(b > 2 * s for b, s in zip(binary, student))
    assert all(b > 2 * s for b, s in zip(binary, stein))
    # Workload grows with the confidence level.
    assert student[0] < student[-1]
