"""Figure 13 — NDCG accuracy on IMDb (vs k, N, B, confidence).

Paper shape: every method performs badly when B <= 100 and recovers by
B = 1000; at the defaults all confidence-aware methods score similar,
high NDCG (SPR matching its competitors at lower TMC).
"""

from repro.experiments import ExperimentParams, run_accuracy


def test_fig13_accuracy(benchmark, emit):
    def run():
        params = ExperimentParams(dataset="imdb", n_items=400, n_runs=2, seed=0)
        return {
            "k": run_accuracy("k", params),
            "n": run_accuracy("n", params, values=(50, 200, 400)),
            "budget": run_accuracy("budget", params, values=(30, 100, 1000, 2000)),
            "confidence": run_accuracy("confidence", params),
        }

    panels = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("fig13_accuracy", *panels.values())

    budget_panel = panels["budget"]
    low_b = budget_panel.columns.index("B=30")
    high_b = budget_panel.columns.index("B=1000")
    for method in ("spr", "tournament", "heapsort", "quickselect"):
        series = budget_panel.rows[method]
        # tiny budgets cannot secure accuracy; B=1000 must do far better
        assert series[high_b] >= series[low_b] + 0.2, method
        assert series[high_b] > 0.8, method

    defaults_panel = panels["k"]
    k10 = defaults_panel.columns.index("k=10")
    scores = [defaults_panel.rows[m][k10] for m in
              ("spr", "tournament", "heapsort", "quickselect")]
    assert max(scores) - min(scores) < 0.15  # similar accuracy across methods
