"""Appendix F — the PeopleAge interactive experiment (simulation side).

Paper: simulated TMC 9,570 (US$9.57 at 0.1¢/task) with NDCG 0.905; the
live CrowdFlower run cost US$10.56 at NDCG 0.917.  Shape to reproduce:
a four-to-five-figure TMC with high NDCG at 1-α = 0.90, B = 100.
"""

from repro.experiments import run_peopleage


def test_appf_peopleage(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_peopleage(n_runs=10, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("appf_peopleage", report)
    tmc, ndcg, dollars = report.rows["SPR (ours)"]
    assert 2_000 < tmc < 30_000
    assert ndcg > 0.85
