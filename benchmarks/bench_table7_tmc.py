"""Table 7 — TMC of the confidence-aware methods on all four datasets.

Paper (100-run averages):

========  =======  ========  ========  ===========  =========
dataset     SPR    TourTree  HeapSort  QuickSelect     PBR
========  =======  ========  ========  ===========  =========
IMDb       88,233   177,231   114,190      334,938       1.6M
Book       80,369   175,280   115,382      319,498       2.2M
Jester     35,371    47,560    56,265       80,497    222,596
Photo      30,989    38,787    48,920       58,088     41,360
========  =======  ========  ========  ===========  =========

Shape to reproduce: SPR cheapest (or near-cheapest) everywhere and PBR an
order of magnitude above the rest on the larger datasets.
"""

from repro.experiments import run_table7


def test_table7_tmc(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_table7(n_runs=3, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("table7_tmc", report)
    methods = report.columns
    for dataset, row in report.rows.items():
        costs = dict(zip(methods, row))
        # SPR beats the tournament tree and quick selection everywhere...
        assert costs["spr"] < costs["tournament"], dataset
        assert costs["spr"] < costs["quickselect"], dataset
        # ...and PBR is by far the most expensive method.
        assert costs["pbr"] == max(costs.values()), dataset
