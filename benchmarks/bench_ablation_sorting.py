"""Ablation — §5.3's sorting-algorithm claim, verified.

"Most divide-and-conquer methods such as quick sort and merge sort are not
good for this task, since they do not take any advantage of the fact that
the input is almost sorted.  In contrast, bubble sort could be a good
choice."  This ablation sorts the same Thurstone-seeded top-k candidates
with the adaptive sorts (odd-even/bubble, insertion) and with merge sort,
comparing the microtasks the sort phase buys.
"""

from repro.core.sorting import insertion_sort, merge_sort, odd_even_sort
from repro.core.spr import partition, select_reference
from repro.core.spr.rank import thurstone_order
from repro.datasets import load_dataset
from repro.experiments.reporting import Report


def _sort_phase_cost(sorter: str, seed: int) -> int:
    dataset = load_dataset("imdb", seed=0)
    items = dataset.sample_items(300)
    session = dataset.session(seed=seed)
    ids = items.ids.tolist()
    selection = select_reference(session, ids, 10)
    part = partition(session, ids, 10, selection.reference)
    candidates = list(part.winners)
    seeded = thurstone_order(session, candidates, part.reference)
    before, _ = session.spent()
    if sorter == "odd-even (bubble)":
        odd_even_sort(session, candidates, initial_order=seeded)
    elif sorter == "insertion":
        insertion_sort(session, candidates, initial_order=seeded)
    else:
        merge_sort(session, seeded)
    after, _ = session.spent()
    return after - before


def test_ablation_sorting(benchmark, emit):
    seeds = (0, 1, 2)
    sorters = ("odd-even (bubble)", "insertion", "merge")

    def run():
        report = Report(
            title="Ablation: ranking-phase sort algorithm "
            "(Thurstone-seeded candidates, IMDb N=300, k=10)",
            columns=[f"seed={s}" for s in seeds],
        )
        for sorter in sorters:
            report.add_row(sorter, [_sort_phase_cost(sorter, s) for s in seeds])
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    emit("ablation_sorting", report)
    report.add_note(
        "finding: the adaptive sorts' advantage is partially offset by "
        "adjacent-pair pricing — their comparisons are between true "
        "neighbours, the most expensive pairs under W ∝ 1/gap²; bubble "
        "still wins in aggregate, sequential insertion does not"
    )
    bubble = sum(report.rows["odd-even (bubble)"])
    merge = sum(report.rows["merge"])
    # §5.3's recommendation holds in aggregate for the paper's own choice.
    assert bubble <= merge * 1.1
