"""Figure 17 (Appendix F) — SteinComp vs StudentComp inside SPR (IMDb).

Paper shape: the two estimators are analogous — the TMC-vs-k curves track
each other closely.
"""

from repro.experiments import run_stein_vs_student


def test_fig17_stein_vs_student(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_stein_vs_student(dataset="imdb", n_runs=2, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("fig17_stein_student", report)
    for ratio in report.rows["stein/student"]:
        assert 0.5 < ratio < 2.0
