"""Figure 10 — TMC and latency vs confidence level (IMDb, Book).

Paper shape: every method's TMC and latency increase with 1-α (tighter
intervals need more samples); SPR stays the cheapest throughout.

Reproduction note (see EXPERIMENTS.md): the baselines and the infimum
reproduce the monotone increase cleanly.  SPR's *mean* TMC is nearly flat
across the sweep here — at low confidence its per-comparison workloads
shrink, but erroneous partitions occasionally trigger Algorithm-2
recursions whose cost offsets the savings.  The assertions below encode
that honest shape: strict monotonicity for the other methods, a bounded
band plus end-to-end competitiveness for SPR.
"""

from repro.experiments import ExperimentParams, run_scalability


def test_fig10_vary_confidence(benchmark, emit):
    def run():
        out = {}
        for dataset in ("imdb", "book"):
            # 4 runs: SPR's low-confidence cells have a recursion tail
            # (wrong verdicts can leave |W ∪ T| < k) that a 2-run average
            # cannot absorb.
            params = ExperimentParams(dataset=dataset, n_runs=4, seed=0)
            out[dataset] = run_scalability("confidence", params)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = [r for pair in results.values() for r in pair]
    emit("fig10_vary_confidence", *reports)

    for dataset, (tmc, _latency) in results.items():
        for method, series in tmc.rows.items():
            if method == "spr":
                assert max(series) < 2.2 * min(series), (dataset, series)
                continue
            assert series[0] < series[-1], (dataset, method)
        # SPR cheapest at the default confidence column.
        col = tmc.columns.index("1-a=0.98")
        competitors = ("tournament", "quickselect")
        assert all(
            tmc.rows["spr"][col] < tmc.rows[m][col] for m in competitors
        ), dataset
