"""Figure 12 — performance summary at the default settings (IMDb, Book).

Paper shape: SPR is the only method approaching the Lemma-1 infimum on
both TMC and latency.
"""

from repro.experiments import run_summary


def test_fig12_summary(benchmark, emit):
    tmc, latency = benchmark.pedantic(
        lambda: run_summary(datasets=("imdb", "book"), n_runs=3, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("fig12_summary", tmc, latency)
    methods = [c for c in tmc.columns if c != "infimum"]
    infimum_col = tmc.columns.index("infimum")
    spr_col = tmc.columns.index("spr")
    for dataset, row in tmc.rows.items():
        gaps = {m: row[tmc.columns.index(m)] / row[infimum_col] for m in methods}
        assert min(gaps, key=gaps.get) == "spr", (dataset, gaps)
        assert row[spr_col] < 3.5 * row[infimum_col], dataset
