"""Figure 9 — TMC and latency vs item cardinality (IMDb, Book).

Paper shape: all methods grow with N; QuickSelect / TourTree / HeapSort
are more sensitive than SPR, whose TMC and latency stay closest to the
Lemma-1 infimum.
"""

from repro.experiments import ExperimentParams, run_scalability


def test_fig09_vary_n(benchmark, emit):
    def run():
        out = {}
        for dataset in ("imdb", "book"):
            params = ExperimentParams(dataset=dataset, n_runs=2, seed=0)
            out[dataset] = run_scalability(
                "n", params, values=(25, 50, 100, 200, 400, 800, None)
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = [r for pair in results.values() for r in pair]
    emit("fig09_vary_n", *reports)

    for dataset, (tmc, _latency) in results.items():
        last = -1  # the N=All column
        # Monotone growth in N for every method.
        for method, series in tmc.rows.items():
            assert series[0] < series[last], (dataset, method)
        # SPR is the method closest to the infimum at full scale.
        gap = {
            method: tmc.rows[method][last] / tmc.rows["infimum"][last]
            for method in ("spr", "tournament", "heapsort", "quickselect")
        }
        assert min(gap, key=gap.get) == "spr", (dataset, gap)
