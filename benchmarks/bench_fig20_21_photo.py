"""Figures 20-21 (Appendix F) — TMC and latency sweeps on Photo.

Paper shape: same trends as the other datasets on the record-database
oracle; SPR cheapest overall, heap sort the latency loser.
"""

from repro.experiments import ExperimentParams, run_scalability


def test_fig20_21_photo(benchmark, emit):
    def run():
        params = ExperimentParams(dataset="photo", n_runs=3, seed=0)
        return {
            "k": run_scalability("k", params),
            "n": run_scalability("n", params, values=(25, 50, 100, None)),
            "confidence": run_scalability("confidence", params),
            "budget": run_scalability("budget", params, values=(30, 200, 1000, 2000)),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = [report for pair in sweeps.values() for report in pair]
    emit("fig20_21_photo", *reports)

    tmc_k, latency_k = sweeps["k"]
    k10 = tmc_k.columns.index("k=10")
    assert tmc_k.rows["spr"][k10] < tmc_k.rows["tournament"][k10]
    assert tmc_k.rows["spr"][k10] < tmc_k.rows["quickselect"][k10]
    assert latency_k.rows["heapsort"][k10] == max(
        latency_k.rows[m][k10] for m in latency_k.rows
    )
