"""SPR phase breakdown — selection vs partition vs rank spending.

Diagnostic companion to the complexity analysis of §5: selection and
partition should carry comparable O(Nw) weight, ranking a small remainder
(it grows only when Algorithm 2 recurses).
"""

from repro.experiments.phase_breakdown import run_phase_breakdown


def test_phase_breakdown(benchmark, emit):
    report = benchmark.pedantic(
        lambda: run_phase_breakdown(n_runs=3, seed=0),
        rounds=1,
        iterations=1,
    )
    emit("phase_breakdown", report)
    for dataset, row in report.rows.items():
        selection, partition, tail, total = row
        assert abs(selection + partition + tail - total) < 1.0, dataset
        # Selection must not dominate partitioning by more than ~2x — the
        # design constraint of problem (2).
        assert selection < 2.0 * partition + 1000, dataset
