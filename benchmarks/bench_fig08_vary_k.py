"""Figure 8 — TMC and latency vs k (IMDb, Book).

Paper shape: SPR consistently cheaper than TourTree and QuickSelect;
HeapSort slightly beats SPR at small k but blows up as k grows and is the
clear latency loser; QuickSelect's latency rivals SPR's but its TMC is
the highest of the non-racing methods.
"""

from repro.experiments import ExperimentParams, run_scalability


def test_fig08_vary_k(benchmark, emit):
    def run():
        out = {}
        for dataset in ("imdb", "book"):
            params = ExperimentParams(dataset=dataset, n_runs=2, seed=0)
            out[dataset] = run_scalability("k", params)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    reports = [r for pair in results.values() for r in pair]
    emit("fig08_vary_k", *reports)

    for dataset, (tmc, latency) in results.items():
        # TMC grows with k for every method.
        for method, series in tmc.rows.items():
            assert series[0] <= series[-1] * 1.3, (dataset, method)
        # SPR beats TourTree and QuickSelect at the default k=10 column.
        k10 = tmc.columns.index("k=10")
        assert tmc.rows["spr"][k10] < tmc.rows["tournament"][k10]
        assert tmc.rows["spr"][k10] < tmc.rows["quickselect"][k10]
        # HeapSort's latency dwarfs everyone else's at k=10.
        assert latency.rows["heapsort"][k10] == max(
            latency.rows[m][k10] for m in latency.rows
        )
