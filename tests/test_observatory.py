"""The HTTP observatory: endpoints, progress plumbing, serving invariance."""

import json
import re
import threading
import urllib.error
import urllib.request

import pytest

from repro import load_dataset, spr_topk
from repro.telemetry import (
    FlightRecorder,
    MetricsRegistry,
    ObservatoryServer,
    QueryBoard,
    parse_address,
    use_registry,
)
from tests.conftest import make_latent_session
from tests.test_telemetry import PROMETHEUS_LINE

SCORES = [0.0, 1.5, 3.0, 4.5, 6.0, 7.5, 9.0, 10.5]


def _get(url: str) -> tuple[int, str, str]:
    """(status, body, content-type) of a GET, errors included."""
    try:
        with urllib.request.urlopen(url) as resp:
            return resp.status, resp.read().decode(), resp.headers["Content-Type"]
    except urllib.error.HTTPError as err:
        return err.code, err.read().decode(), err.headers["Content-Type"]


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("0.0.0.0:9188") == ("0.0.0.0", 9188)

    def test_bare_port_defaults_to_loopback(self):
        assert parse_address("9188") == ("127.0.0.1", 9188)

    def test_colon_port(self):
        assert parse_address(":0") == ("127.0.0.1", 0)

    def test_rejects_non_numeric_port(self):
        with pytest.raises(ValueError):
            parse_address("localhost:http")


class TestQueryBoard:
    def test_register_progress_unregister(self):
        board = QueryBoard()
        session = make_latent_session(SCORES)
        board.register("q1", session)
        assert board.names() == ["q1"]
        doc = board.progress()
        assert doc["queries"][0]["query"] == "q1"
        assert doc["queries"][0]["cost"] == 0
        board.unregister("q1")
        board.unregister("q1")  # idempotent
        assert board.progress() == {"queries": []}

    def test_broken_session_degrades_to_error_entry(self):
        class Broken:
            def progress(self):
                raise RuntimeError("torn read")

        board = QueryBoard()
        board.register("bad", Broken())
        entry = board.progress()["queries"][0]
        assert entry["query"] == "bad"
        assert "RuntimeError" in entry["error"]


class TestEndpoints:
    @pytest.fixture
    def observatory(self):
        registry = MetricsRegistry()
        registry.counter("crowd_microtasks_total").inc(42)
        registry.counter("c_total", path='a"b\\c').inc()
        registry.describe("c_total", "odd\\path\nmetric")
        recorder = FlightRecorder(capacity=8)
        recorder.attach(registry=registry)
        registry.emit("fault", mode="loss", count=1)
        registry.emit("checkpoint", path="x.ckpt")
        with ObservatoryServer(registry=registry, recorder=recorder) as obs:
            obs.queries.register("demo", make_latent_session(SCORES))
            yield obs

    def test_metrics_scrape_is_conformant_prometheus(self, observatory):
        status, body, ctype = _get(observatory.url + "/metrics")
        assert status == 200
        assert ctype == "text/plain; version=0.0.4; charset=utf-8"
        for line in body.splitlines():
            assert PROMETHEUS_LINE.match(line), line
        assert "crowd_microtasks_total 42" in body

    def test_escapes_round_trip_through_a_real_scrape(self, observatory):
        _, body, _ = _get(observatory.url + "/metrics")
        # label escaping: backslash and quote
        assert 'c_total{path="a\\"b\\\\c"} 1' in body
        # help escaping: backslash and newline (stays one line)
        assert "# HELP c_total odd\\\\path\\nmetric" in body

    def test_healthz(self, observatory):
        status, body, ctype = _get(observatory.url + "/healthz")
        assert status == 200
        assert ctype.startswith("application/json")
        doc = json.loads(body)
        assert doc["status"] == "ok"
        assert doc["queries"] == ["demo"]
        assert doc["recorder_events"] == 2

    def test_queries_endpoint_reports_live_progress(self, observatory):
        status, body, _ = _get(observatory.url + "/queries")
        assert status == 200
        entry = json.loads(body)["queries"][0]
        assert entry["query"] == "demo"
        for key in ("phase", "cost", "budget_cap", "rounds", "comparisons"):
            assert key in entry

    def test_events_endpoint_tails_the_recorder(self, observatory):
        _, body, _ = _get(observatory.url + "/events?n=1")
        doc = json.loads(body)
        assert len(doc["events"]) == 1
        assert doc["events"][0]["type"] == "checkpoint"
        assert doc["events_seen"] == 2

    def test_events_rejects_non_integer_n(self, observatory):
        status, body, _ = _get(observatory.url + "/events?n=soon")
        assert status == 400
        assert "integer" in json.loads(body)["error"]

    def test_unknown_route_404_lists_routes(self, observatory):
        status, body, _ = _get(observatory.url + "/nope")
        assert status == 404
        assert "/metrics" in json.loads(body)["routes"]

    def test_requests_are_counted_per_route(self, observatory):
        _get(observatory.url + "/healthz")
        _get(observatory.url + "/healthz")
        registry = observatory.registry
        assert (
            registry.counter_value("observatory_requests_total", route="/healthz")
            >= 2
        )


class TestServerLifecycle:
    def test_ephemeral_port_resolves_and_stop_is_idempotent(self):
        obs = ObservatoryServer(registry=MetricsRegistry())
        assert obs.port == 0
        obs.start()
        try:
            assert obs.port != 0
            assert obs.running
            assert re.match(r"http://127\.0\.0\.1:\d+$", obs.url)
        finally:
            obs.stop()
        assert not obs.running
        obs.stop()  # second stop is a no-op

    def test_events_without_recorder_is_empty(self):
        with ObservatoryServer(registry=MetricsRegistry()) as obs:
            _, body, _ = _get(obs.url + "/events")
            assert json.loads(body) == {
                "capacity": 0, "events_seen": 0, "events": [],
            }


def _run_query(seed: int, serve: bool):
    """One small SPR query; returns (topk, cost, rounds, rng_state)."""
    dataset = load_dataset("jester")
    working = dataset.sample_items(20)
    with use_registry(MetricsRegistry()) as registry:
        session = dataset.session(seed=seed)
        if serve:
            recorder = FlightRecorder()
            recorder.attach(registry=registry, session=session)
            stop = threading.Event()
            hits = {"n": 0}

            def scrape(url):
                while not stop.is_set():
                    for route in ("/metrics", "/queries", "/events", "/healthz"):
                        _get(url + route)
                        hits["n"] += 1

            with ObservatoryServer(registry=registry, recorder=recorder) as obs:
                obs.queries.register("invariance", session)
                scraper = threading.Thread(target=scrape, args=(obs.url,))
                scraper.start()
                try:
                    result = spr_topk(session, working.ids.tolist(), k=5)
                finally:
                    stop.set()
                    scraper.join()
            assert hits["n"] > 0  # the query really ran under scraping
        else:
            result = spr_topk(session, working.ids.tolist(), k=5)
    return (
        result.topk,
        session.total_cost,
        session.total_rounds,
        session.rng.bit_generator.state,
    )


class TestServingInvariance:
    def test_scraped_query_is_bit_identical_to_unserved(self):
        served = _run_query(seed=11, serve=True)
        unserved = _run_query(seed=11, serve=False)
        assert served[0] == unserved[0]  # same top-k
        assert served[1] == unserved[1]  # same microtask cost
        assert served[2] == unserved[2]  # same latency rounds
        assert served[3] == unserved[3]  # same RNG state, bit for bit
