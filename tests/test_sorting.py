"""Crowd-powered ordering primitives."""

import pytest

from repro.core.sorting import (
    bubble_sort_to_median,
    crowd_max,
    crowd_max_many,
    median_of_multiset,
    odd_even_sort,
)
from repro.errors import AlgorithmError
from tests.conftest import make_latent_session


def _clean_session(scores, **kwargs):
    """Session over well-separated scores: crowd sorting is exact."""
    defaults = dict(sigma=0.2, seed=3)
    defaults.update(kwargs)
    return make_latent_session(scores, **defaults)


class TestCrowdMax:
    def test_finds_best(self):
        session = _clean_session([0.0, 10.0, 5.0, 2.0, 8.0])
        assert crowd_max(session, [0, 1, 2, 3, 4]) == 1

    def test_duplicates_collapsed(self):
        session = _clean_session([0.0, 10.0])
        assert crowd_max(session, [0, 1, 1, 0, 1]) == 1

    def test_single_item_costs_nothing(self):
        session = _clean_session([1.0, 2.0])
        assert crowd_max(session, [0]) == 0
        assert session.total_cost == 0

    def test_empty_rejected(self):
        session = _clean_session([1.0])
        with pytest.raises(AlgorithmError):
            crowd_max(session, [])

    def test_latency_is_logarithmic_in_entrants(self):
        session = _clean_session(list(range(16)), min_workload=2, batch_size=10)
        crowd_max(session, list(range(16)))
        # 4 knockout levels, each one parallel group of cheap comparisons.
        assert session.total_rounds <= 8


class TestCrowdMaxMany:
    def test_matches_individual_maxima(self):
        scores = [0.0, 3.0, 6.0, 9.0, 12.0, 15.0]
        session = _clean_session(scores)
        samples = [[0, 3, 5], [1, 2], [4, 0, 1, 2]]
        maxima = crowd_max_many(session, samples)
        assert maxima == [5, 2, 4]

    def test_lockstep_latency_beats_sequential(self):
        scores = list(range(0, 64, 2))
        parallel = _clean_session(scores, min_workload=2, batch_size=10)
        crowd_max_many(parallel, [list(range(16)), list(range(16, 32))])
        sequential = _clean_session(scores, min_workload=2, batch_size=10)
        crowd_max(sequential, list(range(16)))
        crowd_max(sequential, list(range(16, 32)))
        assert parallel.total_rounds <= sequential.total_rounds

    def test_empty_sample_rejected(self):
        session = _clean_session([1.0, 2.0])
        with pytest.raises(AlgorithmError):
            crowd_max_many(session, [[0], []])


class TestOddEvenSort:
    def test_sorts_best_first(self):
        session = _clean_session([2.0, 8.0, 0.0, 6.0, 4.0])
        assert odd_even_sort(session, [0, 1, 2, 3, 4]) == [1, 3, 4, 0, 2]

    def test_presorted_input_is_cheap(self):
        session = _clean_session(list(range(0, 20, 2)))
        sorted_once = odd_even_sort(session, list(range(10)))
        cost_first = session.total_cost
        again = odd_even_sort(session, sorted_once[::-1], initial_order=sorted_once)
        assert again == sorted_once
        # the good initial order only re-verifies adjacent pairs (cached).
        assert session.total_cost == cost_first

    def test_initial_order_must_be_permutation(self):
        session = _clean_session([1.0, 2.0, 3.0])
        with pytest.raises(AlgorithmError):
            odd_even_sort(session, [0, 1, 2], initial_order=[0, 1])

    def test_duplicates_rejected(self):
        session = _clean_session([1.0, 2.0])
        with pytest.raises(AlgorithmError):
            odd_even_sort(session, [0, 0, 1])

    def test_trivial_inputs(self):
        session = _clean_session([1.0, 2.0])
        assert odd_even_sort(session, []) == []
        assert odd_even_sort(session, [1]) == [1]


class TestMedianSelection:
    def test_bubble_median_odd(self):
        session = _clean_session([0.0, 2.0, 4.0, 6.0, 8.0])
        # Ranked best-first: 4,3,2,1,0 → median is item 2.
        assert bubble_sort_to_median(session, [0, 1, 2, 3, 4]) == 2

    def test_bubble_median_single(self):
        session = _clean_session([1.0, 2.0])
        assert bubble_sort_to_median(session, [1]) == 1

    def test_bubble_median_handles_duplicates(self):
        session = _clean_session([0.0, 5.0, 10.0])
        # Multiset {2, 2, 1}: upper median is 2.
        assert bubble_sort_to_median(session, [2, 2, 1]) == 2

    def test_bubble_median_empty_rejected(self):
        session = _clean_session([1.0])
        with pytest.raises(AlgorithmError):
            bubble_sort_to_median(session, [])

    def test_multiset_median_counts_multiplicity(self):
        session = _clean_session([0.0, 5.0, 10.0])
        # {0, 1, 1, 1, 2}: median (3rd best of 5) is 1.
        assert median_of_multiset(session, [0, 1, 1, 1, 2]) == 1

    def test_multiset_median_agrees_with_bubble(self):
        scores = [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
        ids = [3, 0, 6, 1, 5, 2, 4]
        a = bubble_sort_to_median(_clean_session(scores), ids)
        b = median_of_multiset(_clean_session(scores), ids)
        assert a == b


class TestMergeSort:
    def test_sorts_best_first(self):
        from repro.core.sorting import merge_sort

        session = _clean_session([2.0, 8.0, 0.0, 6.0, 4.0])
        assert merge_sort(session, [0, 1, 2, 3, 4]) == [1, 3, 4, 0, 2]

    def test_trivial_inputs(self):
        from repro.core.sorting import merge_sort

        session = _clean_session([1.0, 2.0])
        assert merge_sort(session, []) == []
        assert merge_sort(session, [1]) == [1]

    def test_duplicates_rejected(self):
        from repro.core.sorting import merge_sort

        session = _clean_session([1.0, 2.0])
        with pytest.raises(AlgorithmError):
            merge_sort(session, [0, 0])

    def test_cost_is_input_independent(self):
        from repro.core.sorting import merge_sort

        scores = list(range(0, 32, 2))
        sorted_in = _clean_session(scores, min_workload=2)
        merge_sort(sorted_in, list(range(15, -1, -1)))  # already sorted
        shuffled_in = _clean_session(scores, min_workload=2)
        order = list(range(16))
        shuffled_in.rng.shuffle(order)
        merge_sort(shuffled_in, order)
        # comparison counts differ by at most the merge path variance
        assert abs(sorted_in.cost.comparisons - shuffled_in.cost.comparisons) < 20


class TestInsertionSort:
    def test_sorts_best_first(self):
        from repro.core.sorting import insertion_sort

        session = _clean_session([2.0, 8.0, 0.0, 6.0, 4.0])
        assert insertion_sort(session, [0, 1, 2, 3, 4]) == [1, 3, 4, 0, 2]

    def test_adaptive_on_sorted_input(self):
        from repro.core.sorting import insertion_sort, merge_sort

        scores = list(range(0, 40, 2))
        presorted = list(range(19, -1, -1))  # best first already
        cheap = _clean_session(scores, min_workload=2)
        insertion_sort(cheap, presorted)
        steep = _clean_session(scores, min_workload=2)
        merge_sort(steep, presorted)
        # n-1 comparisons vs n log n: adaptivity pays.
        assert cheap.cost.comparisons < steep.cost.comparisons

    def test_initial_order_must_be_permutation(self):
        from repro.core.sorting import insertion_sort

        session = _clean_session([1.0, 2.0, 3.0])
        with pytest.raises(AlgorithmError):
            insertion_sort(session, [0, 1, 2], initial_order=[0, 1])

    def test_agrees_with_odd_even(self):
        from repro.core.sorting import insertion_sort, odd_even_sort

        scores = [float(i) for i in range(12)]
        a = insertion_sort(_clean_session(scores), list(range(12)))
        b = odd_even_sort(_clean_session(scores), list(range(12)))
        assert a == b == list(range(11, -1, -1))
