"""Cross-subsystem operational scenarios.

Each test chains several subsystems the way a deployment would — these are
the seams unit tests cannot see.
"""

import numpy as np
import pytest

from repro import (
    ComparisonConfig,
    CrowdSession,
    LatentScoreOracle,
    SPRConfig,
    load_cache,
    ndcg_at_k,
    plan_query,
    save_cache,
    spr_topk,
    trace_session,
)
from repro.crowd.marketplace import MarketplaceModel, rounds_from_session
from repro.crowd.workers import GaussianNoise
from repro.crowd.workforce import Workforce, WorkforceOracle
from repro.extensions import insert_item, session_bill
from repro.stats.planning import predict_infimum_cost
from tests.conftest import make_items


SCORES = np.linspace(0.0, 8.0, 30)


def fresh_session(seed=0, **config_kwargs):
    defaults = dict(confidence=0.95, budget=500, min_workload=10, batch_size=10)
    defaults.update(config_kwargs)
    oracle = LatentScoreOracle(SCORES, GaussianNoise(0.8))
    return CrowdSession(oracle, ComparisonConfig(**defaults), seed=seed)


class TestPlanRunAuditLoop:
    def test_plan_then_run_then_bill(self):
        plan = plan_query(
            30, 5, target_precision=0.5, score_spread=float(SCORES.std()),
            noise_sigma=0.8,
        )
        session = fresh_session(seed=3, confidence=plan.config.confidence,
                                budget=plan.config.budget)
        result = spr_topk(
            session, list(range(30)), 5, SPRConfig(comparison=session.config)
        )
        bill = session_bill(session)
        assert bill.microtasks == result.cost
        # the plan's floor is a lower bound up to model error
        floor = predict_infimum_cost(
            SCORES, 5, 0.8, session.config.alpha,
            min_workload=10, budget=plan.config.budget,
        )
        assert bill.microtasks > 0.3 * floor

    def test_trace_marketplace_chain(self):
        session = fresh_session(seed=5)
        trace = trace_session(session)
        spr_topk(session, list(range(30)), 4)
        trace.finish(session)
        report = MarketplaceModel(n_workers=15).simulate(
            rounds_from_session(session), seed=1
        )
        assert report.tasks_posted >= session.total_cost
        assert report.hours > 0
        assert sum(s.cost for s in trace.phase_summaries()) == session.total_cost


class TestPersistenceAcrossSubsystems:
    def test_query_persist_insert_next_day(self, tmp_path):
        day1 = fresh_session(seed=7)
        result = spr_topk(day1, list(range(29)), 5)  # item 29 arrives later
        save_cache(day1.cache, tmp_path / "bags.npz")

        day2 = fresh_session(seed=8)
        day2.cache = load_cache(tmp_path / "bags.npz")
        day2.comparator.cache = day2.cache
        updated = insert_item(day2, list(result.topk), 29)
        assert updated.accepted  # item 29 has the best score
        assert updated.topk[0] == 29

    def test_workforce_sessions_share_nothing_but_the_pool(self):
        force = Workforce.generate(20, seed=1, spammer_rate=0.1)
        base = LatentScoreOracle(SCORES, GaussianNoise(0.8))
        oracle = WorkforceOracle(base, force)
        a = CrowdSession(oracle, ComparisonConfig(
            confidence=0.95, budget=500, min_workload=10), seed=1)
        b = CrowdSession(oracle, ComparisonConfig(
            confidence=0.95, budget=500, min_workload=10), seed=2)
        ra = spr_topk(a, list(range(30)), 3)
        rb = spr_topk(b, list(range(30)), 3)
        # independent bills, plausible answers from both
        assert a.total_cost > 0 and b.total_cost > 0
        items = make_items(SCORES)
        assert ndcg_at_k(items, ra.topk, 3) > 0.5
        assert ndcg_at_k(items, rb.topk, 3) > 0.5
        # the shared workforce answered for both sessions
        assert sum(oracle.answers_by_worker.values()) >= a.total_cost + b.total_cost


class TestRepeatedQueriesAmortize:
    def test_second_query_much_cheaper(self):
        session = fresh_session(seed=9)
        first = spr_topk(session, list(range(30)), 5)
        second = spr_topk(session, list(range(30)), 5)
        assert second.cost < first.cost * 0.6

    @pytest.mark.faultfree  # cost comparison pinned to fault-free draws
    def test_growing_k_cheaper_warm_than_cold(self):
        # Re-querying with a larger k on the same session (warm bags) must
        # undercut the same k=8 query on a cold session: the selection and
        # partition machinery differs per k, but most pairwise evidence
        # transfers through the cache.
        warm = fresh_session(seed=10)
        spr_topk(warm, list(range(30)), 5)
        cost_after_first = warm.total_cost
        top8_warm = spr_topk(warm, list(range(30)), 8)
        incremental = warm.total_cost - cost_after_first

        cold = fresh_session(seed=10)
        spr_topk(cold, list(range(30)), 8)
        assert incremental < cold.total_cost
        assert len(top8_warm.topk) == 8
