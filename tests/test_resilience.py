"""Fault injection, retry/backoff/deadline policies, and their accounting.

The resilience layer's central contract is twofold: with every fault rate
at zero, execution is bit-for-bit identical to a platform that never
fails; with faults on, lost work is never charged and undeliverable pairs
degrade to ties instead of wedging the query.
"""

import numpy as np
import pytest

from repro.config import (
    FAULT_RATE_ENV,
    ComparisonConfig,
    FaultPolicy,
    ResiliencePolicy,
    RetryPolicy,
    default_resilience,
)
from repro.core.outcomes import Outcome
from repro.crowd.faults import FaultInjector
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.pool import RacingPool
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import ConfigError
from repro.telemetry import MetricsRegistry, use_registry
from tests.conftest import make_latent_session

SCORES = [0.0, 1.5, 3.0, 4.5, 6.0, 7.5]


def faulty_session(policy, retry=None, scores=SCORES, seed=0, **config_kwargs):
    """A latent-score session whose platform fails per ``policy``."""
    resilience = ResiliencePolicy(
        fault=policy, retry=retry if retry is not None else RetryPolicy()
    )
    return make_latent_session(
        scores, sigma=1.0, seed=seed, resilience=resilience, **config_kwargs
    )


class TestPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"timeout_rate": -0.1},
            {"loss_rate": 1.0},
            {"duplicate_rate": 2.0},
            {"outage_rate": -1e-9},
            {"timeout_rate": 0.6, "loss_rate": 0.5},  # sum must stay < 1
        ],
    )
    def test_bad_fault_rates_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultPolicy(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1},
            {"backoff_factor": 0.5},
            {"backoff_base": 4, "backoff_max": 2},
            {"deadline_rounds": 0},
        ],
    )
    def test_bad_retry_params_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            RetryPolicy(**kwargs)

    def test_negative_checkpoint_cadence_rejected(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy(checkpoint_every=-1)

    def test_resilience_must_be_policy(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(resilience={"fault": {}})  # type: ignore[arg-type]

    def test_enabled_and_active_flags(self):
        assert not FaultPolicy().enabled
        assert FaultPolicy(loss_rate=0.1).enabled
        assert not ResiliencePolicy().active
        assert ResiliencePolicy(fault=FaultPolicy(timeout_rate=0.1)).active
        assert ResiliencePolicy(retry=RetryPolicy(deadline_rounds=5)).active

    def test_backoff_schedule_is_exponential_and_capped(self):
        retry = RetryPolicy(backoff_base=1, backoff_factor=2.0, backoff_max=16)
        assert [retry.backoff_rounds(f) for f in range(1, 7)] == [1, 2, 4, 8, 16, 16]
        assert retry.backoff_rounds(0) == 0
        assert RetryPolicy(backoff_base=0).backoff_rounds(3) == 0

    def test_injector_refuses_stacking(self):
        oracle = LatentScoreOracle(np.asarray(SCORES), GaussianNoise(1.0))
        inner = FaultInjector(oracle, FaultPolicy(loss_rate=0.1))
        with pytest.raises(ValueError):
            FaultInjector(inner, FaultPolicy())


class TestEnvironmentKnob:
    def test_unset_means_no_faults(self, monkeypatch):
        monkeypatch.delenv(FAULT_RATE_ENV, raising=False)
        assert not default_resilience().active

    def test_rate_splits_between_timeout_and_loss(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0.1")
        policy = default_resilience().fault
        assert policy.timeout_rate == pytest.approx(0.05)
        assert policy.loss_rate == pytest.approx(0.05)
        # ComparisonConfig built without an explicit policy inherits it.
        assert ComparisonConfig().resilience.active

    def test_zero_and_garbage_values(self, monkeypatch):
        monkeypatch.setenv(FAULT_RATE_ENV, "0")
        assert not default_resilience().active
        monkeypatch.setenv(FAULT_RATE_ENV, "not-a-float")
        with pytest.raises(ConfigError):
            default_resilience()


class TestAutoWrap:
    def test_session_wraps_oracle_when_faults_enabled(self):
        session = faulty_session(FaultPolicy(loss_rate=0.2))
        assert isinstance(session.oracle, FaultInjector)

    def test_session_leaves_oracle_bare_when_fault_free(self):
        session = make_latent_session(SCORES, resilience=ResiliencePolicy())
        assert not isinstance(session.oracle, FaultInjector)

    def test_fork_keeps_injector(self):
        session = faulty_session(FaultPolicy(loss_rate=0.2))
        fork = session.fork(budget=200)
        assert isinstance(fork.oracle, FaultInjector)

    def test_fork_rewraps_replacement_oracle(self):
        session = faulty_session(FaultPolicy(loss_rate=0.2))
        fresh = LatentScoreOracle(np.asarray(SCORES), GaussianNoise(1.0))
        fork = session.fork(oracle=fresh)
        assert isinstance(fork.oracle, FaultInjector)
        assert fork.oracle.base is fresh


class TestZeroFaultBitIdentity:
    """force=True routes through the fault-aware path with no faults: the
    results must match the historical code path bit for bit."""

    @pytest.mark.parametrize("engine", ["racing", "sequential"])
    def test_forced_injector_matches_unwrapped(self, engine):
        pairs = [(5, 0), (4, 1), (3, 2), (2, 1)]
        plain = make_latent_session(
            SCORES, seed=11, group_engine=engine, resilience=ResiliencePolicy()
        )
        expected = plain.compare_many(pairs)

        oracle = LatentScoreOracle(np.asarray(SCORES), GaussianNoise(1.0))
        wrapped = CrowdSession(
            FaultInjector(oracle, FaultPolicy(), force=True),
            plain.config,
            seed=11,
        )
        assert wrapped.compare_many(pairs) == expected
        assert wrapped.total_cost == plain.total_cost
        assert wrapped.total_rounds == plain.total_rounds

    def test_zero_rate_policy_does_not_wrap_or_disturb(self):
        plain = make_latent_session(SCORES, seed=3, resilience=ResiliencePolicy())
        config_zero = plain.config.with_(resilience=ResiliencePolicy())
        other = CrowdSession(
            LatentScoreOracle(np.asarray(SCORES), GaussianNoise(1.0)),
            config_zero,
            seed=3,
        )
        assert other.compare(5, 0) == plain.compare(5, 0)


class TestFaultAccounting:
    def test_lost_tasks_are_never_charged(self):
        with use_registry(MetricsRegistry()) as registry:
            session = faulty_session(
                FaultPolicy(timeout_rate=0.2, loss_rate=0.1, seed=5), seed=5
            )
            session.compare_many([(5, 0), (4, 1), (3, 2)])
            drawn = registry.counter_value("oracle_judgments_total")
            dropped = registry.counter_value(
                "crowd_faults_total", mode="timeout"
            ) + registry.counter_value("crowd_faults_total", mode="loss")
        spent = session.total_cost
        assert dropped > 0
        # Every charged microtask is a delivered judgment: what the oracle
        # produced minus what the platform dropped bounds the bill.
        assert drawn - dropped >= spent

    def test_charged_work_is_cached(self):
        session = faulty_session(
            FaultPolicy(timeout_rate=0.15, loss_rate=0.1, duplicate_rate=0.1, seed=2),
            seed=2,
        )
        session.compare_many([(5, 0), (4, 1), (3, 2), (2, 0)])
        assert session.cache.total_samples == session.cost.microtasks

    def test_outage_burns_latency_but_no_cost(self):
        # outage_rate ~1 is forbidden; 0.97 makes the first rounds outages
        # with overwhelming probability under a pinned fault seed.
        session = faulty_session(
            FaultPolicy(outage_rate=0.97, seed=0),
            retry=RetryPolicy(max_attempts=2, backoff_base=0),
        )
        record = session.compare(5, 0)
        assert record.outcome is Outcome.TIE
        assert record.cost == 0
        assert record.rounds >= 2  # the clock ticked while the platform was down

    def test_fault_telemetry_counts_by_mode(self):
        with use_registry(MetricsRegistry()) as registry:
            session = faulty_session(
                FaultPolicy(
                    timeout_rate=0.15,
                    loss_rate=0.1,
                    duplicate_rate=0.1,
                    outage_rate=0.05,
                    seed=7,
                ),
                seed=7,
            )
            session.compare_many([(5, 0), (4, 1), (3, 2), (2, 0), (5, 1)])
            for mode in ("timeout", "loss", "duplicate"):
                assert registry.counter_value("crowd_faults_total", mode=mode) > 0


class TestDegradeToTie:
    def test_exhausted_retries_degrade_to_tie(self):
        with use_registry(MetricsRegistry()) as registry:
            session = faulty_session(
                # Nothing ever delivers: timeout+loss ~ 0.98.
                FaultPolicy(timeout_rate=0.49, loss_rate=0.49, seed=1),
                retry=RetryPolicy(max_attempts=2, backoff_base=0),
                batch_size=2,
            )
            record = session.compare(5, 0)
            assert record.outcome is Outcome.TIE
            assert record.cost == 0
            assert (
                registry.counter_value("crowd_degraded_ties_total", reason="retries")
                >= 1
            )
            assert registry.counter_value("crowd_retries_total") >= 1

    def test_racing_pool_degrades_undeliverable_pairs(self):
        with use_registry(MetricsRegistry()) as registry:
            session = faulty_session(
                FaultPolicy(timeout_rate=0.49, loss_rate=0.49, seed=3),
                retry=RetryPolicy(max_attempts=2, backoff_base=0),
                group_engine="racing",
            )
            records = session.compare_many([(5, 0), (4, 1)])
            assert all(r.outcome is Outcome.TIE for r in records)
            assert (
                registry.counter_value("crowd_degraded_ties_total", reason="retries")
                >= 2
            )

    @pytest.mark.parametrize("engine", ["racing", "sequential"])
    def test_deadline_degrades_slow_pairs(self, engine):
        with use_registry(MetricsRegistry()) as registry:
            # Close scores + tiny batches: no verdict inside one round, so
            # the 1-round deadline fires even on a fault-free platform.
            session = make_latent_session(
                [0.0, 0.01],
                sigma=3.0,
                seed=0,
                batch_size=5,
                min_workload=30,
                group_engine=engine,
                resilience=ResiliencePolicy(
                    retry=RetryPolicy(deadline_rounds=1)
                ),
            )
            record = session.compare_many([(1, 0)])[0]
            assert record.outcome is Outcome.TIE
            assert (
                registry.counter_value("crowd_degraded_ties_total", reason="deadline")
                >= 1
            )

    def test_backoff_delays_reposting(self):
        # One pair, everything dropped: with backoff_base=2 and factor 2 the
        # retry waits stretch (2, 4, ...) so total rounds far exceed attempts.
        session = faulty_session(
            FaultPolicy(timeout_rate=0.49, loss_rate=0.49, seed=4),
            retry=RetryPolicy(max_attempts=3, backoff_base=2, backoff_factor=2.0),
            batch_size=2,
        )
        record = session.compare(5, 0)
        assert record.outcome is Outcome.TIE
        # 3 failed posts plus backoff waits of >= 2 + 4 rounds in between.
        assert record.rounds >= 5


class TestFaultyPoolResolution:
    def test_faulty_racing_pool_still_finds_right_answers(self):
        session = faulty_session(
            FaultPolicy(timeout_rate=0.1, loss_rate=0.05, duplicate_rate=0.05, seed=9),
            seed=9,
            group_engine="racing",
        )
        pool = RacingPool(session, [(5, 0), (4, 0), (3, 0)])
        while not pool.is_done:
            pool.round()
        # Well-separated pairs: faults delay but do not flip verdicts.
        assert all(int(code) == 1 for code in pool.status[:3])

    def test_deterministic_given_fault_seed(self):
        def run():
            session = faulty_session(
                FaultPolicy(timeout_rate=0.2, loss_rate=0.1, seed=6), seed=6
            )
            records = session.compare_many([(5, 0), (4, 1), (3, 2)])
            return [
                (r.outcome, r.workload, r.cost, r.rounds) for r in records
            ], session.total_cost

        assert run() == run()
