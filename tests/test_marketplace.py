"""The discrete-event marketplace simulator."""

import numpy as np
import pytest

from repro.crowd.marketplace import (
    MarketplaceModel,
    MarketplaceReport,
    rounds_from_session,
)
from tests.conftest import make_latent_session


class TestModelValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            MarketplaceModel(n_workers=0)
        with pytest.raises(ValueError):
            MarketplaceModel(answer_seconds=0)
        with pytest.raises(ValueError):
            MarketplaceModel(answer_cv=-0.1)
        with pytest.raises(ValueError):
            MarketplaceModel(pickup_seconds=-1)
        with pytest.raises(ValueError):
            MarketplaceModel(abandonment_rate=1.0)

    def test_rejects_negative_round(self):
        with pytest.raises(ValueError):
            MarketplaceModel().simulate([10, -1])


class TestSimulation:
    def test_deterministic_answer_times(self):
        model = MarketplaceModel(
            n_workers=10, answer_seconds=10.0, answer_cv=0.0,
            pickup_seconds=0.0, abandonment_rate=0.0,
        )
        report = model.simulate([100], seed=0)
        # 100 ten-second tasks on 10 workers = exactly 100 seconds.
        assert report.total_seconds == pytest.approx(100.0)
        assert report.tasks_posted == 100
        assert report.tasks_reposted == 0
        assert report.utilization == pytest.approx(1.0)

    def test_more_workers_finish_faster(self):
        rounds = [500]
        slow = MarketplaceModel(n_workers=5).simulate(rounds, seed=1)
        fast = MarketplaceModel(n_workers=50).simulate(rounds, seed=1)
        assert fast.total_seconds < slow.total_seconds

    def test_rounds_are_sequential(self):
        model = MarketplaceModel(n_workers=10, answer_cv=0.0,
                                 pickup_seconds=0.0, abandonment_rate=0.0)
        split = model.simulate([50, 50], seed=2)
        together = model.simulate([100], seed=2)
        assert split.total_seconds == pytest.approx(
            sum(split.round_seconds)
        )
        # Two sequential half-batches cannot beat one batch on idle time.
        assert split.total_seconds >= together.total_seconds - 1e-9

    def test_abandonment_causes_reposts(self):
        model = MarketplaceModel(abandonment_rate=0.3)
        report = model.simulate([500], seed=3)
        assert report.tasks_reposted > 0
        assert report.tasks_posted == 500 + report.tasks_reposted

    def test_empty_rounds_are_free(self):
        report = MarketplaceModel().simulate([0, 0], seed=0)
        assert report.total_seconds == 0.0
        assert report.round_seconds == (0.0, 0.0)

    def test_deterministic_given_seed(self):
        model = MarketplaceModel()
        a = model.simulate([200, 100], seed=9)
        b = model.simulate([200, 100], seed=9)
        assert a == b

    def test_skewed_answers_stretch_the_tail(self):
        tight = MarketplaceModel(answer_cv=0.0, abandonment_rate=0.0,
                                 pickup_seconds=0.0)
        skewed = MarketplaceModel(answer_cv=2.0, abandonment_rate=0.0,
                                  pickup_seconds=0.0)
        rounds = [300]
        base = tight.simulate(rounds, seed=4).total_seconds
        heavy = np.mean([
            skewed.simulate(rounds, seed=s).total_seconds for s in range(5)
        ])
        assert heavy > base  # the makespan is tail-dominated

    def test_summary(self):
        report = MarketplaceReport(
            total_seconds=7200.0, round_seconds=(7200.0,), tasks_posted=100,
            tasks_reposted=3, worker_busy_seconds=1000.0, n_workers=2,
        )
        assert "2.0 h" in report.summary()
        assert report.utilization == pytest.approx(1000.0 / (7200.0 * 2))


class TestSessionIntegration:
    def test_rounds_from_session_partition_totals(self):
        session = make_latent_session(
            [0.0, 2.0, 4.0, 0.1], sigma=1.0, batch_size=10
        )
        session.compare_many([(1, 0), (2, 3)])
        rounds = rounds_from_session(session)
        assert len(rounds) == session.total_rounds
        assert sum(rounds) == session.total_cost

    def test_empty_session(self):
        session = make_latent_session([0.0, 1.0])
        assert rounds_from_session(session) == []

    def test_end_to_end_projection(self):
        session = make_latent_session(
            [float(i) for i in range(10)], sigma=0.5,
            min_workload=5, batch_size=10,
        )
        from repro.core.spr import spr_topk

        spr_topk(session, list(range(10)), 3)
        report = MarketplaceModel(n_workers=20).simulate(
            rounds_from_session(session), seed=5
        )
        assert report.total_seconds > 0
        assert report.tasks_posted >= session.total_cost
