"""Closed-form cost planning vs measured infimum."""

import numpy as np
import pytest

from repro.algorithms import infimum_estimate
from repro.config import ComparisonConfig
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.stats.planning import predict_infimum_cost, predict_pair_workload
from tests.conftest import make_items


class TestPairWorkload:
    def test_cold_start_floor(self):
        assert predict_pair_workload(10.0, 1.0, 0.05, min_workload=30) == 30.0

    def test_budget_ceiling(self):
        assert predict_pair_workload(0.001, 1.0, 0.05, budget=500) == 500.0

    def test_zero_gap_is_a_tie(self):
        assert predict_pair_workload(0.0, 1.0, 0.05, budget=800) == 800.0

    def test_unbounded_zero_gap_is_infinite(self):
        assert predict_pair_workload(0.0, 1.0, 0.05, budget=None) == float("inf")

    def test_interior_matches_student_fixed_point(self):
        from repro.stats.workload import student_workload

        gap, sigma, alpha = 0.3, 1.0, 0.05
        expected = student_workload(gap, sigma, alpha)
        assert 30 < expected < 1000  # interior of the clamp
        assert predict_pair_workload(gap, sigma, alpha) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            predict_pair_workload(1.0, 0.0, 0.05)
        with pytest.raises(ValueError):
            predict_pair_workload(1.0, 1.0, 0.05, min_workload=1)


class TestInfimumPrediction:
    def test_counts_lemma1_pairs(self):
        # All gaps huge: every pair costs exactly the cold start.
        scores = [0.0, 100.0, 200.0, 300.0, 400.0]
        predicted = predict_infimum_cost(scores, 2, 1.0, 0.05, min_workload=30)
        # k-1 = 1 adjacent + N-k = 3 prunes → 4 comparisons at the floor.
        assert predicted == pytest.approx(4 * 30.0)

    def test_prediction_tracks_measured_infimum(self):
        rng = np.random.default_rng(8)
        scores = rng.normal(0.0, 2.0, size=40)
        sigma = 1.0
        config = ComparisonConfig(confidence=0.95, budget=1000, min_workload=30)
        predicted = predict_infimum_cost(
            scores, 5, sigma * np.sqrt(2) / np.sqrt(2), config.alpha,
            min_workload=30, budget=1000,
        )
        items = make_items(scores)
        measured = []
        for seed in range(5):
            oracle = LatentScoreOracle(scores, GaussianNoise(sigma))
            session = CrowdSession(oracle, config, seed=seed)
            measured.append(infimum_estimate(session, items, 5).cost)
        ratio = np.mean(measured) / predicted
        assert 0.5 < ratio < 2.0

    def test_k_validated(self):
        with pytest.raises(ValueError):
            predict_infimum_cost([1.0, 2.0], 3, 1.0, 0.05)
