"""Bit-for-bit parity of the vectorized apply path against the pre-change path.

The array-native bookkeeping rewrite (batched record synthesis, bulk cache
appends, ``charge_many``, batched counters) must be invisible: record
streams, cache state, ledger totals, telemetry counters, RNG consumption
and the final top-k have to match the historical per-row path exactly.

The historical behaviour is pinned as a golden fixture
(``tests/golden/apply_parity.json``) generated **from the pre-change
tree** by ``scripts/gen_apply_parity_golden.py``; this suite re-runs the
same seeded queries and compares digests field for field.  Regenerating
the golden is only legitimate when a PR deliberately changes semantics —
the justification belongs in the PR description.

Two tiers:

* tier-1: the first :data:`TIER1_SEEDS` seeds of every variant (fast,
  every PR);
* statistical: all :data:`SEEDS` seeds per variant (the ≥200-seed
  acceptance bar, mirroring ``test_lattice_parity.py``).
"""

from __future__ import annotations

import hashlib
import json
import math
from pathlib import Path

import numpy as np
import pytest

from repro.config import (
    ComparisonConfig,
    FaultPolicy,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.core.spr import spr_topk
from repro.crowd.oracle import BinaryOracle, LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.telemetry import MetricsRegistry, use_registry

pytestmark = pytest.mark.faultfree  # digests pin fault-free (or self-seeded-fault) traces

GOLDEN_PATH = Path(__file__).parent / "golden" / "apply_parity.json"

#: Full statistical-tier seed counts per variant (student carries the
#: ≥200-seed acceptance bar; the other paths are cheaper spot checks).
SEEDS = {"student": 200, "stein": 60, "hoeffding": 60, "faulty": 60, "deadline": 40}
#: Seeds per variant in the tier-1 (every-PR) slice.
TIER1_SEEDS = 6

N_ITEMS, K = 12, 3


def _scores(seed: int) -> np.ndarray:
    return np.random.default_rng(seed + 9000).normal(0.0, 2.5, N_ITEMS)


def _config(variant: str, seed: int) -> ComparisonConfig:
    base = dict(confidence=0.95, budget=150, min_workload=5, batch_size=10)
    if variant == "stein":
        base["estimator"] = "stein"
    elif variant == "hoeffding":
        base["estimator"] = "hoeffding"
    elif variant == "faulty":
        base["resilience"] = ResiliencePolicy(
            fault=FaultPolicy(
                timeout_rate=0.05,
                loss_rate=0.025,
                duplicate_rate=0.02,
                outage_rate=0.01,
                seed=seed,
            )
        )
    elif variant == "deadline":
        base["resilience"] = ResiliencePolicy(
            retry=RetryPolicy(deadline_rounds=4)
        )
    elif variant != "student":
        raise ValueError(f"unknown variant {variant!r}")
    return ComparisonConfig(**base)


def _oracle(variant: str, seed: int):
    base = LatentScoreOracle(_scores(seed), GaussianNoise(1.0))
    return BinaryOracle(base) if variant == "hoeffding" else base


def _float_repr(value: float) -> str:
    """Exact, bit-stable rendering (NaNs collapse to one token)."""
    return "nan" if math.isnan(value) else float(value).hex()


def _record_line(record) -> str:
    return "|".join(
        (
            str(record.left),
            str(record.right),
            record.outcome.name,
            str(record.workload),
            str(record.cost),
            str(record.rounds),
            _float_repr(record.mean),
            _float_repr(record.std),
        )
    )


def _cache_digest(cache) -> str:
    sha = hashlib.sha256()
    cache.settle()  # fold deferred round batches before poking at _bags
    for key in sorted(cache._bags):
        bag = cache._bags[key]
        sha.update(
            f"{key}|{bag.size}|{_float_repr(bag.s1)}|{_float_repr(bag.s2)}|".encode()
        )
        sha.update(bag.view().tobytes())
    return sha.hexdigest()


def _counters(registry: MetricsRegistry) -> dict:
    snap = registry.snapshot()
    counters = {
        f"{c['name']}|{json.dumps(c['labels'], sort_keys=True)}": c["value"]
        for c in snap["counters"]
    }
    for h in snap["histograms"]:
        if h["name"].endswith("_seconds"):  # wall-clock: not deterministic
            continue
        counters[f"hist:{h['name']}|{json.dumps(h['labels'], sort_keys=True)}"] = [
            h["count"],
            _float_repr(h["sum"]),
        ]
    return counters


def run_case(variant: str, seed: int) -> dict:
    """One seeded SPR query; returns the full parity digest for the case."""
    with use_registry(MetricsRegistry()) as registry:
        session = CrowdSession(_oracle(variant, seed), _config(variant, seed), seed=seed)
        lines: list[str] = []
        session.add_compare_listener(lambda _s, r: lines.append(_record_line(r)))
        result = spr_topk(session, list(range(N_ITEMS)), K)
        return {
            "topk": [int(i) for i in result.topk],
            "cost": int(session.total_cost),
            "rounds": int(session.total_rounds),
            "comparisons": int(session.cost.comparisons),
            "rng": hashlib.sha256(
                repr(session.rng.bit_generator.state).encode()
            ).hexdigest(),
            "records": hashlib.sha256("\n".join(lines).encode()).hexdigest(),
            "n_records": len(lines),
            "cache": _cache_digest(session.cache),
            "counters": _counters(registry),
        }


def _golden() -> dict:
    if not GOLDEN_PATH.exists():  # pragma: no cover - repo invariant
        pytest.fail(
            f"{GOLDEN_PATH} missing; regenerate with "
            "scripts/gen_apply_parity_golden.py on a known-good tree"
        )
    return json.loads(GOLDEN_PATH.read_text())


def _check(variant: str, seed: int, golden: dict) -> list[str]:
    expected = golden["cases"][f"{variant}:{seed}"]
    actual = run_case(variant, seed)
    return [
        f"{variant}:{seed}:{field} expected {expected[field]!r} got {actual[field]!r}"
        for field in expected
        if actual.get(field) != expected[field]
    ]


class TestApplyParityTier1:
    """Every-PR slice: the first seeds of each variant, field-for-field."""

    @pytest.mark.parametrize("variant", sorted(SEEDS))
    def test_first_seeds_match_golden(self, variant):
        golden = _golden()
        diffs: list[str] = []
        for seed in range(TIER1_SEEDS):
            diffs.extend(_check(variant, seed, golden))
        assert not diffs, "\n".join(diffs[:10])


@pytest.mark.statistical
class TestApplyParityFull:
    """The ≥200-seed acceptance bar (statistical tier, one CI leg)."""

    @pytest.mark.parametrize("variant", sorted(SEEDS))
    def test_all_seeds_match_golden(self, variant):
        golden = _golden()
        diffs: list[str] = []
        for seed in range(SEEDS[variant]):
            diffs.extend(_check(variant, seed, golden))
        assert not diffs, f"{len(diffs)} field diffs; first: " + "\n".join(diffs[:5])
