"""RacingPool: equivalence with the sequential comparator, budgets, latency."""

import numpy as np
import pytest

from repro.crowd.pool import ACTIVE, DEACTIVATED, TIE, RacingPool
from tests.conftest import make_latent_session


class TestBasics:
    def test_all_pairs_resolve(self):
        session = make_latent_session([0.0, 2.0, 4.0, 6.0], sigma=0.5)
        pool = RacingPool(session, [(1, 0), (2, 0), (3, 0), (0, 3)])
        resolved = dict(pool.run_to_completion())
        assert resolved == {0: 1, 1: 1, 2: 1, 3: -1}
        assert pool.is_done

    def test_tie_at_budget(self):
        session = make_latent_session([1.0, 1.0], sigma=1.0, budget=40)
        pool = RacingPool(session, [(0, 1)])
        resolved = pool.run_to_completion()
        assert resolved == [(0, 0)]
        assert pool.status[0] == TIE
        assert pool.n[0] == 40

    def test_workload_matches_sequential_comparator(self):
        # Same seed → same oracle stream → identical stopping points when a
        # single pair races alone.
        scores = [0.0, 1.2]
        direct = make_latent_session(scores, sigma=1.0, seed=9)
        record = direct.compare(1, 0)

        pooled = make_latent_session(scores, sigma=1.0, seed=9)
        pool = RacingPool(pooled, [(1, 0)])
        (idx, code), = pool.run_to_completion()
        assert code == 1
        assert int(pool.n[idx]) == record.workload
        assert pooled.total_cost == record.cost

    def test_latency_one_round_per_racing_call(self):
        session = make_latent_session([0.0, 5.0, 0.0, 0.01], sigma=2.0, budget=100)
        pool = RacingPool(session, [(1, 0), (3, 2)])
        rounds = 0
        while not pool.is_done:
            pool.round()
            rounds += 1
            assert session.total_rounds == rounds
        drained = session.total_rounds
        pool.round()  # nothing active: free
        assert session.total_rounds == drained

    def test_charge_latency_disabled(self):
        session = make_latent_session([0.0, 5.0], sigma=1.0)
        pool = RacingPool(session, [(1, 0)], charge_latency=False)
        pool.run_to_completion()
        assert session.total_rounds == 0

    def test_invalid_step_rejected(self):
        session = make_latent_session([0.0, 1.0])
        pool = RacingPool(session, [(1, 0)])
        with pytest.raises(ValueError):
            pool.round(step=0)


class TestCacheIntegration:
    def test_consumed_samples_stored(self):
        session = make_latent_session([0.0, 3.0], sigma=0.5)
        pool = RacingPool(session, [(1, 0)])
        pool.run_to_completion()
        assert session.cache.count(1, 0) == int(pool.n[0])

    def test_replay_decides_without_cost(self):
        session = make_latent_session([0.0, 3.0], sigma=0.5)
        session.compare(1, 0)
        cost_before = session.total_cost
        pool = RacingPool(session, [(1, 0)])
        assert pool.initial_decisions == [(0, 1)]
        assert pool.is_done
        assert session.total_cost == cost_before

    def test_no_cache_mode_leaves_cache_empty(self):
        session = make_latent_session([0.0, 3.0], sigma=0.5)
        pool = RacingPool(session, [(1, 0)], use_cache=False)
        pool.run_to_completion()
        assert session.cache.total_samples == 0

    def test_replayed_tie_marked_at_init(self):
        session = make_latent_session([1.0, 1.0], sigma=1.0, budget=40)
        session.compare(0, 1)  # exhausts the pair budget
        pool = RacingPool(session, [(0, 1)])
        assert pool.initial_decisions == [(0, 0)]
        assert pool.is_done


class TestControls:
    def test_deactivate_stops_racing(self):
        session = make_latent_session([0.5, 0.5, 4.0], sigma=1.0, budget=100)
        pool = RacingPool(session, [(0, 1), (2, 0)])
        pool.deactivate(0)
        resolved = pool.run_to_completion()
        assert resolved == [(1, 1)]
        assert pool.status[0] == DEACTIVATED

    def test_moments_track_consumption(self):
        session = make_latent_session([0.0, 2.0], sigma=0.5)
        pool = RacingPool(session, [(1, 0)])
        pool.run_to_completion()
        n, mean, var = pool.moments(0)
        assert n == int(pool.n[0])
        assert mean == pytest.approx(2.0, abs=1.0)
        assert var >= 0.0

    def test_moments_empty(self):
        session = make_latent_session([0.0, 2.0])
        pool = RacingPool(session, [(1, 0)])
        n, mean, var = pool.moments(0)
        assert n == 0
        assert np.isnan(mean)

    def test_active_indices(self):
        session = make_latent_session([0.0, 0.05, 4.0], sigma=2.0, budget=200)
        pool = RacingPool(session, [(1, 0), (2, 0)])
        pool.round()
        # the far pair decided in round 1; the close pair keeps racing
        assert pool.active_indices.tolist() == [0]


class TestProgressSnapshot:
    """``progress()`` is the observatory's per-scrape view: it must agree
    with a naive per-pair reference, allocate no per-pair Python objects,
    and — called mid-round from another thread — never perturb the query."""

    @staticmethod
    def _reference(pool, step):
        # The slow, obviously-correct tally progress() must reproduce.
        statuses = [int(s) for s in pool.status]
        active = sum(s == ACTIVE for s in statuses)
        decided = sum(s in (1, -1) for s in statuses)
        ties = sum(s == TIE for s in statuses)
        if active:
            widest = pool.config.effective_budget - min(
                int(n) for n, s in zip(pool.n, statuses) if s == ACTIVE
            )
            est = max(-(-widest // max(step, 1)), 1)
        else:
            est = 0
        return {
            "pairs": pool.size,
            "active": active,
            "decided": decided,
            "ties": ties,
            "rounds_done": int(pool._rounds_done),
            "est_rounds_remaining": est,
            "consumed_microtasks": int(pool.n.sum()),
        }

    def test_matches_reference_every_round(self):
        session = make_latent_session(
            [0.0, 0.2, 3.0, 3.1, 6.0], sigma=2.0, budget=60
        )
        pool = RacingPool(session, [(1, 0), (2, 0), (3, 2), (4, 0), (4, 3)])
        step = session.config.batch_size
        assert pool.progress(step) == self._reference(pool, step)
        while not pool.is_done:
            pool.round()
            assert pool.progress(step) == self._reference(pool, step)
        done = pool.progress(step)
        assert done["active"] == 0
        assert done["est_rounds_remaining"] == 0
        assert done["decided"] + done["ties"] == pool.size

    def test_deactivated_pairs_counted_in_no_bucket(self):
        session = make_latent_session([0.0, 2.0, 4.0], sigma=0.5)
        pool = RacingPool(session, [(1, 0), (2, 0)])
        pool.deactivate(1)
        doc = pool.progress()
        assert doc["active"] == 1
        assert doc["decided"] == doc["ties"] == 0
        assert pool.status[1] == DEACTIVATED

    def test_mid_round_scrape_is_bit_invisible(self):
        """Hammering progress() from another thread mid-round leaves the
        query bit-identical to an unscraped twin (PR contract: scrapes
        serve from read-only SoA views, never from mutating state)."""
        import threading

        def run(scrape: bool):
            session = make_latent_session(
                [0.0, 0.4, 1.8, 2.2, 4.0, 4.1], sigma=1.5, seed=23, budget=80
            )
            pool = RacingPool(
                session, [(1, 0), (2, 1), (3, 2), (4, 3), (5, 4), (5, 0)]
            )
            stop = threading.Event()
            scrapes = {"n": 0}

            def hammer():
                while not stop.is_set():
                    doc = pool.progress()
                    assert 0 <= doc["active"] <= pool.size
                    scrapes["n"] += 1

            scraper = threading.Thread(target=hammer) if scrape else None
            if scraper:
                scraper.start()
            try:
                resolved = pool.run_to_completion()
            finally:
                stop.set()
                if scraper:
                    scraper.join()
                    assert scrapes["n"] > 0
            return (
                resolved,
                session.total_cost,
                session.total_rounds,
                pool.n.tolist(),
                pool.status.tolist(),
                repr(session.rng.bit_generator.state),
            )

        assert run(scrape=True) == run(scrape=False)
