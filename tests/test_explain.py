"""Explain reports: cost attribution that reconciles to the microtask."""

import json

from repro import (
    load_dataset,
    spr_topk,
    trace_session,
)
from repro.reports import explain_query
from repro.telemetry import MetricsRegistry, use_registry
from tests.conftest import make_latent_session

SCORES = [0.0, 1.5, 3.0, 4.5, 6.0, 7.5, 9.0, 10.5, 12.0, 13.5]


def _traced_query(n_items=25, k=5, seed=2):
    dataset = load_dataset("jester")
    working = dataset.sample_items(n_items)
    with use_registry(MetricsRegistry()) as registry:
        session = dataset.session(seed=seed)
        with trace_session(session) as trace:
            result = spr_topk(session, working.ids.tolist(), k=k)
        report = explain_query(
            session, trace, result.topk, method="spr", k=k, registry=registry
        )
        microtasks = int(registry.counter_total("crowd_microtasks_total"))
    return session, report, microtasks


class TestReconciliation:
    def test_item_costs_sum_to_ledger_and_telemetry_exactly(self):
        session, report, microtasks = _traced_query()
        # The acceptance identity, to the microtask:
        assert report.attributed + report.unattributed == session.total_cost
        assert session.total_cost == microtasks
        assert report.reconciles(microtasks)
        assert report.total_cost == session.total_cost

    def test_unattributed_covers_the_selection_fork(self):
        # SPR's selection phase runs on a forked session whose compare
        # listeners are cleared, so its spending must land in the
        # unattributed bucket — never be silently lost.
        _, report, _ = _traced_query()
        select = [p for p in report.phases if p["phase"] == "spr.select"]
        assert select and select[0]["cost"] > 0
        assert report.unattributed >= select[0]["cost"]

    def test_phase_rows_come_from_spans_and_cover_all_spending(self):
        session, report, _ = _traced_query()
        names = {p["phase"] for p in report.phases}
        assert {"spr.select", "spr.partition", "spr.rank"} <= names
        # exclusive per-phase costs are disjoint, so they sum to the total
        assert sum(p["cost"] for p in report.phases) == session.total_cost


class TestTrails:
    def test_every_topk_member_has_a_trail_from_its_perspective(self):
        session = make_latent_session(SCORES, sigma=0.5, seed=5)
        with trace_session(session) as trace:
            result = spr_topk(session, list(range(len(SCORES))), k=3)
        report = explain_query(session, trace, result.topk, k=3)
        assert set(report.trails) == set(result.topk)
        for member, trail in report.trails.items():
            for entry in trail:
                assert entry.opponent != member
                assert entry.outcome in ("WIN", "LOSS", "TIE")

    def test_outcomes_flip_for_the_right_operand(self):
        session = make_latent_session([0.0, 8.0], sigma=0.5, seed=1)
        with trace_session(session) as trace:
            session.compare(0, 1)  # item 1 should win as the right operand
        report = explain_query(session, trace, (1,), k=1)
        (entry,) = report.trails[1]
        assert entry.opponent == 0
        assert entry.outcome == "WIN"


class TestRendering:
    def test_json_round_trips(self):
        _, report, _ = _traced_query(n_items=15, k=3)
        doc = json.loads(report.to_json())
        assert doc["k"] == 3
        assert doc["total_cost"] == report.total_cost
        assert doc["unattributed"] == report.unattributed
        assert len(doc["topk"]) == 3
        assert set(doc["trails"]) == {str(i) for i in report.topk}

    def test_text_report_shows_the_reconciliation_identity(self):
        _, report, _ = _traced_query(n_items=15, k=3)
        text = report.to_text()
        assert "[OK]" in text
        assert "unattributed" in text
        assert f"{report.total_cost:,}" in text

    def test_mismatch_is_reported_not_hidden(self):
        _, report, _ = _traced_query(n_items=15, k=3)
        assert not report.reconciles(report.total_cost + 1)


class TestCliExplain:
    def test_explain_exits_zero_and_reconciles(self, capsys):
        from repro.cli import main

        rc = main([
            "explain", "--dataset", "jester", "-k", "3",
            "--n-items", "15", "--budget", "300", "--seed", "4",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "[OK]" in out

    def test_explain_json_output(self, tmp_path, capsys):
        from repro.cli import main

        out_path = tmp_path / "report.json"
        rc = main([
            "explain", "--dataset", "jester", "-k", "3",
            "--n-items", "15", "--budget", "300", "--seed", "4",
            "--json", "--output", str(out_path),
        ])
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(out_path.read_text())
        assert printed == on_disk
        assert printed["k"] == 3
