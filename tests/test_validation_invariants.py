"""Unit tests for the runtime invariant engine.

Each test corrupts exactly one account (a record field, an unmetered
ledger charge, an overlapping partition) and asserts the engine names the
broken invariant — the clean-run suite at the end is the acceptance
criterion that a full SPR query trips none of them.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.core.outcomes import Outcome
from repro.core.spr.partition import PartitionResult
from repro.telemetry import MetricsRegistry, use_registry
from repro.validation import (
    InvariantEngine,
    InvariantViolation,
    run_invariant_suite,
)

from tests.conftest import make_latent_session


def _violated(engine: InvariantEngine) -> set:
    return {r.name for r in engine.report().violations}


def _clean_record(session):
    record = session.compare(0, 4)
    assert record.outcome is not Outcome.TIE
    return record


class TestCheckCore:
    def test_strict_raises_and_collect_records(self):
        strict = InvariantEngine(strict=True)
        with pytest.raises(InvariantViolation, match="broken: detail"):
            strict.check("broken", False, "detail")
        collect = InvariantEngine(strict=False)
        assert collect.check("broken", False, "detail") is False
        assert collect.check("fine", True) is True
        report = collect.report()
        assert not report.passed
        assert [r.name for r in report.violations] == ["broken"]

    def test_soft_failures_warn_but_never_fail(self):
        engine = InvariantEngine(strict=True)
        assert engine.check("advisory", False, "off target", soft=True) is False
        report = engine.report()
        assert report.passed  # soft misses do not fail the suite
        assert [r.name for r in report.warnings] == ["advisory"]

    def test_check_emits_telemetry(self):
        with use_registry(MetricsRegistry()) as registry:
            engine = InvariantEngine(strict=False)
            engine.check("metered", True)
            engine.check("metered", False, "nope")
        counters = {
            (c["name"], c["labels"].get("invariant")): c["value"]
            for c in registry.snapshot()["counters"]
        }
        assert counters[("validation_invariant_checks_total", "metered")] == 2
        assert counters[("validation_invariant_violations_total", "metered")] == 1

    def test_violation_is_an_assertion_error(self):
        # pytest.raises(AssertionError) must catch it in downstream suites.
        assert issubclass(InvariantViolation, AssertionError)


class TestRecordAudits:
    def _audit(self, record, session) -> set:
        engine = InvariantEngine(strict=False)
        engine.on_compare(session, record)
        return _violated(engine)

    def test_clean_record_passes(self):
        session = make_latent_session([0.0, 1.0, 2.0, 3.0, 8.0], seed=5)
        record = _clean_record(session)
        assert self._audit(record, session) == set()

    def test_cost_above_workload_flagged(self):
        session = make_latent_session([0.0, 1.0, 2.0, 3.0, 8.0], seed=5)
        record = _clean_record(session)
        broken = dataclasses.replace(record, cost=record.workload + 1)
        assert "record_cost_within_workload" in self._audit(broken, session)

    def test_workload_above_budget_flagged(self):
        session = make_latent_session([0.0, 1.0, 2.0, 3.0, 8.0], seed=5)
        record = _clean_record(session)
        over = session.config.effective_budget + 1
        broken = dataclasses.replace(record, workload=over, cost=0)
        assert "record_budget_respected" in self._audit(broken, session)

    @pytest.mark.faultfree  # under faults a below-budget tie is legal
    def test_tie_below_budget_flagged(self):
        session = make_latent_session([0.0, 1.0, 2.0, 3.0, 8.0], seed=5)
        record = _clean_record(session)
        fake_tie = dataclasses.replace(record, outcome=Outcome.TIE)
        assert "tie_exhausts_budget" in self._audit(fake_tie, session)

    def test_winner_contradicting_mean_flagged(self):
        session = make_latent_session([0.0, 1.0, 2.0, 3.0, 8.0], seed=5)
        record = _clean_record(session)
        # winner is derived from outcome; flipping the mean's sign makes
        # the verdict contradict the sample evidence.
        flipped = dataclasses.replace(record, mean=-record.mean)
        assert "winner_matches_mean" in self._audit(flipped, session)


class TestAttachReconciliation:
    def test_clean_session_reconciles(self):
        with use_registry(MetricsRegistry()):
            session = make_latent_session([0.0, 2.0, 4.0, 6.0, 8.0], seed=11)
            engine = InvariantEngine(strict=True)
            with engine.attach(session):
                session.compare(0, 4)
                session.compare_many([(1, 3), (2, 0)])
        report = engine.report()
        assert report.passed
        names = {r.name for r in report.results}
        assert {
            "ledger_matches_telemetry",
            "draws_cover_spend",
            "spend_lands_in_cache",
            "records_within_ledger",
        } <= names

    def test_unmetered_charge_breaks_reconciliation(self):
        # Charging the ledger behind telemetry's back is exactly the class
        # of bug the attach audit exists to catch.
        with use_registry(MetricsRegistry()):
            session = make_latent_session([0.0, 2.0, 4.0], seed=11)
            engine = InvariantEngine(strict=False)
            with engine.attach(session, expect_cached_draws=False):
                session.compare(0, 2)
                session.cost.charge(7)  # bypasses the counter and the cache
        assert "ledger_matches_telemetry" in _violated(engine)

    def test_uncached_spend_flagged_when_expected(self):
        with use_registry(MetricsRegistry()):
            session = make_latent_session([0.0, 2.0, 4.0], seed=11)
            engine = InvariantEngine(strict=False)
            with engine.attach(session, expect_cached_draws=True):
                # charge_cost meters telemetry but puts nothing in the cache
                session.charge_cost(3)
        assert "spend_lands_in_cache" in _violated(engine)
        assert "ledger_matches_telemetry" not in _violated(engine)

    def test_listener_removed_after_region(self):
        with use_registry(MetricsRegistry()):
            session = make_latent_session([0.0, 2.0, 4.0, 6.0, 8.0], seed=11)
            engine = InvariantEngine(strict=True)
            with engine.attach(session):
                session.compare(0, 4)
            audited = len(engine.results)
            session.compare(1, 3)  # outside the region: not audited
            assert len(engine.results) == audited


class TestStructuralChecks:
    def _partition(self, **overrides) -> PartitionResult:
        base = dict(
            winners=(0, 1), ties=(2,), losers=(3, 4),
            reference=4, reference_changes=0, cost=10, rounds=2,
        )
        base.update(overrides)
        return PartitionResult(**base)

    def test_partition_clean(self):
        engine = InvariantEngine(strict=False)
        assert engine.check_partition(self._partition(), range(5))
        assert engine.report().passed

    def test_partition_overlap_and_coverage_flagged(self):
        engine = InvariantEngine(strict=False)
        engine.check_partition(self._partition(ties=(2, 0)), range(5))
        assert "partition_no_overlap" in _violated(engine)
        engine = InvariantEngine(strict=False)
        engine.check_partition(self._partition(losers=(3,)), range(5))
        assert "partition_exhaustive" in _violated(engine)

    def test_partition_reference_must_be_decided(self):
        engine = InvariantEngine(strict=False)
        engine.check_partition(
            self._partition(ties=(2, 4), losers=(3,)), range(5)
        )
        assert "partition_reference_placed" in _violated(engine)

    def test_sweet_spot_is_soft_even_in_strict_mode(self):
        engine = InvariantEngine(strict=True)
        scores = np.arange(10, dtype=float)
        # Item 9 is rank 1 — far above the [k, ck] sweet spot for k=3.
        assert engine.check_sweet_spot(scores, reference=9, k=3, c=1.5) is False
        report = engine.report()
        assert report.passed and len(report.warnings) == 1
        # The true rank-k item sits inside the window.
        assert engine.check_sweet_spot(scores, reference=7, k=3, c=1.5) is True

    def test_cache_moments_detects_corruption(self):
        session = make_latent_session([0.0, 2.0, 4.0], seed=3)
        session.compare(0, 2)
        engine = InvariantEngine(strict=False)
        assert engine.check_cache_moments(session.cache)
        # Corrupt one running sum and the audit must notice.
        bag = next(iter(session.cache._bags.values()))
        bag.s1 += 1.0
        engine = InvariantEngine(strict=False)
        assert not engine.check_cache_moments(session.cache)


class TestInvariantSuite:
    @pytest.mark.faultfree  # suite reconciliation pins fault-free costs
    def test_full_spr_queries_run_clean(self):
        # The acceptance criterion: zero hard violations over real queries.
        with use_registry(MetricsRegistry()) as registry:
            report = run_invariant_suite(seed=0, queries=2, n_items=14, k=3)
        assert report.passed
        assert not report.violations
        payload = report.to_dict()
        assert payload["suite"] == "invariants"
        assert payload["checks"] > 100  # real per-record coverage, not a stub
        spans = [s["name"] for s in registry.snapshot()["spans"]]
        assert "validation.invariants" in spans
