"""Property-based tests (hypothesis) on the BDP ranker's math.

The moment-matched update and the vectorized one-step lookahead are the
two places where an algebra slip would silently corrupt every BDP
answer, so both are pinned by generated instances: the update against
its closed-form invariants, the vectorized scorer against the O(K⁴)
scalar reference it replaces.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms.bdp import (
    moment_match,
    ranking_loss,
    score_pairs,
    score_pairs_reference,
)
from repro.core.stopping import pair_error

#: Gamma shapes stay in a range where betainc is well-conditioned; the
#: algorithm itself never leaves it (mass is conserved at N·prior).
shapes_st = st.floats(min_value=1e-3, max_value=1e3)

shape_vectors = st.lists(
    st.floats(min_value=0.05, max_value=50.0), min_size=2, max_size=7
).map(lambda values: np.asarray(values, dtype=np.float64))


class TestMomentMatch:
    @given(shapes_st, shapes_st)
    @settings(max_examples=100, deadline=None)
    def test_updated_shapes_positive_and_finite(self, winner, loser):
        new_w, new_l = moment_match(winner, loser)
        assert np.isfinite(new_w) and new_w > 0
        assert np.isfinite(new_l) and new_l > 0

    @given(shapes_st, shapes_st)
    @settings(max_examples=100, deadline=None)
    def test_total_mass_is_conserved(self, winner, loser):
        new_w, new_l = moment_match(winner, loser)
        np.testing.assert_allclose(new_w + new_l, winner + loser, rtol=1e-9)

    @given(shapes_st, shapes_st)
    @settings(max_examples=100, deadline=None)
    def test_winner_posterior_mean_never_decreases(self, winner, loser):
        new_w, new_l = moment_match(winner, loser)
        before = winner / (winner + loser)
        after = new_w / (new_w + new_l)
        assert after >= before - 1e-12
        assert 0.0 <= after <= 1.0

    @given(shapes_st, shapes_st)
    @settings(max_examples=100, deadline=None)
    def test_loser_posterior_mean_never_increases(self, winner, loser):
        new_w, new_l = moment_match(winner, loser)
        before = loser / (winner + loser)
        after = new_l / (new_w + new_l)
        assert after <= before + 1e-12
        assert 0.0 <= after <= 1.0


class TestPairError:
    @given(shapes_st, shapes_st)
    @settings(max_examples=100, deadline=None)
    def test_is_a_probability_and_complements(self, a, b):
        e_ij = float(pair_error(a, b))
        e_ji = float(pair_error(b, a))
        assert 0.0 <= e_ij <= 1.0
        np.testing.assert_allclose(e_ij + e_ji, 1.0, atol=1e-12)

    @given(shapes_st)
    @settings(max_examples=60, deadline=None)
    def test_equal_shapes_are_a_coin_flip(self, a):
        np.testing.assert_allclose(float(pair_error(a, a)), 0.5, atol=1e-12)


class TestScorePairs:
    @given(shape_vectors, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_matches_scalar_reference(self, shapes, chunk):
        fast = score_pairs(shapes, chunk=chunk)
        slow = score_pairs_reference(shapes)
        np.testing.assert_allclose(fast, slow, rtol=1e-9, atol=1e-11)

    @given(shape_vectors)
    @settings(max_examples=40, deadline=None)
    def test_symmetric_with_nan_diagonal(self, shapes):
        scores = score_pairs(shapes)
        assert np.isnan(np.diag(scores)).all()
        off = ~np.eye(shapes.size, dtype=bool)
        np.testing.assert_allclose(scores[off], scores.T[off],
                                   rtol=1e-9, atol=1e-15)

    @given(shape_vectors)
    @settings(max_examples=40, deadline=None)
    def test_loss_is_finite_and_nonnegative(self, shapes):
        loss = ranking_loss(shapes)
        assert np.isfinite(loss)
        assert loss >= 0.0
