"""ItemSet: ground-truth orders, subsets, validation."""

import numpy as np
import pytest

from repro.core.items import ItemSet
from repro.errors import DatasetError
from tests.conftest import make_items


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DatasetError):
            ItemSet(ids=np.array([1, 2]), scores=np.array([1.0]))

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            ItemSet(ids=np.array([], dtype=int), scores=np.array([]))

    def test_rejects_duplicate_ids(self):
        with pytest.raises(DatasetError):
            ItemSet(ids=np.array([1, 1]), scores=np.array([1.0, 2.0]))

    def test_rejects_negative_ids(self):
        with pytest.raises(DatasetError):
            ItemSet(ids=np.array([-1, 2]), scores=np.array([1.0, 2.0]))

    def test_rejects_non_finite_scores(self):
        with pytest.raises(DatasetError):
            ItemSet(ids=np.array([0, 1]), scores=np.array([1.0, np.nan]))

    def test_rejects_misaligned_labels(self):
        with pytest.raises(DatasetError):
            ItemSet(
                ids=np.array([0, 1]),
                scores=np.array([1.0, 2.0]),
                labels=("only one",),
            )

    def test_does_not_mutate_caller_arrays(self):
        ids = np.array([0, 1])
        ItemSet(ids=ids, scores=np.array([1.0, 2.0]))
        ids[0] = 99  # would raise if the ItemSet froze the caller's array
        assert ids[0] == 99


class TestGroundTruth:
    def test_true_order_descends_by_score(self):
        items = make_items([3.0, 1.0, 2.0])
        assert items.true_order.tolist() == [0, 2, 1]

    def test_score_ties_break_by_ascending_id(self):
        items = ItemSet(ids=np.array([5, 3, 9]), scores=np.array([1.0, 1.0, 1.0]))
        assert items.true_order.tolist() == [3, 5, 9]

    def test_rank_of_is_one_based(self):
        items = make_items([3.0, 1.0, 2.0])
        assert items.rank_of(0) == 1
        assert items.rank_of(2) == 2
        assert items.rank_of(1) == 3

    def test_true_top_k(self):
        items = make_items([3.0, 1.0, 2.0, 5.0])
        assert items.true_top_k(2).tolist() == [3, 0]

    def test_true_top_k_validates(self):
        items = make_items([1.0, 2.0])
        with pytest.raises(DatasetError):
            items.true_top_k(0)
        with pytest.raises(DatasetError):
            items.true_top_k(3)

    def test_rank_of_unknown_item(self):
        with pytest.raises(DatasetError):
            make_items([1.0]).rank_of(7)

    def test_score_of(self):
        items = make_items([1.5, 2.5])
        assert items.score_of(1) == 2.5
        with pytest.raises(DatasetError):
            items.score_of(9)

    def test_contains(self):
        items = make_items([1.0, 2.0])
        assert 1 in items
        assert 5 not in items

    def test_label_fallback(self):
        assert make_items([1.0]).label_of(0) == "item 0"

    def test_custom_labels(self):
        items = ItemSet(
            ids=np.array([0, 1]), scores=np.array([1.0, 2.0]), labels=("a", "b")
        )
        assert items.label_of(1) == "b"


class TestSubsets:
    def test_subset_preserves_relative_order(self, rng):
        items = make_items(np.linspace(0, 1, 50))
        sub = items.subset(10, rng)
        assert len(sub) == 10
        ranks = [items.rank_of(int(i)) for i in sub.true_order]
        assert ranks == sorted(ranks)

    def test_subset_full_size_returns_self(self, rng):
        items = make_items([1.0, 2.0])
        assert items.subset(2, rng) is items

    def test_subset_without_rng_is_deterministic(self):
        items = make_items([1.0, 2.0, 3.0, 4.0])
        assert items.subset(2).ids.tolist() == items.subset(2).ids.tolist()

    def test_subset_validates_size(self, rng):
        with pytest.raises(DatasetError):
            make_items([1.0, 2.0]).subset(0, rng)
        with pytest.raises(DatasetError):
            make_items([1.0, 2.0]).subset(3, rng)

    def test_restrict(self):
        items = make_items([1.0, 2.0, 3.0])
        sub = items.restrict([2, 0])
        assert sorted(sub.ids.tolist()) == [0, 2]
        assert sub.rank_of(2) == 1

    def test_restrict_unknown_item(self):
        with pytest.raises(DatasetError):
            make_items([1.0]).restrict([3])

    def test_restrict_keeps_labels(self):
        items = ItemSet(
            ids=np.array([0, 1, 2]),
            scores=np.array([1.0, 2.0, 3.0]),
            labels=("a", "b", "c"),
        )
        assert items.restrict([2]).label_of(2) == "c"
