"""ComparisonRecord semantics across all outcomes."""

import math

import pytest

from repro.core.comparison import ComparisonRecord
from repro.core.outcomes import Outcome


def record(outcome, cost=30, workload=30, mean=0.5):
    return ComparisonRecord(
        left=3, right=7, outcome=outcome, workload=workload,
        cost=cost, rounds=1, mean=mean, std=1.0,
    )


class TestWinnerLoser:
    def test_left_win(self):
        rec = record(Outcome.LEFT)
        assert rec.winner == 3
        assert rec.loser == 7

    def test_right_win(self):
        rec = record(Outcome.RIGHT)
        assert rec.winner == 7
        assert rec.loser == 3

    def test_tie_has_neither(self):
        rec = record(Outcome.TIE)
        assert rec.winner is None
        assert rec.loser is None


class TestFromCache:
    def test_cached_when_free_but_backed(self):
        assert record(Outcome.LEFT, cost=0, workload=30).from_cache

    def test_not_cached_when_paid(self):
        assert not record(Outcome.LEFT, cost=30, workload=30).from_cache

    def test_empty_record_is_not_cached(self):
        assert not record(Outcome.TIE, cost=0, workload=0).from_cache


class TestImmutability:
    def test_frozen(self):
        rec = record(Outcome.LEFT)
        with pytest.raises(AttributeError):
            rec.cost = 99

    def test_equality_by_value(self):
        assert record(Outcome.LEFT) == record(Outcome.LEFT)
        assert record(Outcome.LEFT) != record(Outcome.RIGHT)
