"""Worker heterogeneity: workforce, routing oracle, quality estimation."""

import numpy as np
import pytest

from repro.core.outcomes import Outcome
from repro.config import ComparisonConfig
from repro.core.spr import spr_topk
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workforce import (
    AnswerRecord,
    Workforce,
    WorkforceOracle,
    WorkerProfile,
    estimate_worker_accuracy,
)
from repro.crowd.workers import GaussianNoise
from repro.errors import OracleError


def _base_oracle(scores=(0.0, 1.0, 2.0, 3.0), sigma=0.5):
    return LatentScoreOracle(np.asarray(scores, dtype=float), GaussianNoise(sigma))


class TestWorkerProfile:
    def test_validation(self):
        with pytest.raises(OracleError):
            WorkerProfile(worker_id=0, reliability=1.5)
        with pytest.raises(OracleError):
            WorkerProfile(worker_id=0, noise_scale=-1.0)


class TestWorkforce:
    def test_generate_is_deterministic(self):
        a = Workforce.generate(20, seed=3, spammer_rate=0.2)
        b = Workforce.generate(20, seed=3, spammer_rate=0.2)
        assert [p.reliability for p in a.profiles] == [
            p.reliability for p in b.profiles
        ]

    def test_spammer_rate_realized(self):
        force = Workforce.generate(500, seed=1, spammer_rate=0.3)
        assert 0.2 < force.spammer_count / 500 < 0.4

    def test_never_all_spammers(self):
        force = Workforce.generate(3, seed=0, spammer_rate=0.999)
        assert force.spammer_count < 3

    def test_without_bans_workers(self):
        force = Workforce.generate(10, seed=0)
        smaller = force.without({0, 1, 2})
        assert len(smaller) == 7
        with pytest.raises(OracleError):
            smaller[0]

    def test_validation(self):
        with pytest.raises(OracleError):
            Workforce([])
        with pytest.raises(OracleError):
            Workforce(
                [WorkerProfile(worker_id=1), WorkerProfile(worker_id=1)]
            )
        with pytest.raises(OracleError):
            Workforce.generate(0)
        with pytest.raises(OracleError):
            Workforce.generate(5, spammer_rate=1.0)


class TestWorkforceOracle:
    def test_honest_workforce_preserves_sign(self, rng):
        force = Workforce.generate(50, seed=2, spammer_rate=0.0)
        oracle = WorkforceOracle(_base_oracle(), force)
        draws = oracle.draw(3, 0, 3000, rng)
        assert draws.mean() > 0
        assert draws.mean() < 3.0  # reliabilities < 1 shrink the signal

    def test_spammers_add_variance_not_bias(self, rng):
        honest = WorkforceOracle(
            _base_oracle(), Workforce.generate(50, seed=2, spammer_rate=0.0)
        )
        spammy = WorkforceOracle(
            _base_oracle(), Workforce.generate(50, seed=2, spammer_rate=0.4)
        )
        clean = honest.draw(3, 0, 4000, rng)
        noisy = spammy.draw(3, 0, 4000, rng)
        assert noisy.std() > clean.std()
        assert abs(noisy.mean() - clean.mean() * (1 - 0.4)) < 0.4  # sign intact

    def test_answers_accounted(self, rng):
        force = Workforce.generate(5, seed=2)
        oracle = WorkforceOracle(_base_oracle(), force)
        oracle.draw(1, 0, 100, rng)
        oracle.draw_pairs(np.array([2, 3]), np.array([0, 1]), 50, rng)
        assert sum(oracle.answers_by_worker.values()) == 200

    def test_log_records_provenance(self, rng):
        force = Workforce.generate(5, seed=2)
        oracle = WorkforceOracle(_base_oracle(), force, keep_log=True)
        oracle.draw(2, 1, 10, rng)
        assert len(oracle.log) == 10
        assert all(isinstance(r, AnswerRecord) for r in oracle.log)
        assert all(r.left == 2 and r.right == 1 for r in oracle.log)

    def test_validation(self):
        force = Workforce.generate(3, seed=0)
        with pytest.raises(OracleError):
            WorkforceOracle(_base_oracle(), force, extra_noise=-1.0)
        with pytest.raises(OracleError):
            WorkforceOracle(_base_oracle(), force, spam_spread=0.0)


class TestEndToEnd:
    def test_spr_absorbs_spammers_with_more_cost(self):
        # Aggregated over seeds: a single run can come out cheaper with
        # spammers by luck of the judgment stream.
        scores = np.linspace(0.0, 10.0, 20)
        costs = {0.0: 0, 0.3: 0}
        hits = 0
        for seed in (7, 8, 9):
            for rate in (0.0, 0.3):
                force = Workforce.generate(40, seed=5, spammer_rate=rate)
                oracle = WorkforceOracle(_base_oracle(scores, sigma=0.8), force)
                session = CrowdSession(
                    oracle,
                    ComparisonConfig(
                        confidence=0.95, budget=2000, min_workload=10, batch_size=10
                    ),
                    seed=seed,
                )
                outcome = spr_topk(session, list(range(20)), 3)
                costs[rate] += session.total_cost
                if rate == 0.3:
                    hits += len(set(outcome.topk) & {19, 18, 17})
        assert costs[0.3] > costs[0.0]  # spammers make the query dearer
        assert hits >= 2 * 3  # but barely less correct


class TestQualityEstimation:
    def test_separates_spammers_from_honest(self, rng):
        force = Workforce(
            [
                WorkerProfile(worker_id=0, reliability=1.0),
                WorkerProfile(worker_id=1, reliability=0.9),
                WorkerProfile(worker_id=2, spammer=True),
            ]
        )
        oracle = WorkforceOracle(
            _base_oracle((0.0, 5.0)), force, keep_log=True
        )
        oracle.draw(1, 0, 600, rng)
        gold = {0: 2, 1: 1}  # item 1 is rank 1
        accuracy = estimate_worker_accuracy(oracle.log, gold)
        assert accuracy[0] > 0.9
        assert accuracy[1] > 0.85
        assert accuracy[2] < 0.75

    def test_min_answers_filters_unseen_workers(self):
        log = [AnswerRecord(worker_id=7, left=0, right=1, value=1.0)]
        assert estimate_worker_accuracy(log, {0: 1, 1: 2}, min_answers=5) == {}

    def test_non_gold_pairs_ignored(self):
        log = [
            AnswerRecord(worker_id=7, left=0, right=9, value=1.0)
            for _ in range(10)
        ]
        assert estimate_worker_accuracy(log, {0: 1, 1: 2}) == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            estimate_worker_accuracy([], {}, min_answers=0)
