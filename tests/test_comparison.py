"""The comparison process COMP: verdicts, caching, budgets, accounting."""

import math

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.cache import JudgmentCache
from repro.core.comparison import Comparator
from repro.core.outcomes import Outcome
from repro.crowd.oracle import LatentScoreOracle
from repro.crowd.workers import GaussianNoise
from tests.conftest import make_latent_session


class TestVerdicts:
    def test_clear_pair_resolves_left(self, five_item_session):
        record = five_item_session.compare(4, 0)
        assert record.outcome is Outcome.LEFT
        assert record.winner == 4
        assert record.loser == 0

    def test_orientation_flip(self, five_item_session):
        record = five_item_session.compare(0, 4)
        assert record.outcome is Outcome.RIGHT
        assert record.winner == 4

    def test_tie_on_identical_items(self):
        session = make_latent_session([1.0, 1.0], sigma=1.0, budget=50)
        record = session.compare(0, 1)
        assert record.outcome is Outcome.TIE
        assert record.winner is None
        assert record.loser is None
        assert record.workload == 50  # budget exhausted

    def test_workload_respects_min(self):
        session = make_latent_session([0.0, 10.0], sigma=0.1, min_workload=30)
        record = session.compare(0, 1)
        assert record.workload == 30

    def test_mean_reflects_score_gap(self):
        session = make_latent_session([0.0, 3.0], sigma=0.5, min_workload=30)
        record = session.compare(1, 0)
        assert record.mean == pytest.approx(3.0, abs=0.5)


class TestCaching:
    def test_second_comparison_is_free(self, five_item_session):
        first = five_item_session.compare(3, 1)
        second = five_item_session.compare(3, 1)
        assert first.cost > 0
        assert second.cost == 0
        assert second.from_cache
        assert second.outcome is first.outcome
        assert second.workload <= first.workload

    def test_flipped_comparison_is_also_free(self, five_item_session):
        five_item_session.compare(3, 1)
        flipped = five_item_session.compare(1, 3)
        assert flipped.cost == 0
        assert flipped.outcome is Outcome.RIGHT

    def test_cache_shared_across_comparators(self):
        oracle = LatentScoreOracle(np.array([0.0, 5.0]), GaussianNoise(0.5))
        cache = JudgmentCache()
        config = ComparisonConfig(min_workload=2, budget=100)
        rng = np.random.default_rng(0)
        first = Comparator(oracle, config, cache).compare(1, 0, rng)
        second = Comparator(oracle, config, cache).compare(1, 0, rng)
        assert first.cost > 0
        assert second.cost == 0

    def test_larger_budget_extends_cached_tie(self):
        # A pair tying at budget 50 can be retried at budget 5000: the
        # stored 50 samples replay for free and sampling resumes.
        session = make_latent_session([0.0, 0.3], sigma=2.0, budget=50, seed=3)
        tie = session.compare(1, 0)
        assert tie.outcome is Outcome.TIE
        bigger = session.fork(budget=5000)
        retry = bigger.compare(1, 0)
        assert retry.workload >= 50
        # whatever the outcome, no sample was re-purchased
        assert session.cache.count(0, 1) == retry.workload or retry.outcome is Outcome.TIE


class TestAccounting:
    def test_cost_equals_consumed_workload(self):
        session = make_latent_session([0.0, 1.0], sigma=1.0, seed=5)
        record = session.compare(1, 0)
        assert record.cost == record.workload
        assert session.total_cost == record.cost

    @pytest.mark.faultfree  # dropped tasks add rounds without adding cost
    def test_rounds_match_batched_workload(self):
        session = make_latent_session(
            [0.0, 0.8], sigma=1.5, seed=2, batch_size=10, min_workload=10
        )
        record = session.compare(1, 0)
        assert record.rounds == math.ceil(record.cost / 10)

    def test_cached_comparison_costs_zero_rounds(self, five_item_session):
        five_item_session.compare(2, 0)
        rounds_before = five_item_session.total_rounds
        five_item_session.compare(2, 0)
        assert five_item_session.total_rounds == rounds_before

    def test_workload_never_exceeds_budget(self):
        session = make_latent_session([0.0, 0.05], sigma=2.0, budget=70)
        record = session.compare(1, 0)
        assert record.workload <= 70


class TestHoeffdingComparator:
    def test_requires_bounded_oracle(self):
        oracle = LatentScoreOracle(np.array([0.0, 1.0]))  # unbounded
        with pytest.raises(ValueError):
            Comparator(oracle, ComparisonConfig(estimator="hoeffding"))
