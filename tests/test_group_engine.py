"""Parity of the batched (racing) and sequential group-comparison engines.

The two engines consume the session RNG in different orders, so individual
judgments — and therefore seed-pinned workloads — differ between them.
What must hold regardless of engine:

* the accounting invariants (cost = consumed microtasks, group latency =
  max member rounds, cache bags = consumed draws);
* ``group_engine="sequential"`` reproducing the historical per-pair loop
  bit for bit;
* the two engines being statistically indistinguishable over many seeds.
"""

import math

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.outcomes import Outcome
from repro.crowd.oracle import JudgmentOracle, LatentScoreOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import ConfigError
from repro.telemetry import use_registry
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(12)]
GROUP = [(11, 0), (10, 1), (9, 2), (8, 3), (7, 4), (6, 5)]


def make_session(engine, seed=11, scores=SCORES, sigma=1.0, **kwargs):
    defaults = dict(
        min_workload=5, batch_size=10, budget=200, group_engine=engine
    )
    defaults.update(kwargs)
    return make_latent_session(scores, sigma=sigma, seed=seed, **defaults)


def assert_records_equal(actual, expected):
    """Field-wise record equality that treats NaN == NaN."""
    assert len(actual) == len(expected)
    for a, b in zip(actual, expected):
        assert (a.left, a.right, a.outcome) == (b.left, b.right, b.outcome)
        assert (a.workload, a.cost, a.rounds) == (b.workload, b.cost, b.rounds)
        for x, y in ((a.mean, b.mean), (a.std, b.std)):
            assert (math.isnan(x) and math.isnan(y)) or x == pytest.approx(y)


class TestRacingInvariants:
    @pytest.fixture(params=["student", "stein"])
    def session(self, request):
        return make_session("racing", estimator=request.param)

    def test_cost_latency_and_cache_accounting(self, session):
        records = session.compare_many(GROUP)
        assert [(r.left, r.right) for r in records] == GROUP
        # Cost is the sum over the group, latency its max (§5.5).
        assert session.total_cost == sum(r.cost for r in records)
        assert session.total_rounds == max(r.rounds for r in records)
        assert session.cost.comparisons == len(GROUP)
        for record in records:
            # Fresh pairs: the cache holds exactly the consumed draws.
            assert record.cost == record.workload
            assert session.cache.count(record.left, record.right) == record.workload
            n, mean, var = session.moments(record.left, record.right)
            assert n == record.workload
            assert record.mean == pytest.approx(mean)
            assert record.std == pytest.approx(math.sqrt(var))

    def test_stopping_rule_semantics(self, session):
        records = session.compare_many(GROUP)
        for record in records:
            assert record.workload <= session.config.effective_budget
            if record.outcome is not Outcome.TIE:
                # No verdict before the cold start I; the winner agrees with
                # the observed mean the verdict was reached on.
                assert record.workload >= session.config.min_workload
                assert record.winner is not None
                expected = record.left if record.mean > 0 else record.right
                assert record.winner == expected

    def test_second_group_is_a_free_replay(self, session):
        first = session.compare_many(GROUP)
        cost, rounds = session.spent()
        second = session.compare_many(GROUP)
        assert session.spent() == (cost, rounds)  # nothing new bought
        for a, b in zip(first, second):
            assert b.cost == 0 and b.rounds == 0
            assert b.from_cache
            assert b.outcome is a.outcome
            assert b.workload == a.workload

    def test_group_budget_tie(self):
        # Indistinguishable items: every pair must exhaust its budget.
        session = make_session("racing", scores=[0.0, 0.0, 0.0], sigma=3.0,
                               budget=30, confidence=0.999)
        records = session.compare_many([(0, 1), (1, 2)])
        for record in records:
            assert record.outcome is Outcome.TIE
            assert record.workload == 30
        assert session.total_cost == 60


class TestSequentialEngine:
    def test_bit_for_bit_vs_manual_compare_loop(self):
        grouped = make_session("sequential")
        manual = make_session("sequential")
        records = grouped.compare_many(GROUP)
        expected = [manual.compare(i, j, charge_latency=False) for i, j in GROUP]
        manual.latency.add_parallel([r.rounds for r in expected])
        assert_records_equal(records, expected)
        assert grouped.spent() == manual.spent()
        assert grouped.cost.comparisons == manual.cost.comparisons

    def test_compare_group_alias_removed(self):
        # The deprecated alias warned for one release and is now gone:
        # compare / compare_many are the whole comparison surface.
        session = make_session("sequential")
        assert not hasattr(session, "compare_group")


class TestEngineParity:
    @pytest.mark.statistical
    def test_engines_statistically_indistinguishable(self):
        # >= 200 seeded groups; mixed difficulty so some pairs race long.
        scores = [0.0, 0.75, 1.5, 2.25, 4.5, 6.0, 8.0, 10.0]
        group = [(7, 0), (6, 1), (5, 2), (4, 3)]
        totals = {"racing": 0, "sequential": 0}
        agree = disagree = 0
        for seed in range(200):
            outcomes = {}
            for engine in ("racing", "sequential"):
                session = make_session(
                    engine, seed=seed, scores=scores, sigma=1.5, budget=120
                )
                records = session.compare_many(group)
                assert session.total_cost == sum(r.cost for r in records)
                totals[engine] += session.total_cost
                outcomes[engine] = [r.outcome for r in records]
            for a, b in zip(outcomes["racing"], outcomes["sequential"]):
                agree += a is b
                disagree += a is not b
        # Same verdicts almost always, and the same total spend within a
        # few percent: the engines draw the same judgment distribution.
        assert agree / (agree + disagree) >= 0.9
        assert totals["racing"] == pytest.approx(totals["sequential"], rel=0.1)


class TestDuplicatesAndOrientation:
    def test_repeats_inside_a_group_are_cache_replays(self):
        session = make_session("racing")
        first, repeat, flipped = session.compare_many([(5, 0), (5, 0), (0, 5)])
        assert first.cost > 0 and first.rounds > 0
        for replay in (repeat, flipped):
            assert replay.cost == 0 and replay.rounds == 0
            assert replay.from_cache
            assert replay.workload == first.workload
        assert repeat.outcome is first.outcome
        assert repeat.mean == pytest.approx(first.mean)
        assert flipped.outcome is first.outcome.flipped()
        assert flipped.mean == pytest.approx(-first.mean)
        # Only the first occurrence pays, and it alone sets the latency.
        assert session.total_cost == first.cost
        assert session.total_rounds == first.rounds

    @pytest.mark.parametrize("engine", ["racing", "sequential"])
    def test_self_pair_rejected_before_any_accounting(self, engine):
        session = make_session(engine)
        with pytest.raises(ValueError):
            session.compare_many([(4, 2), (3, 3)])
        assert session.cost.comparisons == 0
        assert session.spent() == (0, 0)

    @pytest.mark.parametrize("engine", ["racing", "sequential"])
    def test_empty_group(self, engine):
        session = make_session(engine)
        assert session.compare_many([]) == []
        assert session.spent() == (0, 0)


class TestTelemetry:
    def test_racing_counters_reconcile(self):
        pairs = GROUP + [(0, 11)]  # one in-group repeat, flipped
        with use_registry() as registry:
            session = make_session("racing")
            session.compare_many(pairs)
            session.compare_many(pairs)
        assert registry.counter_value("crowd_comparisons_total") == 2 * len(pairs)
        assert registry.counter_value("crowd_microtasks_total") == session.total_cost
        assert registry.counter_value("crowd_groups_total", engine="racing") == 2
        assert registry.counter_value("crowd_groups_total", engine="sequential") == 0
        # First call: the repeat is the only cache hit.  Second call: every
        # distinct pair replays from the cache, plus the repeat again.
        assert registry.counter_value("crowd_cache_hits_total") == 1 + len(GROUP) + 1
        assert registry.histogram("crowd_comparison_workload").count == 2 * len(pairs)

    def test_sequential_counters_reconcile(self):
        with use_registry() as registry:
            session = make_session("sequential")
            session.compare_many(GROUP)
        assert registry.counter_value("crowd_comparisons_total") == len(GROUP)
        assert registry.counter_value("crowd_microtasks_total") == session.total_cost
        assert registry.counter_value("crowd_groups_total", engine="sequential") == 1
        assert registry.counter_value("crowd_groups_total", engine="racing") == 0

    def test_ranking_primitives_route_through_racing_engine(self):
        from repro.core.sorting import crowd_max, odd_even_sort

        with use_registry() as registry:
            session = make_session("racing")
            best = crowd_max(session, list(range(12)))
            odd_even_sort(session, list(range(8)))
        assert best == 11
        assert registry.counter_value("crowd_groups_total", engine="racing") > 0
        assert registry.counter_value("crowd_groups_total", engine="sequential") == 0
        assert registry.counter_value("crowd_pool_rounds_total") > 0


class CountingOracle(JudgmentOracle):
    """Wrapper that counts every judgment the base oracle actually draws."""

    def __init__(self, base):
        self._base = base
        self.bounds = base.bounds
        self.draws = 0

    def draw(self, i, j, size, rng):
        self.draws += int(size)
        return self._base.draw(i, j, size, rng)

    def draw_pairs(self, left, right, size, rng):
        self.draws += len(left) * int(size)
        return self._base.draw_pairs(left, right, size, rng)


class TestOracleDrawAccounting:
    """``oracle_judgments_total`` equals the draws the oracle produced.

    Regression guard for a suspected double count: ``race_group`` at a
    minimal per-pair budget combined with a replay-cache hit in the same
    round.  The scenario is not reproducible — the counter is incremented
    once, in :meth:`RacingPool.round`, on the freshly drawn matrix, and
    replays never touch the oracle — so these tests pin the *correct*
    accounting against an independent tally at the oracle boundary.
    """

    def _session(self, oracle, **config_kwargs):
        defaults = dict(
            confidence=0.95, budget=30, min_workload=5, batch_size=10,
            group_engine="racing",
        )
        defaults.update(config_kwargs)
        return CrowdSession(oracle, ComparisonConfig(**defaults), seed=17)

    def test_per_pair_budget_of_one_is_unconfigurable(self):
        # The alleged trigger — budget 1 — is rejected at construction:
        # a budget below the cold start I (>= 2) can never race.
        with pytest.raises(ConfigError):
            ComparisonConfig(budget=1)

    @pytest.mark.parametrize("budget", [5, 6, 30])
    def test_counter_matches_draws_with_replays_and_duplicates(self, budget):
        oracle = CountingOracle(
            LatentScoreOracle(np.asarray(SCORES), GaussianNoise(1.0))
        )
        with use_registry() as registry:
            session = self._session(oracle, budget=budget, min_workload=5)
            session.compare_many(GROUP)                    # fresh races
            session.compare_many(GROUP)                    # pure replay round
            session.compare_many([(11, 0), (11, 0), (0, 11)])  # in-group dups
        drawn = registry.counter_value("oracle_judgments_total")
        assert drawn == oracle.draws
        # Consumption can be below the draw count (racing pools overdraw
        # the final batch), never above it.
        assert session.total_cost <= drawn

    def test_partial_replay_then_fresh_draws_same_round(self):
        # Bags hold 5 judgments per pair (budget ties), then a forked
        # session with a larger budget replays those 5 and races on —
        # cache replay and fresh draws inside one group.
        oracle = CountingOracle(
            LatentScoreOracle(np.asarray(SCORES) * 0.2, GaussianNoise(2.0))
        )
        with use_registry() as registry:
            session = self._session(oracle, budget=5, min_workload=5)
            first = session.compare_many(GROUP)
            assert all(r.outcome is Outcome.TIE for r in first)
            richer = session.fork(budget=60)
            richer.compare_many(GROUP)
            assert registry.counter_value("oracle_judgments_total") == oracle.draws
            assert registry.counter_value("crowd_microtasks_total") == (
                session.total_cost
            )

    def test_sequential_engine_counts_draws_identically(self):
        oracle = CountingOracle(
            LatentScoreOracle(np.asarray(SCORES), GaussianNoise(1.0))
        )
        with use_registry() as registry:
            session = self._session(oracle, group_engine="sequential")
            session.compare_many(GROUP)
            session.compare_many(GROUP)
        assert registry.counter_value("oracle_judgments_total") == oracle.draws


class TestConfigKnob:
    def test_default_is_racing(self):
        assert ComparisonConfig().group_engine == "racing"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigError):
            ComparisonConfig(group_engine="bogus")
