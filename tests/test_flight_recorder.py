"""The flight recorder: ring semantics, subscriptions, crash dumps."""

import json

import pytest

from repro.telemetry import FlightRecorder, MetricsRegistry
from tests.conftest import make_latent_session


def _ticker(start=1000.0):
    state = {"t": start}

    def clock():
        state["t"] += 1.0
        return state["t"]

    return clock


class TestRing:
    def test_capacity_bounds_the_ring_but_not_the_count(self):
        recorder = FlightRecorder(capacity=3, clock=_ticker())
        for i in range(5):
            recorder.record({"type": "tick", "i": i})
        assert len(recorder) == 3
        assert recorder.events_seen == 5
        doc = recorder.to_dict()
        assert doc["events_dropped"] == 2
        assert [e["i"] for e in doc["events"]] == [2, 3, 4]
        # sequence numbers keep counting across drops
        assert [e["seq"] for e in doc["events"]] == [3, 4, 5]

    def test_tail_returns_newest_oldest_first(self):
        recorder = FlightRecorder(capacity=10, clock=_ticker())
        for i in range(4):
            recorder.record({"type": "tick", "i": i})
        assert [e["i"] for e in recorder.tail(2)] == [2, 3]
        assert recorder.tail(0) == []
        assert len(recorder.tail()) == 4

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestSubscriptions:
    def test_captures_registry_events(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(clock=_ticker()).attach(registry=registry)
        registry.emit("degraded_tie", reason="deadline", pairs=[[1, 2]])
        (event,) = recorder.tail()
        assert event["type"] == "degraded_tie"
        assert event["reason"] == "deadline"

    def test_attach_is_idempotent(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(clock=_ticker())
        recorder.attach(registry=registry)
        recorder.attach(registry=registry)
        registry.emit("tick")
        assert recorder.events_seen == 1

    def test_detach_stops_the_feed_but_keeps_the_ring(self):
        registry = MetricsRegistry()
        recorder = FlightRecorder(clock=_ticker()).attach(registry=registry)
        registry.emit("kept")
        recorder.detach()
        registry.emit("missed")
        assert [e["type"] for e in recorder.tail()] == ["kept"]

    def test_captures_comparisons_from_a_live_session(self):
        session = make_latent_session([0.0, 5.0], sigma=0.5)
        recorder = FlightRecorder(clock=_ticker()).attach(session=session)
        session.compare(0, 1)
        (event,) = recorder.tail()
        assert event["type"] == "comparison"
        assert {event["left"], event["right"]} == {0, 1}
        assert event["total_cost"] == session.total_cost
        assert event["cost"] > 0


class TestDumps:
    def test_dump_writes_json_and_creates_parents(self, tmp_path):
        registry = MetricsRegistry()
        recorder = FlightRecorder(clock=_ticker()).attach(registry=registry)
        registry.emit("checkpoint", path="q.ckpt")
        out = tmp_path / "deep" / "nested" / "flight.json"
        recorder.dump(out, reason="test")
        doc = json.loads(out.read_text())
        assert doc["reason"] == "test"
        assert doc["events"][0]["type"] == "checkpoint"
        assert registry.counter_value("flight_recorder_dumps_total") == 1

    def test_guard_dumps_on_crash_and_reraises(self, tmp_path):
        recorder = FlightRecorder(clock=_ticker())
        recorder.record({"type": "tick"})
        out = tmp_path / "crash.json"
        with pytest.raises(RuntimeError, match="boom"):
            with recorder.guard(out):
                raise RuntimeError("boom")
        doc = json.loads(out.read_text())
        assert doc["reason"] == "unhandled RuntimeError"
        assert doc["events"][-1] == {
            **doc["events"][-1],
            "type": "crash",
            "exception": "RuntimeError",
            "message": "boom",
        }

    def test_guard_is_silent_on_success(self, tmp_path):
        recorder = FlightRecorder(clock=_ticker())
        out = tmp_path / "never.json"
        with recorder.guard(out):
            pass
        assert not out.exists()


class TestRecordMany:
    def test_batch_equals_back_to_back_records(self):
        batched = FlightRecorder(capacity=8, clock=lambda: 5.0)
        sequential = FlightRecorder(capacity=8, clock=lambda: 5.0)
        events = [{"type": "pool_round", "round": i} for i in range(3)]
        batched.record_many(events)
        for event in events:
            sequential.record(event)
        assert batched.tail() == sequential.tail()
        assert batched.events_seen == 3

    def test_batch_shares_one_timestamp_and_sequences(self):
        ticks = iter([1.0, 2.0, 3.0])
        recorder = FlightRecorder(capacity=4, clock=lambda: next(ticks))
        recorder.record_many([{"type": "a"}, {"type": "b"}])
        a, b = recorder.tail()
        assert (a["seq"], b["seq"]) == (1, 2)
        assert a["t"] == b["t"] == 1.0

    def test_empty_batch_records_nothing(self):
        recorder = FlightRecorder(capacity=4)
        recorder.record_many([])
        assert recorder.events_seen == 0

    def test_ring_eviction_applies_within_a_batch(self):
        recorder = FlightRecorder(capacity=2, clock=lambda: 0.0)
        recorder.record_many([{"type": "e", "i": i} for i in range(5)])
        assert [event["i"] for event in recorder.tail()] == [3, 4]
        assert recorder.events_seen == 5
