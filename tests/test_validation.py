"""Empirical confidence calibration utilities."""

import math

import pytest

from repro.config import ComparisonConfig
from repro.stats.validation import CalibrationReport, calibrate_tester


class TestCalibrateTester:
    def test_easy_gap_always_decides_correctly(self):
        config = ComparisonConfig(confidence=0.95, budget=500, min_workload=10)
        report = calibrate_tester(config, true_mean=2.0, sigma=0.5, trials=100)
        assert report.decided == 100
        assert report.errors == 0
        assert report.error_rate == 0.0
        assert report.within_guarantee
        assert report.workload_mean == pytest.approx(10.0)  # decides at I

    def test_hopeless_gap_often_ties(self):
        config = ComparisonConfig(confidence=0.98, budget=50, min_workload=10)
        report = calibrate_tester(config, true_mean=0.01, sigma=2.0, trials=50)
        assert report.decided < report.trials  # ties happen
        assert report.within_guarantee

    def test_error_rate_within_alpha_band(self):
        config = ComparisonConfig(confidence=0.8, budget=5000, min_workload=30)
        report = calibrate_tester(config, true_mean=0.2, sigma=1.0, trials=400)
        assert report.decided > 300
        assert report.within_guarantee

    def test_negative_mean_counts_left_errors(self):
        config = ComparisonConfig(confidence=0.9, budget=500, min_workload=10)
        report = calibrate_tester(config, true_mean=-1.0, sigma=0.5, trials=50)
        assert report.errors == 0  # verdicts must all be -1

    def test_workload_percentiles_ordered(self):
        config = ComparisonConfig(confidence=0.95, budget=5000, min_workload=30)
        report = calibrate_tester(config, true_mean=0.3, sigma=1.0, trials=100)
        assert report.workload_p50 <= report.workload_p90
        assert report.workload_mean >= 30

    def test_binary_mode_uses_sign_stream(self):
        config = ComparisonConfig(
            confidence=0.95, budget=5000, min_workload=10, estimator="hoeffding"
        )
        binary = calibrate_tester(
            config, true_mean=0.5, sigma=1.0, trials=100,
            value_range=2.0, binary=True,
        )
        preference = calibrate_tester(
            ComparisonConfig(confidence=0.95, budget=5000, min_workload=10),
            true_mean=0.5, sigma=1.0, trials=100,
        )
        assert binary.workload_mean > preference.workload_mean

    def test_validation(self):
        config = ComparisonConfig()
        with pytest.raises(ValueError):
            calibrate_tester(config, true_mean=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            calibrate_tester(config, true_mean=1.0, sigma=0.0)
        with pytest.raises(ValueError):
            calibrate_tester(config, true_mean=1.0, sigma=1.0, trials=0)

    def test_deterministic_given_seed(self):
        config = ComparisonConfig(confidence=0.9, budget=200, min_workload=10)
        a = calibrate_tester(config, true_mean=0.4, sigma=1.0, trials=50, seed=3)
        b = calibrate_tester(config, true_mean=0.4, sigma=1.0, trials=50, seed=3)
        assert a == b


class TestReportProperties:
    def test_empty_decided_is_safe(self):
        report = CalibrationReport(
            true_mean=0.1, sigma=1.0, alpha=0.05, trials=10,
            decided=0, errors=0,
            workload_mean=math.nan, workload_p50=math.nan, workload_p90=math.nan,
        )
        assert report.error_rate == 0.0
        assert report.decision_rate == 0.0
        assert report.within_guarantee
