"""Cached Student-t quantiles against scipy ground truth."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.stats.tdist import t_quantile, t_quantiles


@pytest.mark.parametrize("alpha", [0.01, 0.02, 0.05, 0.2])
@pytest.mark.parametrize("df", [1, 2, 5, 29, 100, 5000])
def test_matches_scipy(alpha, df):
    expected = sps.t.ppf(1 - alpha / 2, df)
    assert t_quantile(alpha, df) == pytest.approx(expected, rel=1e-12)


def test_vector_view_is_consistent_with_scalar():
    table = t_quantiles(0.05, 50)
    for df in (1, 10, 50):
        assert table[df] == t_quantile(0.05, df)


def test_vector_index_zero_is_nan():
    assert np.isnan(t_quantiles(0.05, 10)[0])


def test_vector_is_read_only():
    table = t_quantiles(0.05, 10)
    with pytest.raises(ValueError):
        table[1] = 0.0


def test_cache_grows_on_demand():
    small = t_quantiles(0.123, 10)
    large = t_quantiles(0.123, 20_000)
    assert len(large) == 20_001
    assert large[5] == pytest.approx(small[5])


def test_quantiles_decrease_with_df():
    table = t_quantiles(0.05, 200)
    assert np.all(np.diff(table[1:]) <= 1e-12)


def test_quantile_increases_with_confidence():
    assert t_quantile(0.01, 10) > t_quantile(0.05, 10)


@pytest.mark.parametrize("alpha", [0.0, 1.0, -1.0])
def test_invalid_alpha_rejected(alpha):
    with pytest.raises(ValueError):
        t_quantile(alpha, 5)
    with pytest.raises(ValueError):
        t_quantiles(alpha, 5)


def test_invalid_df_rejected():
    with pytest.raises(ValueError):
        t_quantile(0.05, 0)
    with pytest.raises(ValueError):
        t_quantiles(0.05, 0)
