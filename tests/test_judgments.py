"""The judgment-model facade (§3, Table 1)."""

import numpy as np
import pytest

from repro.config import ComparisonConfig
from repro.core.judgments import JUDGMENT_MODELS, configure
from repro.crowd.oracle import BinaryOracle, LatentScoreOracle, RecordDatabaseOracle
from repro.crowd.session import CrowdSession
from repro.crowd.workers import GaussianNoise
from repro.errors import ConfigError, OracleError


def base_oracle():
    return LatentScoreOracle(np.array([0.0, 2.0, 4.0]), GaussianNoise(0.5))


class TestTable1:
    def test_all_models_present(self):
        assert set(JUDGMENT_MODELS) == {"preference", "binary", "graded"}

    def test_descriptor_fields_match_paper(self):
        binary = JUDGMENT_MODELS["binary"]
        assert binary.target == "item pair"
        assert binary.workload == "large"
        graded = JUDGMENT_MODELS["graded"]
        assert graded.preference == "absolute"
        assert not graded.has_stopping_rule
        assert JUDGMENT_MODELS["preference"].has_stopping_rule


class TestConfigure:
    def test_preference_passthrough(self):
        oracle, config = configure("preference", base_oracle())
        assert isinstance(oracle, LatentScoreOracle)
        assert config.estimator == "student"

    def test_preference_keeps_stein_choice(self):
        _, config = configure(
            "preference", base_oracle(), ComparisonConfig(estimator="stein")
        )
        assert config.estimator == "stein"

    def test_preference_fixes_hoeffding_choice(self):
        # A hoeffding config makes no sense for raw preferences of
        # unbounded support: the facade normalizes it.
        _, config = configure(
            "preference", base_oracle(), ComparisonConfig(estimator="hoeffding")
        )
        assert config.estimator == "student"

    def test_binary_wraps_and_selects_hoeffding(self):
        oracle, config = configure("binary", base_oracle())
        assert isinstance(oracle, BinaryOracle)
        assert config.estimator == "hoeffding"
        assert oracle.value_range == 2.0

    def test_binary_end_to_end(self):
        oracle, config = configure(
            "binary", base_oracle(),
            ComparisonConfig(confidence=0.9, budget=5000, min_workload=5),
        )
        session = CrowdSession(oracle, config, seed=0)
        record = session.compare(2, 0)
        assert record.winner == 2

    def test_graded_requires_rating_support(self):
        oracle, _ = configure("graded", base_oracle())
        assert oracle.supports_rating
        with pytest.raises(OracleError):
            configure(
                "graded",
                RecordDatabaseOracle({(0, 1): np.array([0.5])}),
            )

    def test_unknown_model_rejected(self):
        with pytest.raises(ConfigError):
            configure("telepathy", base_oracle())
