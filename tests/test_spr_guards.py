"""SPR's defensive paths: the winner blow-up guard and recursion chains."""

import pytest

import repro.core.spr.spr as spr_module
from repro.config import SPRConfig
from repro.core.spr import spr_topk
from repro.core.spr.select import SelectionResult
from repro.stats.reference import SamplingPlan
from tests.conftest import make_latent_session

SCORES = [float(i) for i in range(40)]


def _forced_selection(reference: int):
    """A select_reference stand-in pinning the reference deterministically.

    Recursive SPR calls re-select over a subset that may not contain the
    pinned id; those fall back to a mid-list member (any plausible pick —
    the tests only constrain the *outermost* reference).
    """

    def fake(session, ids, k, *, sweet_spot, budget_factor):
        members = [int(i) for i in ids]
        chosen = reference if reference in members else members[len(members) // 2]
        return SelectionResult(
            reference=chosen,
            plan=SamplingPlan(
                x=1, m=1, probability=1.0, comparison_budget=1, comparisons=0
            ),
            maxima=(chosen,),
            cost=0,
            rounds=0,
        )

    return fake


def clean_session(seed=0, **kwargs):
    defaults = dict(sigma=0.4, min_workload=5, batch_size=10, budget=200)
    defaults.update(kwargs)
    return make_latent_session(SCORES, seed=seed, **defaults)


class TestBlowUpGuard:
    def test_bottom_reference_triggers_requery(self, monkeypatch):
        # Reference = the worst item: every other item is a "winner".
        monkeypatch.setattr(spr_module, "select_reference", _forced_selection(0))
        session = clean_session()
        config = SPRConfig(comparison=session.config, max_reference_changes=0)
        result = spr_topk(session, list(range(40)), 5, config)
        assert result.recursed  # the guard re-queried the winner set
        assert list(result.topk) == [39, 38, 37, 36, 35]

    def test_guard_is_cheaper_than_sorting_everything(self, monkeypatch):
        monkeypatch.setattr(spr_module, "select_reference", _forced_selection(0))
        guarded = clean_session(seed=3)
        config = SPRConfig(comparison=guarded.config, max_reference_changes=0)
        guarded_cost = spr_topk(guarded, list(range(40)), 5, config).cost

        # An honest (unforced) run for scale: the guarded bad-reference run
        # must stay within a small multiple of it, not explode quadratically.
        honest = clean_session(seed=3)
        honest_cost = spr_topk(
            honest, list(range(40)), 5, SPRConfig(comparison=honest.config)
        ).cost
        assert guarded_cost < 4 * honest_cost

    def test_sweet_spot_reference_does_not_trigger(self, monkeypatch):
        monkeypatch.setattr(spr_module, "select_reference", _forced_selection(33))
        session = clean_session()
        config = SPRConfig(comparison=session.config, max_reference_changes=0)
        result = spr_topk(session, list(range(40)), 5, config)
        assert not result.recursed
        assert list(result.topk) == [39, 38, 37, 36, 35]


class TestRecursionChain:
    def test_top_reference_recurses_into_losers(self, monkeypatch):
        # Reference = the best item: W empty, recursion must fill all of k.
        monkeypatch.setattr(spr_module, "select_reference", _forced_selection(39))
        session = clean_session()
        config = SPRConfig(comparison=session.config, max_reference_changes=0)
        result = spr_topk(session, list(range(40)), 5, config)
        assert result.recursed
        # Line 13 keeps the reference as a winner; the rest comes from the
        # recursive call over the losers.
        assert list(result.topk) == [39, 38, 37, 36, 35]

    def test_reference_change_disabled_during_forced_runs(self, monkeypatch):
        monkeypatch.setattr(spr_module, "select_reference", _forced_selection(20))
        session = clean_session()
        config = SPRConfig(comparison=session.config, max_reference_changes=0)
        result = spr_topk(session, list(range(40)), 5, config)
        assert result.partition_result.reference == 20
        assert result.partition_result.reference_changes == 0
