"""Tiny end-to-end runs of every table/figure module.

These keep each experiment's plumbing (columns, rows, notes, paper-shape
assertions where statistically safe at small scale) under test without the
full workloads — EXPERIMENTS.md records the real runs.
"""

import math

import pytest

from repro.experiments import (
    ExperimentParams,
    run_accuracy,
    run_appendix_d,
    run_non_confidence,
    run_peopleage,
    run_stein_vs_student,
    run_summary,
    run_sweet_spot,
    run_table3,
    run_table4,
    run_table7,
)

TINY = ExperimentParams(dataset="jester", n_items=25, k=3, n_runs=2, seed=0)


class TestTable3:
    def test_small_run_shape_and_ordering(self):
        report = run_table3(
            n_movies=8, confidences=(0.9,), graded_workloads=(50,),
            n_runs=1, seed=0, cap=30_000,
        )
        assert report.columns == ["1-a=0.9"]
        binary_w = report.rows["Binary/Hoeffding workload"][0]
        student_w = report.rows["Preference/Student workload"][0]
        stein_w = report.rows["Preference/Stein workload"][0]
        # the paper's headline: preference judgments need far fewer tasks
        assert binary_w > student_w
        assert binary_w > stein_w
        for label in ("Binary/Hoeffding", "Preference/Student", "Preference/Stein"):
            acc = report.rows[f"{label} accuracy"][0]
            assert 0.8 <= acc <= 1.0


class TestTable4:
    def test_columns_and_realized_changes(self):
        report = run_table4(TINY, changes=(0, 2))
        assert report.columns == ["times=0", "times=2"]
        assert report.rows["realized changes"][0] == 0
        assert all(w > 0 for w in report.rows["Work."])


class TestTable7:
    def test_small_matrix(self):
        report = run_table7(
            datasets=("jester",),
            methods=("spr", "quickselect", "pbr"),
            n_runs=1,
            seed=0,
        )
        row = report.rows["jester"]
        assert len(row) == 3
        spr_cost, qs_cost, pbr_cost = row
        assert pbr_cost > spr_cost  # PBR's appetite survives any scale

    def test_pbr_can_be_skipped(self):
        report = run_table7(
            datasets=("jester",),
            methods=("spr", "pbr"),
            n_runs=1,
            seed=0,
            pbr_datasets=(),
        )
        assert math.isnan(report.rows["jester"][1])


class TestFigureSweeps:
    def test_accuracy_panel(self):
        report = run_accuracy("k", TINY, values=(2, 3), methods=("spr",))
        assert report.columns == ["k=2", "k=3"]
        assert all(0.0 <= v <= 1.0 for v in report.rows["spr"])

    def test_budget_accuracy_collapses_when_tiny(self):
        # Figure 13's headline: B at the cold-start floor cannot separate
        # anything, so precision drops markedly below the default-B run.
        params = ExperimentParams(
            dataset="jester", n_items=30, k=5, n_runs=3, seed=2
        )
        report = run_accuracy("budget", params, values=(30, 1000), methods=("spr",))
        low_b = report.rows["spr (precision)"][0]
        high_b = report.rows["spr (precision)"][1]
        assert high_b >= low_b

    def test_summary(self):
        tmc, latency = run_summary(
            datasets=("jester",), methods=("spr", "heapsort"), n_runs=1, seed=0
        )
        assert tmc.columns == ["spr", "heapsort", "infimum"]
        row = tmc.rows["jester"]
        assert row[2] <= min(row[0], row[1])  # infimum is the floor

    def test_sweet_spot(self):
        report = run_sweet_spot(datasets=("jester",), values=(1.5, 2.0), n_runs=1)
        assert report.columns == ["c=1.5", "c=2.0"]
        assert all(v > 0 for v in report.rows["jester"])

    def test_stein_vs_student(self):
        report = run_stein_vs_student(
            dataset="jester", k_values=(3,), n_runs=1, n_items=25
        )
        ratio = report.rows["stein/student"][0]
        assert 0.3 < ratio < 3.0  # "analogous", not identical


class TestNonConfidence:
    def test_budget_matching(self):
        report = run_non_confidence(datasets=("jester",), n_runs=1, seed=0)
        assert report.columns == ["spr", "crowdbt", "hybrid", "hybrid_spr"]
        row = report.rows["jester"]
        assert all(0.0 <= v <= 1.0 for v in row)


class TestAppendixD:
    def test_gap_positive_everywhere(self):
        report = run_appendix_d()
        for label, row in report.rows.items():
            assert all(v > 0 for v in row), label
        assert any("positive everywhere" in note for note in report.notes)


class TestPeopleAge:
    def test_simulation_in_paper_ballpark(self):
        report = run_peopleage(n_runs=2, seed=0)
        tmc, ndcg, dollars = report.rows["SPR (ours)"]
        assert 2_000 < tmc < 30_000  # paper: 9,570
        assert ndcg > 0.8  # paper: 0.905
        assert dollars == pytest.approx(tmc * 0.001)


class TestPhaseBreakdown:
    def test_phases_sum_to_total(self):
        from repro.experiments import run_phase_breakdown

        report = run_phase_breakdown(datasets=("jester",), n_runs=1, seed=0)
        selection, partition, tail, total = report.rows["jester"]
        assert selection + partition + tail == pytest.approx(total)
        assert total > 0


class TestInteractiveProjection:
    def test_columns_and_paper_row(self):
        from repro.experiments import run_interactive

        report = run_interactive(n_runs=1, seed=0)
        assert report.columns == ["US$", "hours", "NDCG"]
        dollars, hours, ndcg = report.rows["SPR (ours, projected)"]
        assert dollars > 0 and hours > 0 and 0 <= ndcg <= 1
        assert report.rows["SPR (paper, live run)"][0] == pytest.approx(10.56)


class TestWorkloadDistance:
    def test_monotone_premise_on_synthetic(self):
        from repro.experiments import ExperimentParams
        from repro.experiments.workload_distance import run_workload_distance

        params = ExperimentParams(dataset="synthetic", budget=300)
        report = run_workload_distance(
            "synthetic", distances=(1, 50), pairs_per_distance=8,
            n_runs=1, seed=0, params=params,
        )
        workloads = report.rows["mean workload"]
        assert workloads[0] > workloads[-1]

    def test_oversized_distances_dropped(self):
        from repro.experiments import ExperimentParams
        from repro.experiments.workload_distance import run_workload_distance

        params = ExperimentParams(dataset="jester", budget=100)
        report = run_workload_distance(
            "jester", distances=(5, 500), pairs_per_distance=3,
            n_runs=1, seed=0, params=params,
        )
        assert report.columns == ["d=5"]  # jester has only 100 items


class TestRobustness:
    def test_cost_grows_with_spam(self):
        from repro.experiments import run_robustness

        report = run_robustness(
            spammer_rates=(0.0, 0.4), n_items=40, k=4,
            n_workers=20, n_runs=2, seed=0,
        )
        costs = report.rows["TMC"]
        ndcgs = report.rows["NDCG"]
        assert costs[1] > costs[0]
        assert min(ndcgs) > 0.6
