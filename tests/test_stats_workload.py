"""Closed-form workload predictors (Appendix D)."""

import math

import numpy as np
import pytest

from repro.core.estimators import StudentTester
from repro.stats.workload import binary_workload, student_workload, workload_ratio


class TestStudentWorkload:
    def test_fixed_point_is_consistent(self):
        n = student_workload(0.5, 1.0, 0.05)
        from repro.stats.tdist import t_quantile

        df = max(int(math.ceil(n)) - 1, 1)
        assert n == pytest.approx((t_quantile(0.05, df) * 2.0) ** 2, rel=1e-6)

    def test_scales_with_inverse_square_gap(self):
        # Asymptotic 1/mu^2 scaling (holds once n is large enough that the
        # t quantile has flattened; tiny-n predictions sit above the law).
        wide = student_workload(0.1, 1.0, 0.05)
        narrow = student_workload(0.01, 1.0, 0.05)
        assert narrow / wide == pytest.approx(100.0, rel=0.05)

    def test_grows_with_confidence(self):
        assert student_workload(0.5, 1.0, 0.01) > student_workload(0.5, 1.0, 0.1)

    def test_predicts_empirical_scale(self):
        # Monte-Carlo check: the prediction lands within a factor ~2 of the
        # average empirical stopping time (expected-scale approximation).
        mu, sigma, alpha = 0.5, 1.0, 0.05
        predicted = student_workload(mu, sigma, alpha)
        stops = []
        for seed in range(40):
            values = np.random.default_rng(seed).normal(mu, sigma, size=5000)
            tester = StudentTester(alpha=alpha, min_workload=2)
            consumed, decision = tester.scan(values)
            if decision != 1:  # rare alpha-level wrong/undecided runs
                continue
            stops.append(consumed)
        empirical = np.mean(stops)
        assert 0.4 < empirical / predicted < 2.5

    def test_validation(self):
        with pytest.raises(ValueError):
            student_workload(0.0, 1.0, 0.05)
        with pytest.raises(ValueError):
            student_workload(0.5, -1.0, 0.05)
        with pytest.raises(ValueError):
            student_workload(0.5, 1.0, 1.5)


class TestBinaryWorkload:
    def test_equation3_closed_form(self):
        mu, sigma, alpha = 0.5, 1.0, 0.05
        from scipy.special import ndtr

        shifted = 2 * ndtr(mu / sigma) - 1
        assert binary_workload(mu, sigma, alpha) == pytest.approx(
            2.0 / shifted**2 * math.log(2 / alpha)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            binary_workload(-1.0, 1.0, 0.05)


class TestWorkloadRatio:
    @pytest.mark.parametrize("mu", [0.05, 0.2, 0.5, 1.0, 2.0])
    @pytest.mark.parametrize("sigma", [0.3, 1.0, 2.5])
    def test_binary_always_costs_more(self, mu, sigma):
        assert workload_ratio(mu, sigma, 0.05) > 1.0

    def test_small_gap_limit(self):
        # ratio → pi * ln(2/alpha) / z^2 as mu/sigma → 0
        alpha = 0.05
        limit = math.pi * math.log(2 / alpha) / 1.959963984540054**2
        assert workload_ratio(0.001, 1.0, alpha) == pytest.approx(limit, rel=0.01)
