"""Median-selection cost bounds (Appendix C, Table 10)."""

import pytest

from repro.stats.median_cost import (
    MEDIAN_COST_BOUNDS,
    bubble_median_comparisons,
    median_cost_upper_bound,
)


def _exact_partial_bubble(m: int) -> int:
    passes = (m + 1) // 2
    return sum(m - i for i in range(1, passes + 1))


@pytest.mark.parametrize("m", [1, 2, 3, 4, 5, 10, 15, 99])
def test_exact_count_matches_sum(m):
    assert bubble_median_comparisons(m) == _exact_partial_bubble(m)


@pytest.mark.parametrize("m", [1, 3, 5, 15, 101])
def test_exact_count_below_paper_bound(m):
    # Appendix C: C(bubble, m) <= (3m^2 + m - 2) / 8.
    assert bubble_median_comparisons(m) <= (3 * m * m + m - 2) / 8


def test_bubble_bound_formula():
    assert median_cost_upper_bound("bubble", 15) == pytest.approx(
        (3 * 225 + 15 - 2) / 8
    )


def test_quick_bound_formula():
    assert median_cost_upper_bound("quick", 10) == pytest.approx(45.0)


def test_all_table10_algorithms_present():
    assert set(MEDIAN_COST_BOUNDS) == {"bubble", "selection", "merge", "heap", "quick"}


def test_bounds_positive_for_m_two_plus():
    for name in MEDIAN_COST_BOUNDS:
        assert median_cost_upper_bound(name, 9) > 0


def test_unknown_algorithm_rejected():
    with pytest.raises(ValueError):
        median_cost_upper_bound("bogo", 5)


def test_invalid_m_rejected():
    with pytest.raises(ValueError):
        bubble_median_comparisons(0)
    with pytest.raises(ValueError):
        median_cost_upper_bound("bubble", 0)
