"""Judgment-cache persistence across processes."""

import numpy as np
import pytest

from repro.core.cache import JudgmentCache
from repro.errors import CrowdTopkError
from repro.persistence import (
    cache_from_json,
    cache_to_json,
    load_cache,
    save_cache,
)
from tests.conftest import make_latent_session


def _populated_cache(rng) -> JudgmentCache:
    cache = JudgmentCache()
    cache.append(0, 1, rng.normal(size=40))
    cache.append(5, 2, rng.normal(size=7))
    cache.append(3, 9, np.array([0.25]))
    return cache


class TestNpzRoundTrip:
    def test_round_trip_is_lossless(self, rng, tmp_path):
        cache = _populated_cache(rng)
        path = tmp_path / "bags.npz"
        save_cache(cache, path)
        loaded = load_cache(path)
        assert sorted(loaded.pairs()) == sorted(cache.pairs())
        for a, b in cache.pairs():
            assert np.array_equal(loaded.bag(a, b), cache.bag(a, b))
        assert loaded.total_samples == cache.total_samples

    def test_empty_cache_round_trip(self, tmp_path):
        path = tmp_path / "empty.npz"
        save_cache(JudgmentCache(), path)
        assert load_cache(path).total_samples == 0

    def test_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, values=np.arange(3))
        with pytest.raises(CrowdTopkError):
            load_cache(path)


class TestJsonRoundTrip:
    def test_round_trip_is_lossless(self, rng):
        cache = _populated_cache(rng)
        loaded = cache_from_json(cache_to_json(cache))
        for a, b in cache.pairs():
            assert np.allclose(loaded.bag(a, b), cache.bag(a, b))

    def test_rejects_invalid_json(self):
        with pytest.raises(CrowdTopkError):
            cache_from_json("{not json")

    def test_rejects_wrong_format(self):
        with pytest.raises(CrowdTopkError):
            cache_from_json('{"format": "something-else"}')

    def test_rejects_wrong_version(self):
        with pytest.raises(CrowdTopkError):
            cache_from_json('{"format": "crowd-topk-cache", "version": 99}')


class TestOperationalReuse:
    def test_yesterdays_judgments_are_free_today(self, tmp_path):
        # Query 1 in one "process", persisted; query 2 replays it for free.
        first = make_latent_session([0.0, 2.0, 4.0, 6.0], sigma=0.5, seed=1)
        first.compare(3, 0)
        first.compare(2, 1)
        path = tmp_path / "state.npz"
        save_cache(first.cache, path)

        second = make_latent_session([0.0, 2.0, 4.0, 6.0], sigma=0.5, seed=2)
        second.cache = load_cache(path)
        second.comparator.cache = second.cache
        record = second.compare(3, 0)
        assert record.cost == 0
        assert record.from_cache
